"""Setup shim so legacy editable installs work in offline environments.

The execution environment has no ``wheel`` package, which breaks PEP 517
editable installs; ``pip install -e . --no-build-isolation`` falls back to
``setup.py develop`` when this file is present.
"""

from setuptools import setup

setup()

"""``repro.optim`` — optimizers and learning-rate schedulers.

Provides the training-loop plumbing the paper's evaluation relies on: SGD for
CNN workloads, Adam/AdamW for Transformer and BERT, plus the step-decay,
inverse-square-root, linear, lambda (poly) and cyclical LR schedules whose
drops drive Egeria's unfreezing rule.
"""

from .adam import Adam, AdamW
from .lr_scheduler import (
    CosineAnnealingLR,
    CyclicalLR,
    ExponentialLR,
    InverseSquareRootLR,
    LambdaLR,
    LinearDecayLR,
    LRScheduler,
    MultiStepLR,
    StepLR,
)
from .optimizer import Optimizer
from .sgd import SGD

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "LRScheduler",
    "StepLR",
    "MultiStepLR",
    "ExponentialLR",
    "CosineAnnealingLR",
    "InverseSquareRootLR",
    "LinearDecayLR",
    "LambdaLR",
    "CyclicalLR",
]

"""Learning-rate schedulers.

The paper evaluates with several schedules (§6.1): step decay for CV models,
inverse square root for Transformer training, a linear schedule for BERT
fine-tuning, and a Lambda schedule for DeepLabv3.  The unfreezing mechanism
of Egeria (§4.2.2 / Algorithm 1 lines 19–26) watches the current LR through
these schedulers: "restart training all the frozen layers if the LR has
dropped over a factor of 10 since the frontmost layers' freeze".

Cyclical schedules (cosine annealing with restarts, triangular cyclical LR)
are also provided; they trigger the user-customisable unfreeze path instead.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from .optimizer import Optimizer

__all__ = [
    "LRScheduler",
    "StepLR",
    "MultiStepLR",
    "ExponentialLR",
    "CosineAnnealingLR",
    "InverseSquareRootLR",
    "LinearDecayLR",
    "LambdaLR",
    "CyclicalLR",
]


class LRScheduler:
    """Base class: computes the LR for an epoch/step and writes it into the optimizer."""

    #: Whether the schedule is periodic (cosine/cyclical) — Egeria uses this to
    #: pick between the LR-drop unfreeze rule and the customised unfreeze rule.
    cyclical: bool = False

    def __init__(self, optimizer: Optimizer, base_lr: Optional[float] = None):
        self.optimizer = optimizer
        self.base_lr = base_lr if base_lr is not None else optimizer.lr
        self.last_epoch = -1
        self.step()

    def get_lr(self, epoch: int) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def step(self, epoch: Optional[int] = None) -> float:
        """Advance the schedule and update ``optimizer.lr``; returns the new LR."""
        self.last_epoch = self.last_epoch + 1 if epoch is None else epoch
        lr = self.get_lr(self.last_epoch)
        self.optimizer.lr = lr
        return lr

    @property
    def current_lr(self) -> float:
        return self.optimizer.lr

    def state_dict(self) -> dict:
        """Serializable schedule position (the trainers checkpoint this)."""
        return {"last_epoch": int(self.last_epoch), "base_lr": float(self.base_lr)}

    def load_state_dict(self, state: dict) -> None:
        self.last_epoch = int(state["last_epoch"])
        self.base_lr = float(state["base_lr"])
        self.optimizer.lr = self.get_lr(self.last_epoch)

    def history(self, num_epochs: int) -> List[float]:
        """LR values for epochs ``0..num_epochs-1`` without touching state."""
        return [self.get_lr(e) for e in range(num_epochs)]


class StepLR(LRScheduler):
    """Multiply the LR by ``gamma`` every ``step_size`` epochs (CV default)."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1, base_lr: Optional[float] = None):
        self.step_size = step_size
        self.gamma = gamma
        super().__init__(optimizer, base_lr)

    def get_lr(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (max(epoch, 0) // self.step_size)


class MultiStepLR(LRScheduler):
    """Decay the LR by ``gamma`` at each milestone epoch.

    The paper's ResNet-56/CIFAR-10 reference run drops the LR at epochs 100
    and 150 (Figure 1), i.e. ``milestones=[100, 150]``.
    """

    def __init__(self, optimizer: Optimizer, milestones: Sequence[int], gamma: float = 0.1,
                 base_lr: Optional[float] = None):
        self.milestones = sorted(milestones)
        self.gamma = gamma
        super().__init__(optimizer, base_lr)

    def get_lr(self, epoch: int) -> float:
        passed = sum(1 for m in self.milestones if epoch >= m)
        return self.base_lr * self.gamma ** passed


class ExponentialLR(LRScheduler):
    """Multiply the LR by ``gamma`` every epoch."""

    def __init__(self, optimizer: Optimizer, gamma: float = 0.95, base_lr: Optional[float] = None):
        self.gamma = gamma
        super().__init__(optimizer, base_lr)

    def get_lr(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** max(epoch, 0)


class CosineAnnealingLR(LRScheduler):
    """Cosine annealing, optionally with warm restarts (SGDR)."""

    cyclical = True

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0, restarts: bool = False,
                 base_lr: Optional[float] = None):
        self.t_max = max(t_max, 1)
        self.eta_min = eta_min
        self.restarts = restarts
        super().__init__(optimizer, base_lr)

    def get_lr(self, epoch: int) -> float:
        t = max(epoch, 0) % self.t_max if self.restarts else min(max(epoch, 0), self.t_max)
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (1.0 + math.cos(math.pi * t / self.t_max))


class InverseSquareRootLR(LRScheduler):
    """fairseq-style inverse-square-root schedule with linear warmup."""

    def __init__(self, optimizer: Optimizer, warmup_steps: int = 4000, base_lr: Optional[float] = None):
        self.warmup_steps = max(warmup_steps, 1)
        super().__init__(optimizer, base_lr)

    def get_lr(self, epoch: int) -> float:
        step = max(epoch, 0) + 1
        if step < self.warmup_steps:
            return self.base_lr * step / self.warmup_steps
        return self.base_lr * math.sqrt(self.warmup_steps / step)


class LinearDecayLR(LRScheduler):
    """Linear decay to zero over ``total_steps`` (BERT fine-tuning schedule)."""

    def __init__(self, optimizer: Optimizer, total_steps: int, warmup_steps: int = 0,
                 base_lr: Optional[float] = None):
        self.total_steps = max(total_steps, 1)
        self.warmup_steps = warmup_steps
        super().__init__(optimizer, base_lr)

    def get_lr(self, epoch: int) -> float:
        step = max(epoch, 0)
        if self.warmup_steps and step < self.warmup_steps:
            return self.base_lr * (step + 1) / self.warmup_steps
        remaining = max(self.total_steps - step, 0) / max(self.total_steps - self.warmup_steps, 1)
        return self.base_lr * remaining


class LambdaLR(LRScheduler):
    """Scale the base LR by an arbitrary user function of the epoch.

    DeepLabv3 uses a polynomial ("poly") lambda schedule in the paper's
    evaluation; the default lambda reproduces that shape.
    """

    def __init__(self, optimizer: Optimizer, lr_lambda=None, total_epochs: int = 60, power: float = 0.9,
                 base_lr: Optional[float] = None):
        if lr_lambda is None:
            lr_lambda = lambda epoch: (1.0 - min(epoch, total_epochs) / max(total_epochs, 1)) ** power
        self.lr_lambda = lr_lambda
        super().__init__(optimizer, base_lr)

    def get_lr(self, epoch: int) -> float:
        return self.base_lr * float(self.lr_lambda(max(epoch, 0)))


class CyclicalLR(LRScheduler):
    """Triangular cyclical learning rate (Smith, WACV 2017)."""

    cyclical = True

    def __init__(self, optimizer: Optimizer, min_lr: float, max_lr: float, cycle_length: int = 10,
                 base_lr: Optional[float] = None):
        self.min_lr = min_lr
        self.max_lr = max_lr
        self.cycle_length = max(cycle_length, 2)
        super().__init__(optimizer, base_lr if base_lr is not None else max_lr)

    def get_lr(self, epoch: int) -> float:
        position = max(epoch, 0) % self.cycle_length
        half = self.cycle_length / 2.0
        fraction = position / half if position <= half else (self.cycle_length - position) / half
        return self.min_lr + (self.max_lr - self.min_lr) * fraction

"""Stochastic gradient descent with momentum and weight decay.

SGD is the optimizer used by the paper for all CNN workloads (ResNet-50/56,
MobileNetV2, DeepLabv3).  The implementation keys momentum buffers by
parameter identity so that freezing/unfreezing a layer (which only flips
``requires_grad``) never loses optimizer state.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from ..nn.module import Parameter
from .optimizer import Optimizer

__all__ = ["SGD"]


class SGD(Optimizer):
    """SGD with (Nesterov) momentum and decoupled L2 weight decay.

    Parameters
    ----------
    params:
        Iterable of parameters to optimise.
    lr:
        Learning rate.
    momentum:
        Momentum coefficient; 0 disables the velocity buffer.
    weight_decay:
        L2 penalty added to the gradient.
    nesterov:
        Use Nesterov's accelerated gradient when momentum is enabled.
    """

    def __init__(self, params: Iterable[Parameter], lr: float = 0.1, momentum: float = 0.9,
                 weight_decay: float = 0.0, nesterov: bool = False):
        super().__init__(params, lr=lr)
        if momentum < 0.0:
            raise ValueError("momentum must be non-negative")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        """Apply one update to every parameter that has a gradient.

        Frozen parameters (``requires_grad == False``) never receive
        gradients, so they are skipped automatically — exactly the paper's
        "exclude the subgraph from gradient computation" behaviour.
        """
        for param in self.params:
            if not param.requires_grad or param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                buf = self._velocity.get(id(param))
                if buf is None:
                    buf = np.zeros_like(param.data)
                    self._velocity[id(param)] = buf
                buf *= self.momentum
                buf += grad
                grad = grad + self.momentum * buf if self.nesterov else buf
            param.data = param.data - self.lr * grad
        self._step_count += 1

    def _buffer_state(self) -> Dict[str, object]:
        velocity = {}
        for position, param in enumerate(self.params):
            buf = self._velocity.get(id(param))
            if buf is not None:
                velocity[str(position)] = buf.copy()
        return {"velocity": velocity}

    def _load_buffer_state(self, buffers: Dict[str, object]) -> None:
        self._velocity = {}
        for position, buf in dict(buffers.get("velocity") or {}).items():
            param = self.params[int(position)]
            self._velocity[id(param)] = np.array(buf, dtype=param.data.dtype, copy=True)

    def state_summary(self) -> Dict[str, float]:
        """Small diagnostic summary (used in tests and logging)."""
        velocities: List[float] = [float(np.abs(v).mean()) for v in self._velocity.values()]
        return {
            "lr": self.lr,
            "num_velocity_buffers": float(len(self._velocity)),
            "mean_velocity_magnitude": float(np.mean(velocities)) if velocities else 0.0,
        }

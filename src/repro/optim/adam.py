"""Adam and AdamW optimizers.

Adam is used for the Transformer translation model (fairseq defaults) and
AdamW for BERT fine-tuning, matching §6.1 of the paper.  As with SGD, state
is keyed by parameter identity so freezing/unfreezing preserves the moment
estimates.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

import numpy as np

from ..nn.module import Parameter
from .optimizer import Optimizer

__all__ = ["Adam", "AdamW"]


class Adam(Optimizer):
    """Adam optimizer with bias-corrected first/second moment estimates."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-3, betas: Tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(params, lr=lr)
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t: Dict[int, int] = {}

    def _update_moments(self, param: Parameter, grad: np.ndarray) -> Tuple[np.ndarray, np.ndarray, int]:
        beta1, beta2 = self.betas
        key = id(param)
        m = self._m.get(key)
        if m is None:
            m = np.zeros_like(param.data)
            v = np.zeros_like(param.data)
            self._m[key], self._v[key], self._t[key] = m, v, 0
        v = self._v[key]
        self._t[key] += 1
        m *= beta1
        m += (1.0 - beta1) * grad
        v *= beta2
        v += (1.0 - beta2) * grad * grad
        return m, v, self._t[key]

    def _buffer_state(self) -> Dict[str, object]:
        moments: Dict[str, object] = {"m": {}, "v": {}, "t": {}}
        for position, param in enumerate(self.params):
            key = id(param)
            if key in self._m:
                moments["m"][str(position)] = self._m[key].copy()
                moments["v"][str(position)] = self._v[key].copy()
                moments["t"][str(position)] = int(self._t[key])
        return moments

    def _load_buffer_state(self, buffers: Dict[str, object]) -> None:
        self._m, self._v, self._t = {}, {}, {}
        for position, m in dict(buffers.get("m") or {}).items():
            param = self.params[int(position)]
            key = id(param)
            self._m[key] = np.array(m, dtype=param.data.dtype, copy=True)
            self._v[key] = np.array(buffers["v"][position], dtype=param.data.dtype, copy=True)
            self._t[key] = int(buffers["t"][position])

    def step(self) -> None:
        beta1, beta2 = self.betas
        for param in self.params:
            if not param.requires_grad or param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m, v, t = self._update_moments(param, grad)
            m_hat = m / (1.0 - beta1 ** t)
            v_hat = v / (1.0 - beta2 ** t)
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
        self._step_count += 1


class AdamW(Adam):
    """Adam with decoupled weight decay (used to fine-tune BERT)."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-3, betas: Tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.01):
        super().__init__(params, lr=lr, betas=betas, eps=eps, weight_decay=0.0)
        self.decoupled_weight_decay = weight_decay

    def step(self) -> None:
        beta1, beta2 = self.betas
        for param in self.params:
            if not param.requires_grad or param.grad is None:
                continue
            grad = param.grad
            m, v, t = self._update_moments(param, grad)
            m_hat = m / (1.0 - beta1 ** t)
            v_hat = v / (1.0 - beta2 ** t)
            update = m_hat / (np.sqrt(v_hat) + self.eps) + self.decoupled_weight_decay * param.data
            param.data = param.data - self.lr * update
        self._step_count += 1

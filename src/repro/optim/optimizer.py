"""Base optimizer interface shared by SGD and Adam."""

from __future__ import annotations

from typing import Iterable, List

from ..nn.module import Parameter

__all__ = ["Optimizer"]


class Optimizer:
    """Base class: holds the parameter list, learning rate and step counter.

    The learning rate is a plain attribute mutated by the LR schedulers in
    :mod:`repro.optim.lr_scheduler`; Egeria's unfreezing rule watches it
    through :attr:`lr`.
    """

    def __init__(self, params: Iterable[Parameter], lr: float):
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = float(lr)
        self._step_count = 0

    @property
    def step_count(self) -> int:
        """Number of optimisation steps applied so far."""
        return self._step_count

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

"""Base optimizer interface shared by SGD and Adam."""

from __future__ import annotations

from typing import Dict, Iterable, List

from ..nn.module import Parameter

__all__ = ["Optimizer"]


class Optimizer:
    """Base class: holds the parameter list, learning rate and step counter.

    The learning rate is a plain attribute mutated by the LR schedulers in
    :mod:`repro.optim.lr_scheduler`; Egeria's unfreezing rule watches it
    through :attr:`lr`.
    """

    def __init__(self, params: Iterable[Parameter], lr: float):
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = float(lr)
        self._step_count = 0

    @property
    def step_count(self) -> int:
        """Number of optimisation steps applied so far."""
        return self._step_count

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, object]:
        """Serializable snapshot: LR, step counter and per-parameter buffers.

        Buffers are keyed by the parameter's *position* in ``self.params``
        (identity keys like ``id(param)`` do not survive a process restart);
        restoring into an optimizer built over the same parameter list in the
        same order reproduces the exact update sequence.
        """
        return {
            "lr": float(self.lr),
            "step_count": int(self._step_count),
            "buffers": self._buffer_state(),
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        self.lr = float(state["lr"])
        self._step_count = int(state["step_count"])
        self._load_buffer_state(dict(state.get("buffers") or {}))

    def _buffer_state(self) -> Dict[str, object]:
        """Subclass hook: per-parameter buffers keyed by parameter position."""
        return {}

    def _load_buffer_state(self, buffers: Dict[str, object]) -> None:
        """Subclass hook: inverse of :meth:`_buffer_state`."""

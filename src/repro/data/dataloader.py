"""Data loader with look-ahead sampling for activation prefetching.

Egeria's forward-pass cache relies on a training-workflow property the paper
highlights in §4.3: "Before an iteration, the data loader samples future
mini-batches in advance, so unlike typical cache systems we actually know the
future (the incoming data indices)".  :class:`DataLoader` therefore exposes
:meth:`peek_future_indices`, which the prefetcher uses to pull the relevant
cached activations before the iteration that needs them.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np

from .datasets import Batch

__all__ = ["DataLoader"]


class DataLoader:
    """Mini-batch iterator over a synthetic dataset.

    Parameters
    ----------
    dataset:
        Any object with ``__len__`` and ``get_batch(indices) -> Batch``.
    batch_size:
        Samples per mini-batch; the final partial batch is dropped when
        ``drop_last`` is True (the default, matching the paper's setup where
        iteration counts are derived from full batches).
    shuffle:
        Reshuffle sample order at the start of every epoch.
    seed:
        Base seed; epoch ``e`` uses ``seed + e`` so the sample order is a
        deterministic function of the epoch — which also makes cached
        activations replayable across runs.
    """

    def __init__(self, dataset, batch_size: int = 16, shuffle: bool = True, seed: int = 0,
                 drop_last: bool = True):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.seed = seed
        self.drop_last = drop_last
        self.epoch = 0
        self._order: Optional[np.ndarray] = None
        self._position = 0

    # ------------------------------------------------------------------ #
    # Epoch order management
    # ------------------------------------------------------------------ #
    def _epoch_order(self, epoch: int) -> np.ndarray:
        indices = np.arange(len(self.dataset))
        if self.shuffle:
            rng = np.random.default_rng(self.seed + epoch)
            rng.shuffle(indices)
        return indices

    def set_epoch(self, epoch: int) -> None:
        """Select the epoch whose (deterministic) order the loader will follow."""
        self.epoch = epoch
        self._order = self._epoch_order(epoch)
        self._position = 0

    def __len__(self) -> int:
        full, rem = divmod(len(self.dataset), self.batch_size)
        return full if self.drop_last or rem == 0 else full + 1

    @property
    def num_batches(self) -> int:
        return len(self)

    # ------------------------------------------------------------------ #
    # Iteration
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[Batch]:
        self.set_epoch(self.epoch)
        while True:
            batch = self.next_batch()
            if batch is None:
                break
            yield batch
        self.epoch += 1

    def next_batch(self) -> Optional[Batch]:
        """Return the next mini-batch of the current epoch, or ``None`` at the end."""
        if self._order is None:
            self.set_epoch(self.epoch)
        start = self._position
        end = start + self.batch_size
        if start >= len(self._order):
            return None
        if end > len(self._order) and self.drop_last:
            return None
        indices = self._order[start:end]
        self._position = end
        return self.dataset.get_batch(indices)

    # ------------------------------------------------------------------ #
    # Look-ahead for the activation prefetcher
    # ------------------------------------------------------------------ #
    def peek_future_indices(self, num_batches: int = 1, epoch: Optional[int] = None,
                            position: Optional[int] = None) -> List[np.ndarray]:
        """Return the sample indices of the next ``num_batches`` mini-batches.

        Does not advance the iterator.  When the remaining batches of the
        current epoch are fewer than requested, indices from the beginning of
        the *next* epoch (with its own deterministic order) are appended, so
        the prefetcher can warm the cache across the epoch boundary.
        """
        epoch = self.epoch if epoch is None else epoch
        position = self._position if position is None else position
        order = self._order if (epoch == self.epoch and self._order is not None) else self._epoch_order(epoch)

        batches: List[np.ndarray] = []
        current_order, current_pos, current_epoch = order, position, epoch
        while len(batches) < num_batches:
            end = current_pos + self.batch_size
            if end > len(current_order):
                current_epoch += 1
                current_order = self._epoch_order(current_epoch)
                current_pos = 0
                continue
            batches.append(current_order[current_pos:end].copy())
            current_pos = end
        return batches

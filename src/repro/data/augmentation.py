"""Stateless random data augmentation.

Egeria's activation cache must remain valid under random augmentation.  The
paper handles this with *stateless* random operations (§4.3): the augmentation
applied to a sample is a pure function of ``(sample index, epoch seed)``, so
the augmented image — and therefore the frozen layers' activation for it — is
identical whenever it is replayed, "deterministically keep[ing] the randomly
augmented images the same across epochs".

These transforms operate on ``(C, H, W)`` float arrays and are intentionally
cheap: horizontal flip, small translation ("crop with padding"), and additive
noise jitter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["StatelessAugmentation", "random_horizontal_flip", "random_translate", "random_noise_jitter"]


def _sample_rng(base_seed: int, sample_index: int) -> np.random.Generator:
    """Deterministic per-sample generator — the heart of statelessness."""
    return np.random.default_rng((base_seed * 1_000_003 + sample_index) % (2 ** 63 - 1))


def random_horizontal_flip(image: np.ndarray, rng: np.random.Generator, probability: float = 0.5) -> np.ndarray:
    """Flip the image left-right with the given probability."""
    if rng.random() < probability:
        return image[:, :, ::-1].copy()
    return image


def random_translate(image: np.ndarray, rng: np.random.Generator, max_shift: int = 2) -> np.ndarray:
    """Shift the image by up to ``max_shift`` pixels in each direction (zero fill)."""
    if max_shift <= 0:
        return image
    dy, dx = rng.integers(-max_shift, max_shift + 1, size=2)
    shifted = np.zeros_like(image)
    h, w = image.shape[1], image.shape[2]
    src_y = slice(max(0, -dy), min(h, h - dy))
    dst_y = slice(max(0, dy), min(h, h + dy))
    src_x = slice(max(0, -dx), min(w, w - dx))
    dst_x = slice(max(0, dx), min(w, w + dx))
    shifted[:, dst_y, dst_x] = image[:, src_y, src_x]
    return shifted


def random_noise_jitter(image: np.ndarray, rng: np.random.Generator, scale: float = 0.05) -> np.ndarray:
    """Add small Gaussian noise (stand-in for colour jitter)."""
    return image + scale * rng.standard_normal(image.shape).astype(image.dtype)


@dataclass
class StatelessAugmentation:
    """Composable stateless augmentation pipeline.

    Parameters
    ----------
    base_seed:
        Run-level seed.  Augmentation for sample ``i`` depends only on
        ``(base_seed, i)`` so it replays identically across epochs — the
        property the activation cache requires.
    flip, translate, jitter:
        Which transforms to enable.
    """

    base_seed: int = 0
    flip: bool = True
    translate: bool = True
    jitter: bool = True
    max_shift: int = 2
    jitter_scale: float = 0.05

    def apply_sample(self, image: np.ndarray, sample_index: int) -> np.ndarray:
        """Augment one ``(C, H, W)`` image deterministically."""
        rng = _sample_rng(self.base_seed, sample_index)
        out = image
        if self.flip:
            out = random_horizontal_flip(out, rng)
        if self.translate:
            out = random_translate(out, rng, max_shift=self.max_shift)
        if self.jitter:
            out = random_noise_jitter(out, rng, scale=self.jitter_scale)
        return out

    def apply_batch(self, images: np.ndarray, indices: Sequence[int]) -> np.ndarray:
        """Augment a batch ``(N, C, H, W)`` keyed by the samples' dataset indices."""
        out = np.empty_like(images)
        for row, sample_index in enumerate(indices):
            out[row] = self.apply_sample(images[row], int(sample_index))
        return out

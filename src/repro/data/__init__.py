"""``repro.data`` — synthetic datasets, data loader and stateless augmentation.

Replaces the paper's CIFAR-10/ImageNet/VOC/WMT16/SQuAD with learnable
synthetic surrogates of the same shape, plus a :class:`DataLoader` that knows
its future sample indices (the property the activation prefetcher exploits)
and stateless augmentation that keeps cached activations valid.
"""

from .augmentation import StatelessAugmentation, random_horizontal_flip, random_noise_jitter, random_translate
from .dataloader import DataLoader
from .datasets import (
    Batch,
    SubsetDataset,
    SyntheticImageClassification,
    SyntheticQuestionAnswering,
    SyntheticSegmentation,
    SyntheticTranslation,
    make_dataset,
)

__all__ = [
    "Batch",
    "SubsetDataset",
    "DataLoader",
    "SyntheticImageClassification",
    "SyntheticSegmentation",
    "SyntheticTranslation",
    "SyntheticQuestionAnswering",
    "make_dataset",
    "StatelessAugmentation",
    "random_horizontal_flip",
    "random_translate",
    "random_noise_jitter",
]

"""Accuracy metrics used in the paper's evaluation (Table 1).

Top-1 accuracy for image classification, mean IoU for semantic segmentation,
perplexity for machine translation and span F1 for question answering.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = ["top1_accuracy", "topk_accuracy", "mean_iou", "perplexity_from_loss", "f1_spans", "span_f1_single"]


def top1_accuracy(logits: np.ndarray, targets: np.ndarray) -> float:
    """Fraction of samples whose arg-max prediction matches the target."""
    predictions = np.asarray(logits).argmax(axis=-1)
    targets = np.asarray(targets)
    return float((predictions == targets).mean()) if targets.size else 0.0


def topk_accuracy(logits: np.ndarray, targets: np.ndarray, k: int = 5) -> float:
    """Fraction of samples whose target is within the top-k predictions."""
    logits = np.asarray(logits)
    targets = np.asarray(targets)
    if targets.size == 0:
        return 0.0
    k = min(k, logits.shape[-1])
    topk = np.argsort(-logits, axis=-1)[..., :k]
    hits = (topk == targets[..., None]).any(axis=-1)
    return float(hits.mean())


def mean_iou(predictions: np.ndarray, targets: np.ndarray, num_classes: int) -> float:
    """Mean intersection-over-union across classes present in the targets."""
    predictions = np.asarray(predictions)
    targets = np.asarray(targets)
    ious = []
    for cls in range(num_classes):
        pred_mask = predictions == cls
        target_mask = targets == cls
        union = np.logical_or(pred_mask, target_mask).sum()
        if union == 0:
            continue
        intersection = np.logical_and(pred_mask, target_mask).sum()
        ious.append(intersection / union)
    return float(np.mean(ious)) if ious else 0.0


def perplexity_from_loss(mean_cross_entropy: float) -> float:
    """Perplexity = exp(mean token cross-entropy); capped to stay finite."""
    return float(math.exp(min(mean_cross_entropy, 30.0)))


def span_f1_single(pred_start: int, pred_end: int, true_start: int, true_end: int) -> float:
    """Token-overlap F1 between a predicted and a gold answer span."""
    pred_tokens = set(range(int(pred_start), int(pred_end) + 1))
    true_tokens = set(range(int(true_start), int(true_end) + 1))
    if not pred_tokens or not true_tokens:
        return 0.0
    overlap = len(pred_tokens & true_tokens)
    if overlap == 0:
        return 0.0
    precision = overlap / len(pred_tokens)
    recall = overlap / len(true_tokens)
    return 2 * precision * recall / (precision + recall)


def f1_spans(pred_starts: Sequence[int], pred_ends: Sequence[int],
             true_starts: Sequence[int], true_ends: Sequence[int]) -> float:
    """Mean span F1 over a batch (the SQuAD metric)."""
    scores = [
        span_f1_single(ps, pe, ts, te)
        for ps, pe, ts, te in zip(pred_starts, pred_ends, true_starts, true_ends)
    ]
    return float(np.mean(scores)) if scores else 0.0

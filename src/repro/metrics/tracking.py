"""Run-history recording and time-to-accuracy (TTA) computation.

The paper's headline metric is TTA — "the time taken to a converged validation
accuracy" (§6.1).  :class:`RunHistory` records per-epoch snapshots (loss,
metric, simulated time, wall time, frozen fraction) during a training run and
computes TTA/speedup against a target accuracy, plus the per-epoch series the
figure benches print.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

__all__ = ["EpochRecord", "RunHistory", "tta_speedup"]


@dataclass
class EpochRecord:
    """One epoch's summary statistics."""

    epoch: int
    train_loss: float
    metric: float
    simulated_time: float
    wall_time: float
    learning_rate: float
    frozen_fraction: float = 0.0
    cached_fp: bool = False

    def as_dict(self) -> Dict[str, float]:
        return {
            "epoch": self.epoch,
            "train_loss": self.train_loss,
            "metric": self.metric,
            "simulated_time": self.simulated_time,
            "wall_time": self.wall_time,
            "learning_rate": self.learning_rate,
            "frozen_fraction": self.frozen_fraction,
            "cached_fp": float(self.cached_fp),
        }


@dataclass
class RunHistory:
    """Accumulated epoch records for one training run."""

    name: str = "run"
    metric_name: str = "metric"
    higher_is_better: bool = True
    records: List[EpochRecord] = field(default_factory=list)

    def add(self, record: EpochRecord) -> None:
        self.records.append(record)

    # ------------------------------------------------------------------ #
    # Series accessors
    # ------------------------------------------------------------------ #
    def metrics(self) -> List[float]:
        return [r.metric for r in self.records]

    def losses(self) -> List[float]:
        return [r.train_loss for r in self.records]

    def simulated_times(self) -> List[float]:
        return [r.simulated_time for r in self.records]

    def frozen_fractions(self) -> List[float]:
        return [r.frozen_fraction for r in self.records]

    def final_metric(self) -> float:
        return self.records[-1].metric if self.records else float("nan")

    def best_metric(self) -> float:
        if not self.records:
            return float("nan")
        values = self.metrics()
        return max(values) if self.higher_is_better else min(values)

    def total_simulated_time(self) -> float:
        return self.records[-1].simulated_time if self.records else 0.0

    def total_wall_time(self) -> float:
        return self.records[-1].wall_time if self.records else 0.0

    # ------------------------------------------------------------------ #
    # Time to accuracy
    # ------------------------------------------------------------------ #
    def _reaches(self, metric: float, target: float) -> bool:
        return metric >= target if self.higher_is_better else metric <= target

    def time_to_accuracy(self, target: float, use_wall_time: bool = False) -> Optional[float]:
        """Simulated (or wall) time at which the metric first reaches the target.

        Returns ``None`` when the run never reaches it.
        """
        for record in self.records:
            if self._reaches(record.metric, target):
                return record.wall_time if use_wall_time else record.simulated_time
        return None

    def epochs_to_accuracy(self, target: float) -> Optional[int]:
        for record in self.records:
            if self._reaches(record.metric, target):
                return record.epoch
        return None

    def as_table(self) -> List[Dict[str, float]]:
        """All records as dictionaries (handy for printing benchmark rows)."""
        return [r.as_dict() for r in self.records]


def tta_speedup(baseline: RunHistory, accelerated: RunHistory, target: float,
                use_wall_time: bool = False) -> Optional[float]:
    """Relative TTA speedup of ``accelerated`` over ``baseline``.

    Returns ``(T_baseline - T_accelerated) / T_baseline`` — e.g. 0.28 for the
    paper's "28% speedup" — or ``None`` when either run misses the target.
    """
    baseline_time = baseline.time_to_accuracy(target, use_wall_time)
    accelerated_time = accelerated.time_to_accuracy(target, use_wall_time)
    if baseline_time is None or accelerated_time is None or baseline_time <= 0:
        return None
    return (baseline_time - accelerated_time) / baseline_time

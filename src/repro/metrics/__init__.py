"""``repro.metrics`` — accuracy metrics and time-to-accuracy tracking."""

from .accuracy import f1_spans, mean_iou, perplexity_from_loss, span_f1_single, top1_accuracy, topk_accuracy
from .tracking import EpochRecord, RunHistory, tta_speedup

__all__ = [
    "top1_accuracy",
    "topk_accuracy",
    "mean_iou",
    "perplexity_from_loss",
    "f1_spans",
    "span_f1_single",
    "EpochRecord",
    "RunHistory",
    "tta_speedup",
]

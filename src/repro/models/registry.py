"""Model registry mapping the paper's evaluation workloads to factories.

Table 1 of the paper lists seven model/dataset combinations.  The registry
captures, for each workload: a model factory, the task type, the dataset name,
the number of building layer modules the paper reports, and the TTA speedup
the paper measured — the latter two are what the Table 1 benchmark checks the
reproduction against (structure exactly, speedup in shape).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .bert import bert_qa_lite
from .deeplab import deeplabv3_lite
from .mobilenet import mobilenet_v2_lite
from .resnet import resnet50_lite, resnet56
from .transformer import transformer_base_lite, transformer_tiny

__all__ = ["WorkloadSpec", "WORKLOADS", "get_workload", "list_workloads", "register_workload"]


@dataclass(frozen=True)
class WorkloadSpec:
    """Description of one Table 1 workload.

    Attributes
    ----------
    name:
        Registry key (e.g. ``"resnet56_cifar10"``).
    task:
        One of ``image_classification``, ``semantic_segmentation``,
        ``machine_translation``, ``question_answering``.
    model_factory:
        Zero-argument callable returning a freshly initialised model.
    dataset:
        Name of the synthetic dataset in :mod:`repro.data`.
    paper_model:
        Model name as reported in the paper.
    paper_layer_modules:
        Number of building layer modules the paper reports for this model.
    paper_tta_speedup:
        TTA speedup the paper reports (fraction, e.g. 0.28 for 28%).
    accuracy_metric:
        Metric name used to judge convergence (``top1``, ``miou``,
        ``perplexity``, ``f1``).
    higher_is_better:
        Whether larger metric values are better (False for perplexity).
    fine_tuning:
        True for the BERT/SQuAD workload, which starts from a pre-trained
        checkpoint.
    """

    name: str
    task: str
    model_factory: Callable[[], object]
    dataset: str
    paper_model: str
    paper_layer_modules: int
    paper_tta_speedup: float
    accuracy_metric: str
    higher_is_better: bool = True
    fine_tuning: bool = False
    notes: str = ""


WORKLOADS: Dict[str, WorkloadSpec] = {}


def register_workload(spec: WorkloadSpec) -> WorkloadSpec:
    """Add a workload to the registry (overwrites on name collision)."""
    WORKLOADS[spec.name] = spec
    return spec


def get_workload(name: str) -> WorkloadSpec:
    """Look up a workload; raises ``KeyError`` with the known names on miss."""
    if name not in WORKLOADS:
        raise KeyError(f"unknown workload {name!r}; known: {sorted(WORKLOADS)}")
    return WORKLOADS[name]


def list_workloads(task: Optional[str] = None) -> List[WorkloadSpec]:
    """All registered workloads, optionally filtered by task type."""
    specs = list(WORKLOADS.values())
    if task is not None:
        specs = [s for s in specs if s.task == task]
    return specs


register_workload(WorkloadSpec(
    name="resnet50_imagenet",
    task="image_classification",
    model_factory=lambda: resnet50_lite(num_classes=20),
    dataset="synthetic_imagenet",
    paper_model="ResNet-50",
    paper_layer_modules=48,
    paper_tta_speedup=0.28,
    accuracy_metric="top1",
))

register_workload(WorkloadSpec(
    name="mobilenet_v2_cifar10",
    task="image_classification",
    model_factory=lambda: mobilenet_v2_lite(num_classes=10),
    dataset="synthetic_cifar10",
    paper_model="MobileNet V2",
    paper_layer_modules=17,
    paper_tta_speedup=0.22,
    accuracy_metric="top1",
))

register_workload(WorkloadSpec(
    name="resnet56_cifar10",
    task="image_classification",
    model_factory=lambda: resnet56(num_classes=10),
    dataset="synthetic_cifar10",
    paper_model="ResNet-56",
    paper_layer_modules=54,
    paper_tta_speedup=0.23,
    accuracy_metric="top1",
))

register_workload(WorkloadSpec(
    name="deeplabv3_voc",
    task="semantic_segmentation",
    model_factory=lambda: deeplabv3_lite(num_classes=8),
    dataset="synthetic_voc",
    paper_model="DeepLabv3",
    paper_layer_modules=49,
    paper_tta_speedup=0.21,
    accuracy_metric="miou",
))

register_workload(WorkloadSpec(
    name="transformer_base_wmt16",
    task="machine_translation",
    model_factory=lambda: transformer_base_lite(vocab_size=64),
    dataset="synthetic_wmt16",
    paper_model="Transformer-Base",
    paper_layer_modules=12,
    paper_tta_speedup=0.43,
    accuracy_metric="perplexity",
    higher_is_better=False,
))

register_workload(WorkloadSpec(
    name="transformer_tiny_wmt16",
    task="machine_translation",
    model_factory=lambda: transformer_tiny(vocab_size=32),
    dataset="synthetic_wmt16",
    paper_model="Transformer-Tiny",
    paper_layer_modules=4,
    paper_tta_speedup=0.19,
    accuracy_metric="perplexity",
    higher_is_better=False,
))

register_workload(WorkloadSpec(
    name="bert_squad",
    task="question_answering",
    model_factory=lambda: bert_qa_lite(num_layers=12),
    dataset="synthetic_squad",
    paper_model="BERT-Base (fine-tuning)",
    paper_layer_modules=12,
    paper_tta_speedup=0.41,
    accuracy_metric="f1",
    fine_tuning=True,
))

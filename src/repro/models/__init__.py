"""``repro.models`` — the seven evaluation models of the Egeria paper.

Scaled-down (width/resolution) but structurally faithful implementations of
ResNet-50/56, MobileNetV2, DeepLabv3, Transformer-Base/Tiny and BERT-Base,
plus a registry that maps Table 1's workloads to factories.
"""

from .bert import BertForQuestionAnswering, BertLite, bert_lite, bert_qa_lite, pretrain_bert_lite
from .deeplab import ASPPLite, DeepLabV3Lite, deeplabv3_lite
from .mobilenet import MobileNetV2, mobilenet_v2_lite
from .registry import WORKLOADS, WorkloadSpec, get_workload, list_workloads, register_workload
from .resnet import CifarResNet, ImageNetResNet, resnet8, resnet18_lite, resnet20, resnet50_lite, resnet56
from .transformer import TransformerMT, transformer_base_lite, transformer_tiny

__all__ = [
    "CifarResNet",
    "ImageNetResNet",
    "resnet8",
    "resnet20",
    "resnet56",
    "resnet18_lite",
    "resnet50_lite",
    "MobileNetV2",
    "mobilenet_v2_lite",
    "ASPPLite",
    "DeepLabV3Lite",
    "deeplabv3_lite",
    "TransformerMT",
    "transformer_base_lite",
    "transformer_tiny",
    "BertLite",
    "BertForQuestionAnswering",
    "bert_lite",
    "bert_qa_lite",
    "pretrain_bert_lite",
    "WorkloadSpec",
    "WORKLOADS",
    "get_workload",
    "list_workloads",
    "register_workload",
]

"""BERT-lite encoder with a SQuAD-style span extraction head.

The paper's question-answering task fine-tunes a *pre-trained* BERT-Base
(12 Transformer blocks) on SQuAD 1.0 (§6.2, Figure 8d).  Here we provide:

* :class:`BertLite` — an encoder-only Transformer with the BERT block
  structure (token + position embeddings, 12 encoder layers at default
  configuration, GELU feed-forward) at reduced width, and
* :func:`pretrain_bert_lite` — a short masked-token pre-training pass that
  produces the "pre-trained" checkpoint fine-tuning starts from, so the
  reproduction keeps the fine-tuning-vs-from-scratch distinction that makes
  AutoFreeze competitive on this task only.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .. import nn

__all__ = ["BertLite", "BertForQuestionAnswering", "bert_lite", "bert_qa_lite", "pretrain_bert_lite"]


class BertEncoderLayer(nn.Module):
    """Post-norm BERT encoder block: self-attention + GELU feed-forward."""

    def __init__(self, d_model: int, num_heads: int, d_ff: int, dropout: float = 0.0,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.attention = nn.MultiHeadAttention(d_model, num_heads, dropout=dropout, rng=rng)
        self.norm1 = nn.LayerNorm(d_model)
        self.fc1 = nn.Linear(d_model, d_ff, rng=rng)
        self.fc2 = nn.Linear(d_ff, d_model, rng=rng)
        self.gelu = nn.GELU()
        self.norm2 = nn.LayerNorm(d_model)
        self.dropout = nn.Dropout(dropout)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        x = self.norm1(x + self.dropout(self.attention(x)))
        ff = self.fc2(self.gelu(self.fc1(x)))
        return self.norm2(x + self.dropout(ff))


class BertLite(nn.Module):
    """Encoder-only Transformer with BERT's embedding + block structure."""

    def __init__(self, vocab_size: int = 128, d_model: int = 32, num_heads: int = 4, d_ff: int = 64,
                 num_layers: int = 12, max_len: int = 64, dropout: float = 0.0, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.vocab_size = vocab_size
        self.d_model = d_model
        self.num_layers = num_layers

        self.token_embed = nn.Embedding(vocab_size, d_model, rng=rng)
        self.position_embed = nn.Embedding(max_len, d_model, rng=rng)
        self.embed_norm = nn.LayerNorm(d_model)
        self.layers = nn.ModuleList(
            [BertEncoderLayer(d_model, num_heads, d_ff, dropout=dropout, rng=rng) for _ in range(num_layers)]
        )

        self.module_sequence: List[str] = ["token_embed"] + [f"layers.{i}" for i in range(num_layers)]

    def forward(self, token_ids: np.ndarray) -> nn.Tensor:
        """Return contextual embeddings ``(N, S, d_model)``."""
        ids = np.asarray(token_ids.data if isinstance(token_ids, nn.Tensor) else token_ids, dtype=np.int64)
        positions = np.broadcast_to(np.arange(ids.shape[1]), ids.shape)
        x = self.token_embed(ids) + self.position_embed(positions)
        x = self.embed_norm(x)
        for layer in self.layers:
            x = layer(x)
        return x


class BertForQuestionAnswering(nn.Module):
    """BERT encoder plus a two-logit span head (start / end positions)."""

    def __init__(self, encoder: Optional[BertLite] = None, seed: int = 0, **encoder_kwargs):
        super().__init__()
        rng = np.random.default_rng(seed + 1)
        self.encoder = encoder if encoder is not None else BertLite(seed=seed, **encoder_kwargs)
        self.qa_head = nn.Linear(self.encoder.d_model, 2, rng=rng)
        self.module_sequence: List[str] = [f"encoder.{name}" for name in self.encoder.module_sequence] + ["qa_head"]

    def forward(self, token_ids: np.ndarray) -> Tuple[nn.Tensor, nn.Tensor]:
        """Return ``(start_logits, end_logits)``, each of shape ``(N, S)``."""
        hidden = self.encoder(token_ids)
        logits = self.qa_head(hidden)
        start_logits = logits[:, :, 0]
        end_logits = logits[:, :, 1]
        return start_logits, end_logits


def bert_lite(num_layers: int = 12, seed: int = 0, **kwargs) -> BertLite:
    """Default 12-layer BERT-lite encoder."""
    return BertLite(num_layers=num_layers, seed=seed, **kwargs)


def bert_qa_lite(num_layers: int = 12, seed: int = 0, **kwargs) -> BertForQuestionAnswering:
    """BERT-lite with the SQuAD-style span head attached."""
    return BertForQuestionAnswering(encoder=BertLite(num_layers=num_layers, seed=seed, **kwargs), seed=seed)


def pretrain_bert_lite(model: BertLite, num_steps: int = 30, batch_size: int = 8, seq_len: int = 16,
                       lr: float = 5e-3, seed: int = 0) -> BertLite:
    """Run a short masked-token prediction pass to produce a "pre-trained" BERT.

    The QA experiment in the paper is a *fine-tuning* workload; starting from
    randomly initialised weights would make it a from-scratch workload and
    change which baselines look good (AutoFreeze is competitive only for
    fine-tuning).  This cheap pre-training pass preserves that distinction.
    """
    from ..optim import Adam  # local import to avoid a package cycle

    rng = np.random.default_rng(seed)
    head = nn.Linear(model.d_model, model.vocab_size, rng=rng)
    optimizer = Adam(list(model.parameters()) + list(head.parameters()), lr=lr)
    for _ in range(num_steps):
        tokens = rng.integers(0, model.vocab_size, size=(batch_size, seq_len))
        targets = tokens.copy()
        mask = rng.random(tokens.shape) < 0.15
        corrupted = tokens.copy()
        corrupted[mask] = rng.integers(0, model.vocab_size, size=int(mask.sum()))
        hidden = model(corrupted)
        logits = head(hidden)
        loss = nn.cross_entropy(logits, targets)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
    return model

"""MobileNetV2-lite: inverted residual blocks with linear bottlenecks.

The paper evaluates MobileNetV2 on CIFAR-10 with 17 inverted-residual building
modules (Table 1).  This lite variant keeps the canonical
(expansion, channels, repeats, stride) schedule of the original architecture
with scaled-down widths so the 17-block structure — and hence the freezing
schedule shape — is preserved.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from .. import nn

__all__ = ["MobileNetV2", "mobilenet_v2_lite"]

# (expansion factor t, output channels c, repeats n, stride s) per stage,
# mirroring Table 2 of the MobileNetV2 paper with channels divided by 8.
_DEFAULT_SCHEDULE: Tuple[Tuple[int, int, int, int], ...] = (
    (1, 4, 1, 1),
    (2, 6, 2, 1),
    (2, 8, 3, 2),
    (2, 12, 4, 2),
    (2, 16, 3, 1),
    (2, 24, 3, 2),
    (2, 32, 1, 1),
)


class MobileNetV2(nn.Module):
    """MobileNetV2 composed of a stem, inverted-residual stages and a classifier."""

    def __init__(self, num_classes: int = 10, schedule: Sequence[Tuple[int, int, int, int]] = _DEFAULT_SCHEDULE,
                 stem_channels: int = 8, last_channels: int = 40, in_channels: int = 3, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.num_classes = num_classes

        self.stem = nn.ConvBNReLU(in_channels, stem_channels, kernel_size=3, stride=1, relu6=True, rng=rng)
        blocks = []
        channels = stem_channels
        for expansion, out_channels, repeats, stride in schedule:
            for block_idx in range(repeats):
                block_stride = stride if block_idx == 0 else 1
                blocks.append(nn.InvertedResidual(channels, out_channels, stride=block_stride,
                                                  expand_ratio=expansion, rng=rng))
                channels = out_channels
        self.blocks = nn.Sequential(*blocks)
        self.head = nn.ConvBNReLU(channels, last_channels, kernel_size=1, relu6=True, rng=rng)
        self.avgpool = nn.AdaptiveAvgPool2d(1)
        self.flatten = nn.Flatten()
        self.classifier = nn.Linear(last_channels, num_classes, rng=rng)

        self.module_sequence: List[str] = (
            ["stem"] + [f"blocks.{i}" for i in range(len(blocks))] + ["head", "classifier"]
        )

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        out = self.stem(x)
        out = self.blocks(out)
        out = self.head(out)
        out = self.flatten(self.avgpool(out))
        return self.classifier(out)

    @property
    def num_building_blocks(self) -> int:
        """Number of inverted-residual building modules (17 at default schedule)."""
        return len(self.blocks)


def mobilenet_v2_lite(num_classes: int = 10, seed: int = 0) -> MobileNetV2:
    """The default 17-block MobileNetV2-lite used by the Table 1 benchmark."""
    return MobileNetV2(num_classes=num_classes, seed=seed)

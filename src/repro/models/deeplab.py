"""DeepLabv3-lite for semantic segmentation.

The paper's DeepLabv3 consists of "a backbone module for feature computation
and extraction plus a classifier module that takes the output of the backbone
and returns a dense prediction" (§6.2).  This lite variant uses the CIFAR
ResNet backbone, a simplified ASPP-like head (parallel 1x1 / 3x3 dilated-ish
branches + image pooling) and nearest-neighbour upsampling back to the input
resolution.  The backbone/head split matches the paper's 49 layer modules
("residual blocks and DeepLab head").
"""

from __future__ import annotations

from typing import List

import numpy as np

from .. import nn
from ..nn import functional as F
from .resnet import CifarResNet

__all__ = ["ASPPLite", "DeepLabV3Lite", "deeplabv3_lite"]


class ASPPLite(nn.Module):
    """Simplified Atrous Spatial Pyramid Pooling head.

    Three parallel branches (1x1 conv, 3x3 conv, global-pool + 1x1 conv)
    concatenated and projected — enough structure to behave like a "classifier
    module" with its own parameters and convergence trajectory.
    """

    def __init__(self, in_channels: int, branch_channels: int = 16, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.branch1 = nn.ConvBNReLU(in_channels, branch_channels, kernel_size=1, rng=rng)
        self.branch2 = nn.ConvBNReLU(in_channels, branch_channels, kernel_size=3, rng=rng)
        self.pool_branch = nn.ConvBNReLU(in_channels, branch_channels, kernel_size=1, rng=rng)
        self.project = nn.ConvBNReLU(branch_channels * 3, branch_channels, kernel_size=1, rng=rng)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        b1 = self.branch1(x)
        b2 = self.branch2(x)
        pooled = x.mean(axis=(2, 3), keepdims=True)
        b3 = self.pool_branch(pooled)
        # Broadcast the pooled branch back to the spatial size of the others.
        b3 = b3 + nn.zeros(*b1.shape)
        merged = nn.concatenate([b1, b2, b3], axis=1)
        return self.project(merged)


class DeepLabV3Lite(nn.Module):
    """Backbone + ASPP head + per-pixel classifier, with output upsampling."""

    def __init__(self, num_classes: int = 8, backbone_depth: int = 20, backbone_width: float = 1.0,
                 head_channels: int = 16, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.num_classes = num_classes
        self.backbone = CifarResNet(depth=backbone_depth, num_classes=num_classes, width=backbone_width, seed=seed)
        backbone_out = self.backbone.fc.in_features
        self.head = ASPPLite(backbone_out, branch_channels=head_channels, rng=rng)
        self.classifier = nn.Conv2d(head_channels, num_classes, 1, rng=rng)
        #: Backbone downsamples by 4 (two stride-2 stages); the logits are
        #: upsampled back to the input resolution.
        self.output_stride = 4

        blocks_per_stage = (backbone_depth - 2) // 6
        self.module_sequence: List[str] = (
            ["backbone.conv1"]
            + [f"backbone.layer1.{i}" for i in range(blocks_per_stage)]
            + [f"backbone.layer2.{i}" for i in range(blocks_per_stage)]
            + [f"backbone.layer3.{i}" for i in range(blocks_per_stage)]
            + ["head", "classifier"]
        )

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        features = self.backbone.features(x)
        features = self.head(features)
        logits = self.classifier(features)
        logits = F.upsample_nearest(logits, self.output_stride)
        # Returns (N, num_classes, H, W); the loss flattens spatial dims.
        return logits.transpose(0, 2, 3, 1)


def deeplabv3_lite(num_classes: int = 8, seed: int = 0) -> DeepLabV3Lite:
    """Default DeepLabv3-lite configuration used by the Figure 8b benchmark."""
    return DeepLabV3Lite(num_classes=num_classes, seed=seed)

"""ResNet models: CIFAR-style ResNet (ResNet-56) and ImageNet-style ResNet-50.

Both keep the exact stage/block decomposition of the original architectures —
that structure is what Egeria parses into *layer modules* and freezes
progressively (Figure 11 in the paper shows the ResNet-56 decomposition:
layer 1 holds ~5% of the parameters, layer 2 ~20%, layer 3 ~75%).  Width and
input resolution are scaled down so the numpy substrate trains them in
seconds, but the relative stage sizes are preserved.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .. import nn

__all__ = ["CifarResNet", "resnet56", "resnet20", "resnet8", "ImageNetResNet", "resnet50_lite", "resnet18_lite"]


class CifarResNet(nn.Module):
    """CIFAR-style ResNet with three stages of :class:`~repro.nn.BasicBlock`.

    ``depth`` must be ``6n + 2`` (e.g. 56 → n = 9, 20 → n = 3, 8 → n = 1).
    ``width`` scales the channel counts (16/32/64 at width 1.0).
    """

    def __init__(self, depth: int = 20, num_classes: int = 10, width: float = 1.0,
                 in_channels: int = 3, seed: int = 0):
        super().__init__()
        if (depth - 2) % 6 != 0:
            raise ValueError(f"CIFAR ResNet depth must be 6n+2, got {depth}")
        blocks_per_stage = (depth - 2) // 6
        rng = np.random.default_rng(seed)
        channels = [max(int(round(c * width)), 4) for c in (16, 32, 64)]

        self.depth = depth
        self.num_classes = num_classes
        self.conv1 = nn.Conv2d(in_channels, channels[0], 3, padding=1, bias=False, rng=rng)
        self.bn1 = nn.BatchNorm2d(channels[0])
        self.relu = nn.ReLU()
        self.layer1 = self._make_stage(channels[0], channels[0], blocks_per_stage, stride=1, rng=rng)
        self.layer2 = self._make_stage(channels[0], channels[1], blocks_per_stage, stride=2, rng=rng)
        self.layer3 = self._make_stage(channels[1], channels[2], blocks_per_stage, stride=2, rng=rng)
        self.avgpool = nn.AdaptiveAvgPool2d(1)
        self.flatten = nn.Flatten()
        self.fc = nn.Linear(channels[2], num_classes, rng=rng)

        #: Ordered building blocks (dotted paths) in forward order — consumed
        #: by :func:`repro.core.modules.parse_layer_modules`.
        self.module_sequence: List[str] = (
            ["conv1"]
            + [f"layer1.{i}" for i in range(blocks_per_stage)]
            + [f"layer2.{i}" for i in range(blocks_per_stage)]
            + [f"layer3.{i}" for i in range(blocks_per_stage)]
            + ["fc"]
        )

    @staticmethod
    def _make_stage(in_channels: int, out_channels: int, num_blocks: int, stride: int,
                    rng: np.random.Generator) -> nn.Sequential:
        blocks = [nn.BasicBlock(in_channels, out_channels, stride=stride, rng=rng)]
        blocks.extend(nn.BasicBlock(out_channels, out_channels, rng=rng) for _ in range(num_blocks - 1))
        return nn.Sequential(*blocks)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.layer1(out)
        out = self.layer2(out)
        out = self.layer3(out)
        out = self.flatten(self.avgpool(out))
        return self.fc(out)

    def features(self, x: nn.Tensor) -> nn.Tensor:
        """Backbone features before global pooling (used by DeepLabv3-lite)."""
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.layer1(out)
        out = self.layer2(out)
        return self.layer3(out)


def resnet56(num_classes: int = 10, width: float = 1.0, seed: int = 0) -> CifarResNet:
    """The paper's ResNet-56 for CIFAR-10 (three stages of 9 basic blocks)."""
    return CifarResNet(depth=56, num_classes=num_classes, width=width, seed=seed)


def resnet20(num_classes: int = 10, width: float = 1.0, seed: int = 0) -> CifarResNet:
    """ResNet-20: same structure as ResNet-56 with 3 blocks per stage."""
    return CifarResNet(depth=20, num_classes=num_classes, width=width, seed=seed)


def resnet8(num_classes: int = 10, width: float = 1.0, seed: int = 0) -> CifarResNet:
    """ResNet-8: one block per stage — the fast stand-in used in unit tests."""
    return CifarResNet(depth=8, num_classes=num_classes, width=width, seed=seed)


class ImageNetResNet(nn.Module):
    """ImageNet-style ResNet built from :class:`~repro.nn.Bottleneck` blocks.

    ResNet-50 has stages of (3, 4, 6, 3) bottleneck blocks (48 residual
    building blocks counting the three convolutions each, which the paper
    reports as "48 layer modules grouped into four stages").  The lite variant
    keeps the (3, 4, 6, 3) structure with reduced width so the deep stages
    still dominate the parameter count.
    """

    def __init__(self, stage_blocks: Sequence[int] = (3, 4, 6, 3), num_classes: int = 100,
                 base_width: int = 8, in_channels: int = 3, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.num_classes = num_classes
        widths = [base_width * (2 ** i) for i in range(4)]

        self.conv1 = nn.Conv2d(in_channels, widths[0], 3, stride=1, padding=1, bias=False, rng=rng)
        self.bn1 = nn.BatchNorm2d(widths[0])
        self.relu = nn.ReLU()
        self.maxpool = nn.MaxPool2d(2)

        in_ch = widths[0]
        stages = []
        for stage_idx, (num_blocks, width) in enumerate(zip(stage_blocks, widths)):
            stride = 1 if stage_idx == 0 else 2
            blocks = [nn.Bottleneck(in_ch, width, stride=stride, rng=rng)]
            in_ch = width * nn.Bottleneck.expansion
            blocks.extend(nn.Bottleneck(in_ch, width, rng=rng) for _ in range(num_blocks - 1))
            stages.append(nn.Sequential(*blocks))
        self.layer1, self.layer2, self.layer3, self.layer4 = stages

        self.avgpool = nn.AdaptiveAvgPool2d(1)
        self.flatten = nn.Flatten()
        self.fc = nn.Linear(in_ch, num_classes, rng=rng)
        self.out_channels = in_ch

        self.module_sequence: List[str] = ["conv1"]
        for stage_idx, num_blocks in enumerate(stage_blocks, start=1):
            self.module_sequence.extend(f"layer{stage_idx}.{i}" for i in range(num_blocks))
        self.module_sequence.append("fc")

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        out = self.features(x)
        out = self.flatten(self.avgpool(out))
        return self.fc(out)

    def features(self, x: nn.Tensor) -> nn.Tensor:
        """Backbone feature map (used as the DeepLabv3 backbone)."""
        out = self.maxpool(self.relu(self.bn1(self.conv1(x))))
        out = self.layer1(out)
        out = self.layer2(out)
        out = self.layer3(out)
        return self.layer4(out)


def resnet50_lite(num_classes: int = 100, base_width: int = 8, seed: int = 0) -> ImageNetResNet:
    """Width-scaled ResNet-50 (stages 3-4-6-3 of bottleneck blocks)."""
    return ImageNetResNet(stage_blocks=(3, 4, 6, 3), num_classes=num_classes, base_width=base_width, seed=seed)


def resnet18_lite(num_classes: int = 100, base_width: int = 8, seed: int = 0) -> ImageNetResNet:
    """Smaller 2-2-2-2 bottleneck variant for fast integration tests."""
    return ImageNetResNet(stage_blocks=(2, 2, 2, 2), num_classes=num_classes, base_width=base_width, seed=seed)

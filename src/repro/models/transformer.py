"""Encoder–decoder Transformer for machine translation (Transformer-Base/Tiny).

The paper trains Transformer-Base (6 encoders + 6 decoders = 12 building
layer modules) on WMT16 EN-DE and a Transformer-Tiny (2 + 2) variant
(Table 1).  Egeria freezes the front *encoder* layers first; because the
Transformer has a balanced structure (unlike CNNs whose deep layers hold most
parameters), freezing front layers already yields a large speedup (§6.2).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .. import nn

__all__ = ["TransformerMT", "transformer_base_lite", "transformer_tiny"]


def causal_mask(size: int) -> np.ndarray:
    """Boolean lower-triangular mask for autoregressive decoding."""
    return np.tril(np.ones((size, size), dtype=bool))


class TransformerMT(nn.Module):
    """Sequence-to-sequence Transformer with tied source/target vocabulary."""

    def __init__(self, vocab_size: int = 128, d_model: int = 32, num_heads: int = 4, d_ff: int = 64,
                 num_encoder_layers: int = 6, num_decoder_layers: int = 6, max_len: int = 64,
                 dropout: float = 0.0, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.vocab_size = vocab_size
        self.d_model = d_model
        self.num_encoder_layers = num_encoder_layers
        self.num_decoder_layers = num_decoder_layers

        self.src_embed = nn.Embedding(vocab_size, d_model, rng=rng)
        self.tgt_embed = nn.Embedding(vocab_size, d_model, rng=rng)
        self.positional = nn.PositionalEncoding(d_model, max_len=max_len)
        self.encoder = nn.ModuleList(
            [nn.TransformerEncoderLayer(d_model, num_heads, d_ff, dropout=dropout, rng=rng)
             for _ in range(num_encoder_layers)]
        )
        self.decoder = nn.ModuleList(
            [nn.TransformerDecoderLayer(d_model, num_heads, d_ff, dropout=dropout, rng=rng)
             for _ in range(num_decoder_layers)]
        )
        self.encoder_norm = nn.LayerNorm(d_model)
        self.decoder_norm = nn.LayerNorm(d_model)
        self.generator = nn.Linear(d_model, vocab_size, rng=rng)

        self.module_sequence: List[str] = (
            ["src_embed"]
            + [f"encoder.{i}" for i in range(num_encoder_layers)]
            + [f"decoder.{i}" for i in range(num_decoder_layers)]
            + ["generator"]
        )

    def encode(self, src_tokens: np.ndarray) -> nn.Tensor:
        """Run the encoder stack over integer source tokens ``(N, S)``."""
        x = self.positional(self.src_embed(src_tokens))
        for layer in self.encoder:
            x = layer(x)
        return self.encoder_norm(x)

    def decode(self, tgt_tokens: np.ndarray, memory: nn.Tensor) -> nn.Tensor:
        """Run the decoder stack over target tokens with a causal mask."""
        tgt_len = np.asarray(tgt_tokens).shape[1]
        mask = causal_mask(tgt_len)
        x = self.positional(self.tgt_embed(tgt_tokens))
        for layer in self.decoder:
            x = layer(x, memory, self_mask=mask)
        return self.decoder_norm(x)

    def forward(self, src_tokens: np.ndarray, tgt_tokens: Optional[np.ndarray] = None) -> nn.Tensor:
        """Return next-token logits ``(N, T, vocab)`` for teacher forcing.

        When ``tgt_tokens`` is omitted the source tokens double as the target
        prefix (useful for quick smoke tests).
        """
        if tgt_tokens is None:
            tgt_tokens = src_tokens
        memory = self.encode(src_tokens)
        decoded = self.decode(tgt_tokens, memory)
        return self.generator(decoded)


def transformer_base_lite(vocab_size: int = 128, seed: int = 0) -> TransformerMT:
    """6+6-layer Transformer with scaled-down model dimension (paper: Transformer-Base)."""
    return TransformerMT(vocab_size=vocab_size, d_model=32, num_heads=4, d_ff=64,
                         num_encoder_layers=6, num_decoder_layers=6, seed=seed)


def transformer_tiny(vocab_size: int = 64, seed: int = 0) -> TransformerMT:
    """2+2-layer Transformer-Tiny (4 building layer modules, Table 1)."""
    return TransformerMT(vocab_size=vocab_size, d_model=16, num_heads=2, d_ff=32,
                         num_encoder_layers=2, num_decoder_layers=2, seed=seed)

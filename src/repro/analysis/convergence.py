"""Post hoc layer-convergence analysis (the Figure 1 experiment).

:class:`ConvergenceAnalyzer` reproduces the paper's motivation study: track
the PWCCA distance (or SVCCA, or SP-loss plasticity) of each layer module's
activations against a *fully-trained* snapshot of the same model across
training, then identify the "freezable regions" — epochs where a module's
score is stable — and the theoretical compute saving from freezing inside
them (the paper estimates 45% for ResNet-56).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..core.hooks import ActivationRecorder
from ..core.modules import LayerModule
from ..core.plasticity import sp_loss
from ..nn.module import Module
from ..nn.tensor import no_grad
from .pwcca import pwcca_distance

__all__ = ["ConvergenceAnalyzer", "freezable_regions", "theoretical_saving"]


def freezable_regions(scores: Sequence[float], stability_threshold: float = 0.05,
                      min_length: int = 2) -> List[tuple]:
    """Contiguous index ranges where the score curve is stable.

    A region is stable when consecutive scores change by less than
    ``stability_threshold`` (absolute).  Returns ``(start, end)`` inclusive
    index pairs of length at least ``min_length``.
    """
    regions: List[tuple] = []
    start: Optional[int] = None
    for i in range(1, len(scores)):
        stable = abs(scores[i] - scores[i - 1]) < stability_threshold
        if stable and start is None:
            start = i - 1
        elif not stable and start is not None:
            if i - 1 - start + 1 >= min_length:
                regions.append((start, i - 1))
            start = None
    if start is not None and len(scores) - start >= min_length:
        regions.append((start, len(scores) - 1))
    return regions


def theoretical_saving(module_params: Sequence[int], module_regions: Sequence[List[tuple]],
                       num_epochs: int) -> float:
    """Fraction of backward compute saved by freezing inside stable regions.

    The paper's back-of-envelope estimate ("we can reduce the computation
    costs by 45% in theory"): sum over modules of (parameters x epochs spent
    inside a freezable region) divided by (total parameters x total epochs).
    """
    total_params = sum(module_params)
    if total_params == 0 or num_epochs == 0:
        return 0.0
    saved = 0.0
    for params, regions in zip(module_params, module_regions):
        frozen_epochs = sum(end - start + 1 for start, end in regions)
        saved += params * min(frozen_epochs, num_epochs)
    return saved / (total_params * num_epochs)


@dataclass
class ConvergenceAnalyzer:
    """Tracks per-module convergence scores against a fully-trained snapshot.

    Parameters
    ----------
    layer_modules:
        Module decomposition of the model under analysis.
    metric:
        ``"pwcca"`` (Figure 1), ``"sp"`` (plasticity, Figure 4) or a custom
        callable ``f(train_activation, reference_activation) -> float``.
    """

    layer_modules: Sequence[LayerModule]
    metric: object = "pwcca"
    history: Dict[str, List[float]] = field(default_factory=dict)
    epochs: List[int] = field(default_factory=list)

    def _metric_fn(self) -> Callable[[np.ndarray, np.ndarray], float]:
        if callable(self.metric):
            return self.metric
        if self.metric == "pwcca":
            return pwcca_distance
        if self.metric == "sp":
            return sp_loss
        raise ValueError(f"unknown metric {self.metric!r}")

    def record(self, epoch: int, training_model: Module, reference_model: Module, inputs) -> Dict[str, float]:
        """Compare every module's activation between the two models for one batch."""
        metric_fn = self._metric_fn()
        paths = [module.tail_path for module in self.layer_modules]
        scores: Dict[str, float] = {}
        with ActivationRecorder(training_model, paths) as train_recorder, \
                ActivationRecorder(reference_model, paths) as ref_recorder:
            with no_grad():
                training_model(*inputs)
                reference_model(*inputs)
            for module in self.layer_modules:
                train_act = train_recorder.get(module.tail_path)
                ref_act = ref_recorder.get(module.tail_path)
                if train_act is None or ref_act is None:
                    continue
                score = metric_fn(train_act, ref_act)
                scores[module.name] = score
                self.history.setdefault(module.name, []).append(score)
        self.epochs.append(epoch)
        return scores

    def module_regions(self, stability_threshold: float = 0.05, min_length: int = 2) -> Dict[str, List[tuple]]:
        """Freezable regions per module."""
        return {
            name: freezable_regions(scores, stability_threshold, min_length)
            for name, scores in self.history.items()
        }

    def estimated_saving(self, stability_threshold: float = 0.05) -> float:
        """Theoretical compute saving from freezing inside all stable regions."""
        regions = self.module_regions(stability_threshold)
        params = [module.num_params for module in self.layer_modules]
        ordered_regions = [regions.get(module.name, []) for module in self.layer_modules]
        return theoretical_saving(params, ordered_regions, max(len(self.epochs), 1))

    def as_table(self) -> List[Dict[str, float]]:
        """Per-epoch rows of every module's score (printable by the bench)."""
        rows = []
        for row_index, epoch in enumerate(self.epochs):
            row: Dict[str, float] = {"epoch": float(epoch)}
            for name, scores in self.history.items():
                if row_index < len(scores):
                    row[name] = scores[row_index]
            rows.append(row)
        return rows

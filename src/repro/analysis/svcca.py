"""SVCCA: singular-vector canonical correlation analysis.

SVCCA (Raghu et al., NeurIPS 2017) is the precursor of PWCCA referenced in the
paper's related work ([73]): activations are first reduced to the top singular
directions explaining a target fraction of variance, then plain CCA is applied
and the mean canonical correlation reported.  Included for completeness of the
post hoc analysis toolkit (it behaves like PWCCA without projection
weighting); the convergence-analysis bench can use either.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .pwcca import _center, _flatten_activation, cca_correlations

__all__ = ["svcca_similarity", "svcca_distance", "truncate_to_variance"]


def truncate_to_variance(matrix: np.ndarray, variance_fraction: float = 0.99,
                         max_dims: Optional[int] = 32) -> np.ndarray:
    """Project samples onto the top singular directions explaining the variance."""
    centered = _center(_flatten_activation(matrix))
    u, s, _vt = np.linalg.svd(centered, full_matrices=False)
    if s.size == 0:
        return centered
    energy = np.cumsum(s ** 2) / np.sum(s ** 2)
    keep = int(np.searchsorted(energy, variance_fraction) + 1)
    if max_dims is not None:
        keep = min(keep, max_dims)
    keep = max(keep, 1)
    return u[:, :keep] * s[:keep]


def svcca_similarity(x: np.ndarray, y: np.ndarray, variance_fraction: float = 0.99,
                     max_dims: Optional[int] = 32) -> float:
    """Mean canonical correlation after SVD truncation (1 = identical)."""
    x_reduced = truncate_to_variance(x, variance_fraction, max_dims)
    y_reduced = truncate_to_variance(y, variance_fraction, max_dims)
    correlations, _directions = cca_correlations(x_reduced, y_reduced, max_dims=max_dims)
    if correlations.size == 0:
        return 0.0
    return float(np.mean(correlations))


def svcca_distance(x: np.ndarray, y: np.ndarray, variance_fraction: float = 0.99,
                   max_dims: Optional[int] = 32) -> float:
    """SVCCA distance in [0, 1]; lower means more similar representations."""
    return 1.0 - svcca_similarity(x, y, variance_fraction, max_dims)

"""``repro.analysis`` — post hoc layer-convergence analysis (PWCCA/SVCCA).

The motivation-side tooling of the paper: PWCCA distance against a
fully-trained model (Figure 1), SVCCA, freezable-region detection and the
theoretical compute-saving estimate.
"""

from .convergence import ConvergenceAnalyzer, freezable_regions, theoretical_saving
from .pwcca import cca_correlations, pwcca_distance, pwcca_similarity
from .svcca import svcca_distance, svcca_similarity, truncate_to_variance

__all__ = [
    "pwcca_similarity",
    "pwcca_distance",
    "cca_correlations",
    "svcca_similarity",
    "svcca_distance",
    "truncate_to_variance",
    "ConvergenceAnalyzer",
    "freezable_regions",
    "theoretical_saving",
]

"""PWCCA: projection-weighted canonical correlation analysis.

Figure 1 of the paper uses PWCCA (Morcos et al., NeurIPS 2018) as a *post hoc*
layer-convergence analysis: the intermediate activation of each layer during
training is compared against the same layer of a fully-trained model; a low
score means the layer has converged to its final representation.  The paper
uses it only for motivation (it requires a fully-trained model, which is not
available during real training) and contrasts it with plasticity, which needs
no prior knowledge and is ~10x cheaper.

Implementation notes
--------------------
Given two activation matrices ``X (n x d1)`` and ``Y (n x d2)`` (samples x
features), CCA finds directions maximising correlation.  PWCCA weights the
canonical correlations by how much of ``X`` each canonical direction explains.
We return ``1 - pwcca_similarity`` as the *distance* so that, like Figure 1,
lower means "closer to the fully-trained model".
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["cca_correlations", "pwcca_similarity", "pwcca_distance"]


def _flatten_activation(activation: np.ndarray) -> np.ndarray:
    """Reshape an activation tensor to (samples, features)."""
    array = np.asarray(activation, dtype=np.float64)
    if array.ndim == 2:
        return array
    if array.ndim == 4:
        # (N, C, H, W) -> treat each spatial position as a sample, channels as features.
        n, c, h, w = array.shape
        return array.transpose(0, 2, 3, 1).reshape(n * h * w, c)
    return array.reshape(array.shape[0], -1)


def _center(matrix: np.ndarray) -> np.ndarray:
    return matrix - matrix.mean(axis=0, keepdims=True)


def cca_correlations(x: np.ndarray, y: np.ndarray, epsilon: float = 1e-8,
                     max_dims: Optional[int] = 32) -> Tuple[np.ndarray, np.ndarray]:
    """Canonical correlations between two activation matrices.

    Returns ``(correlations, x_directions)`` where ``x_directions`` are the
    canonical directions in the (possibly dimensionality-reduced) ``x`` space,
    needed for the projection weighting.
    """
    x = _center(_flatten_activation(x))
    y = _center(_flatten_activation(y))
    if x.shape[0] != y.shape[0]:
        raise ValueError(f"sample counts differ: {x.shape[0]} vs {y.shape[0]}")

    # Reduce dimensionality with SVD for numerical stability (and speed).
    def _reduce(m: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        u, s, _vt = np.linalg.svd(m, full_matrices=False)
        keep = s > epsilon * s.max() if s.size else np.array([], dtype=bool)
        if max_dims is not None:
            keep[max_dims:] = False
        return u[:, keep], s[keep]

    ux, _sx = _reduce(x)
    uy, _sy = _reduce(y)
    if ux.shape[1] == 0 or uy.shape[1] == 0:
        return np.zeros(1), np.zeros((x.shape[0], 1))

    # With whitened bases, canonical correlations are the singular values of ux^T uy.
    qx, qy = ux, uy
    u, s, _vt = np.linalg.svd(qx.T @ qy, full_matrices=False)
    correlations = np.clip(s, 0.0, 1.0)
    x_directions = qx @ u
    return correlations, x_directions


def pwcca_similarity(x: np.ndarray, y: np.ndarray, max_dims: Optional[int] = 32) -> float:
    """Projection-weighted CCA similarity in [0, 1] (1 = identical subspaces)."""
    x_flat = _center(_flatten_activation(x))
    correlations, x_directions = cca_correlations(x, y, max_dims=max_dims)
    if correlations.size == 0:
        return 0.0
    # Weight each canonical correlation by how much of X it accounts for.
    projections = np.abs(x_directions.T @ x_flat)
    weights = projections.sum(axis=1)
    # Truncate FIRST, then normalize over the kept directions: normalizing
    # over all directions and then truncating leaves the weights summing to
    # less than 1 whenever k < len(weights), which deflates the similarity
    # (and inflates the distance) for rank-mismatched inputs.
    k = min(len(weights), len(correlations))
    weights = weights[:k]
    correlations = correlations[:k]
    total = weights.sum()
    if total <= 0:
        weights = np.ones_like(correlations) / max(len(correlations), 1)
    else:
        weights = weights / total
    return float(np.clip(np.sum(weights * correlations), 0.0, 1.0))


def pwcca_distance(training_activation: np.ndarray, reference_activation: np.ndarray,
                   max_dims: Optional[int] = 32) -> float:
    """PWCCA distance in [0, 1]; lower means the layer is closer to converged.

    This is the score plotted in Figure 1 (against a fully-trained model).
    """
    return 1.0 - pwcca_similarity(training_activation, reference_activation, max_dims=max_dims)

"""Functional neural-network operations built on the autograd :class:`Tensor`.

These are the numerical workhorses used by the layer classes in
:mod:`repro.nn.layers`: convolution via im2col, pooling, softmax,
normalisation statistics, embedding lookup, and nearest-neighbour upsampling
(needed by the DeepLabv3-lite head).

Each function returns a :class:`~repro.nn.tensor.Tensor` wired into the
autograd graph, with a hand-written backward closure where the op cannot be
expressed as a composition of primitive tensor ops.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .tensor import Tensor, _unbroadcast, is_grad_enabled

__all__ = [
    "linear",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "adaptive_avg_pool2d",
    "softmax",
    "log_softmax",
    "embedding",
    "upsample_nearest",
    "dropout",
    "one_hot",
    "im2col",
    "col2im",
    "conv_output_size",
]


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution/pooling window."""
    return (size + 2 * padding - kernel) // stride + 1


def im2col(x: np.ndarray, kernel: int, stride: int, padding: int) -> Tuple[np.ndarray, int, int]:
    """Rearrange image patches into columns.

    Parameters
    ----------
    x:
        Input of shape ``(N, C, H, W)``.

    Returns
    -------
    cols:
        Array of shape ``(N, C * kernel * kernel, out_h * out_w)``.
    out_h, out_w:
        Spatial output dimensions.
    """
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel, stride, padding)
    out_w = conv_output_size(w, kernel, stride, padding)
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    cols = np.empty((n, c, kernel, kernel, out_h, out_w), dtype=x.dtype)
    for ki in range(kernel):
        i_end = ki + stride * out_h
        for kj in range(kernel):
            j_end = kj + stride * out_w
            cols[:, :, ki, kj, :, :] = x[:, :, ki:i_end:stride, kj:j_end:stride]
    return cols.reshape(n, c * kernel * kernel, out_h * out_w), out_h, out_w


def col2im(cols: np.ndarray, x_shape: Tuple[int, int, int, int], kernel: int, stride: int, padding: int) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter columns back, accumulating overlaps."""
    n, c, h, w = x_shape
    out_h = conv_output_size(h, kernel, stride, padding)
    out_w = conv_output_size(w, kernel, stride, padding)
    cols = cols.reshape(n, c, kernel, kernel, out_h, out_w)
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    for ki in range(kernel):
        i_end = ki + stride * out_h
        for kj in range(kernel):
            j_end = kj + stride * out_w
            padded[:, :, ki:i_end:stride, kj:j_end:stride] += cols[:, :, ki, kj, :, :]
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine transform ``x @ weight.T + bias`` for 2-D or 3-D inputs."""
    out = x.matmul(weight.transpose())
    if bias is not None:
        out = out + bias
    return out


def conv2d(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None, stride: int = 1, padding: int = 0,
           groups: int = 1) -> Tensor:
    """2-D convolution using an im2col + matmul formulation.

    Supports grouped convolution (``groups > 1``) which MobileNetV2's
    depthwise convolutions rely on.
    """
    n, c_in, h, w = x.shape
    c_out, c_in_per_group, kernel, _ = weight.shape
    assert c_in % groups == 0 and c_out % groups == 0, "channels must divide groups"
    assert c_in // groups == c_in_per_group, (
        f"weight expects {c_in_per_group} in-channels per group, input has {c_in // groups}"
    )

    cols, out_h, out_w = im2col(x.data, kernel, stride, padding)
    if groups == 1:
        w_mat = weight.data.reshape(c_out, -1)
        out_data = np.einsum("of,nfp->nop", w_mat, cols, optimize=True)
    else:
        group_in = c_in // groups
        group_out = c_out // groups
        cols_g = cols.reshape(n, groups, group_in * kernel * kernel, out_h * out_w)
        w_g = weight.data.reshape(groups, group_out, group_in * kernel * kernel)
        out_data = np.einsum("gof,ngfp->ngop", w_g, cols_g, optimize=True).reshape(n, c_out, out_h * out_w)
    out_data = out_data.reshape(n, c_out, out_h, out_w)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, c_out, 1, 1)

    prev = (x, weight) if bias is None else (x, weight, bias)
    requires = is_grad_enabled() and any(p.requires_grad for p in prev)
    out = Tensor(out_data, requires_grad=requires, _prev=prev if requires else (), _op="conv2d")

    def _backward():
        grad = out.grad.reshape(n, c_out, out_h * out_w)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2)))
        if groups == 1:
            w_mat_local = weight.data.reshape(c_out, -1)
            if weight.requires_grad:
                grad_w = np.einsum("nop,nfp->of", grad, cols, optimize=True)
                weight._accumulate(grad_w.reshape(weight.shape))
            if x.requires_grad:
                grad_cols = np.einsum("of,nop->nfp", w_mat_local, grad, optimize=True)
                x._accumulate(col2im(grad_cols, x.shape, kernel, stride, padding))
        else:
            group_in = c_in // groups
            group_out = c_out // groups
            grad_g = grad.reshape(n, groups, group_out, out_h * out_w)
            cols_g = cols.reshape(n, groups, group_in * kernel * kernel, out_h * out_w)
            w_g = weight.data.reshape(groups, group_out, group_in * kernel * kernel)
            if weight.requires_grad:
                grad_w = np.einsum("ngop,ngfp->gof", grad_g, cols_g, optimize=True)
                weight._accumulate(grad_w.reshape(weight.shape))
            if x.requires_grad:
                grad_cols = np.einsum("gof,ngop->ngfp", w_g, grad_g, optimize=True)
                grad_cols = grad_cols.reshape(n, c_in * kernel * kernel, out_h * out_w)
                x._accumulate(col2im(grad_cols, x.shape, kernel, stride, padding))

    out._backward = _backward
    return out


def max_pool2d(x: Tensor, kernel: int, stride: Optional[int] = None) -> Tensor:
    """Max pooling over non-overlapping or strided windows."""
    stride = stride or kernel
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel, stride, 0)
    out_w = conv_output_size(w, kernel, stride, 0)
    cols, _, _ = im2col(x.data.reshape(n * c, 1, h, w), kernel, stride, 0)
    cols = cols.reshape(n, c, kernel * kernel, out_h * out_w)
    argmax = cols.argmax(axis=2)
    out_data = np.take_along_axis(cols, argmax[:, :, None, :], axis=2).reshape(n, c, out_h, out_w)

    requires = is_grad_enabled() and x.requires_grad
    out = Tensor(out_data, requires_grad=requires, _prev=(x,) if requires else (), _op="max_pool2d")

    def _backward():
        if not x.requires_grad:
            return
        grad_cols = np.zeros((n, c, kernel * kernel, out_h * out_w), dtype=np.float32)
        np.put_along_axis(grad_cols, argmax[:, :, None, :], out.grad.reshape(n, c, 1, out_h * out_w), axis=2)
        grad_cols = grad_cols.reshape(n * c, kernel * kernel, out_h * out_w)
        grad_x = col2im(grad_cols, (n * c, 1, h, w), kernel, stride, 0)
        x._accumulate(grad_x.reshape(n, c, h, w))

    out._backward = _backward
    return out


def avg_pool2d(x: Tensor, kernel: int, stride: Optional[int] = None) -> Tensor:
    """Average pooling."""
    stride = stride or kernel
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel, stride, 0)
    out_w = conv_output_size(w, kernel, stride, 0)
    cols, _, _ = im2col(x.data.reshape(n * c, 1, h, w), kernel, stride, 0)
    cols = cols.reshape(n, c, kernel * kernel, out_h * out_w)
    out_data = cols.mean(axis=2).reshape(n, c, out_h, out_w)

    requires = is_grad_enabled() and x.requires_grad
    out = Tensor(out_data, requires_grad=requires, _prev=(x,) if requires else (), _op="avg_pool2d")

    def _backward():
        if not x.requires_grad:
            return
        grad = out.grad.reshape(n, c, 1, out_h * out_w) / (kernel * kernel)
        grad_cols = np.broadcast_to(grad, (n, c, kernel * kernel, out_h * out_w)).reshape(
            n * c, kernel * kernel, out_h * out_w
        )
        grad_x = col2im(np.ascontiguousarray(grad_cols), (n * c, 1, h, w), kernel, stride, 0)
        x._accumulate(grad_x.reshape(n, c, h, w))

    out._backward = _backward
    return out


def adaptive_avg_pool2d(x: Tensor, output_size: int = 1) -> Tensor:
    """Adaptive average pooling; only the common ``output_size=1`` (global) case
    plus exact divisors are supported."""
    n, c, h, w = x.shape
    if output_size == 1:
        return x.mean(axis=(2, 3), keepdims=True)
    assert h % output_size == 0 and w % output_size == 0, "adaptive pooling requires exact divisors"
    return avg_pool2d(x, kernel=h // output_size, stride=h // output_size)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def embedding(indices: np.ndarray, weight: Tensor) -> Tensor:
    """Look up rows of ``weight`` for integer ``indices`` (any shape)."""
    idx = np.asarray(indices, dtype=np.int64)
    out_data = weight.data[idx]
    requires = is_grad_enabled() and weight.requires_grad
    out = Tensor(out_data, requires_grad=requires, _prev=(weight,) if requires else (), _op="embedding")

    def _backward():
        if not weight.requires_grad:
            return
        grad = np.zeros_like(weight.data)
        np.add.at(grad, idx.reshape(-1), out.grad.reshape(-1, weight.shape[1]))
        weight._accumulate(grad)

    out._backward = _backward
    return out


def upsample_nearest(x: Tensor, scale: int) -> Tensor:
    """Nearest-neighbour spatial upsampling by an integer factor."""
    n, c, h, w = x.shape
    out_data = x.data.repeat(scale, axis=2).repeat(scale, axis=3)
    requires = is_grad_enabled() and x.requires_grad
    out = Tensor(out_data, requires_grad=requires, _prev=(x,) if requires else (), _op="upsample")

    def _backward():
        if not x.requires_grad:
            return
        grad = out.grad.reshape(n, c, h, scale, w, scale).sum(axis=(3, 5))
        x._accumulate(grad)

    out._backward = _backward
    return out


def dropout(x: Tensor, p: float, training: bool, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout.  A seeded ``rng`` makes the mask stateless/replayable,
    which the activation cache relies on for deterministic augmentation."""
    if not training or p <= 0.0:
        return x
    gen = rng if rng is not None else np.random.default_rng()
    mask = (gen.random(x.shape) >= p).astype(np.float32) / (1.0 - p)
    return x * Tensor(mask)


def one_hot(indices: np.ndarray, num_classes: int) -> np.ndarray:
    """One-hot encode an integer array into ``(..., num_classes)``."""
    idx = np.asarray(indices, dtype=np.int64)
    out = np.zeros(idx.shape + (num_classes,), dtype=np.float32)
    np.put_along_axis(out, idx[..., None], 1.0, axis=-1)
    return out

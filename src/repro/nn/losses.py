"""Training loss functions.

The per-task losses used in the paper's evaluation (§6.1): cross-entropy for
image classification and segmentation, label-smoothed cross-entropy for
machine translation (fairseq defaults), mean-squared error for regression
sanity checks, and the span extraction loss used when fine-tuning the BERT
model on the synthetic SQuAD-like dataset.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import functional as F
from .module import Module
from .tensor import Tensor

__all__ = [
    "CrossEntropyLoss",
    "LabelSmoothingCrossEntropy",
    "MSELoss",
    "SpanExtractionLoss",
    "cross_entropy",
]


def cross_entropy(logits: Tensor, targets: np.ndarray, label_smoothing: float = 0.0,
                  ignore_index: Optional[int] = None) -> Tensor:
    """Cross entropy between logits ``(..., num_classes)`` and integer targets.

    Supports label smoothing and an ``ignore_index`` (used to mask padding
    tokens in translation batches).  Returns the mean loss over non-ignored
    positions.
    """
    targets = np.asarray(targets.data if isinstance(targets, Tensor) else targets, dtype=np.int64)
    num_classes = logits.shape[-1]
    flat_logits = logits.reshape(-1, num_classes)
    flat_targets = targets.reshape(-1)

    if ignore_index is not None:
        keep = flat_targets != ignore_index
        if not np.any(keep):
            return Tensor(np.zeros((), dtype=np.float32))
        flat_logits = flat_logits[np.nonzero(keep)[0]]
        flat_targets = flat_targets[keep]

    log_probs = F.log_softmax(flat_logits, axis=-1)
    one_hot = F.one_hot(flat_targets, num_classes)
    if label_smoothing > 0.0:
        one_hot = one_hot * (1.0 - label_smoothing) + label_smoothing / num_classes
    nll = -(log_probs * Tensor(one_hot)).sum(axis=-1)
    return nll.mean()


class CrossEntropyLoss(Module):
    """Standard multi-class cross-entropy (classification, segmentation)."""

    def __init__(self, ignore_index: Optional[int] = None):
        super().__init__()
        self.ignore_index = ignore_index

    def forward(self, logits: Tensor, targets) -> Tensor:
        return cross_entropy(logits, targets, ignore_index=self.ignore_index)


class LabelSmoothingCrossEntropy(Module):
    """Label-smoothed cross-entropy used for Transformer translation training."""

    def __init__(self, smoothing: float = 0.1, ignore_index: Optional[int] = None):
        super().__init__()
        self.smoothing = smoothing
        self.ignore_index = ignore_index

    def forward(self, logits: Tensor, targets) -> Tensor:
        return cross_entropy(logits, targets, label_smoothing=self.smoothing, ignore_index=self.ignore_index)


class MSELoss(Module):
    """Mean squared error."""

    def forward(self, predictions: Tensor, targets) -> Tensor:
        targets = targets if isinstance(targets, Tensor) else Tensor(targets)
        diff = predictions - targets
        return (diff * diff).mean()


class SpanExtractionLoss(Module):
    """Loss for extractive question answering (start + end position logits).

    Mirrors the BERT-for-SQuAD objective: the average of the cross-entropy on
    the start-position logits and on the end-position logits.
    """

    def forward(self, start_logits: Tensor, end_logits: Tensor, start_positions, end_positions) -> Tensor:
        start_loss = cross_entropy(start_logits, start_positions)
        end_loss = cross_entropy(end_logits, end_positions)
        return (start_loss + end_loss) * 0.5

"""Primitive neural-network layers built on the autograd engine.

These are the building blocks shared by every model in :mod:`repro.models`:
``Linear``, ``Conv2d``, normalisation layers, ``Embedding``, activations,
pooling and ``Dropout``.  Their semantics intentionally track the PyTorch
layers the Egeria paper uses so the freezing/caching logic (inference-mode
BatchNorm for cached frozen layers, ``requires_grad`` freezing, hook capture)
maps one-to-one onto the paper's description.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from . import functional as F
from . import init
from .module import Module, Parameter
from .tensor import Tensor, is_grad_enabled

__all__ = [
    "Linear",
    "Conv2d",
    "BatchNorm2d",
    "LayerNorm",
    "Embedding",
    "Dropout",
    "ReLU",
    "ReLU6",
    "GELU",
    "Tanh",
    "Sigmoid",
    "MaxPool2d",
    "AvgPool2d",
    "AdaptiveAvgPool2d",
    "Flatten",
]


class Linear(Module):
    """Affine layer ``y = x W^T + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng=rng, gain=math.sqrt(2.0)))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear(in={self.in_features}, out={self.out_features})"


class Conv2d(Module):
    """2-D convolution with optional grouping (for depthwise convolutions)."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int, stride: int = 1,
                 padding: int = 0, groups: int = 1, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if in_channels % groups != 0 or out_channels % groups != 0:
            raise ValueError("in_channels and out_channels must both be divisible by groups")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.groups = groups
        weight_shape = (out_channels, in_channels // groups, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_uniform(weight_shape, rng=rng))
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding, groups=self.groups)

    def __repr__(self) -> str:
        return (f"Conv2d({self.in_channels}, {self.out_channels}, k={self.kernel_size}, "
                f"s={self.stride}, p={self.padding}, g={self.groups})")


class BatchNorm2d(Module):
    """Batch normalisation over the channel dimension of ``(N, C, H, W)``.

    When a frozen layer's activations are served from the cache, Egeria sets
    BatchNorm layers to inference mode so they normalise with dataset
    statistics instead of the current batch (§4.3 of the paper); that is
    exactly what :meth:`eval` mode (``self.training == False``) does here.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(init.ones((num_features,)))
        self.bias = Parameter(init.zeros((num_features,)))
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            batch_mean = x.data.mean(axis=(0, 2, 3))
            batch_var = x.data.var(axis=(0, 2, 3))
            # In-place update keeps the registered buffer and attribute in sync.
            self.running_mean *= (1.0 - self.momentum)
            self.running_mean += self.momentum * batch_mean
            self.running_var *= (1.0 - self.momentum)
            self.running_var += self.momentum * batch_var
            mean = x.mean(axis=(0, 2, 3), keepdims=True)
            var = x.var(axis=(0, 2, 3), keepdims=True)
        else:
            mean = Tensor(self.running_mean.reshape(1, -1, 1, 1))
            var = Tensor(self.running_var.reshape(1, -1, 1, 1))
        x_hat = (x - mean) / (var + self.eps) ** 0.5
        weight = self.weight.reshape(1, self.num_features, 1, 1)
        bias = self.bias.reshape(1, self.num_features, 1, 1)
        return x_hat * weight + bias

    def __repr__(self) -> str:
        return f"BatchNorm2d({self.num_features})"


class LayerNorm(Module):
    """Layer normalisation over the last dimension (Transformer/BERT blocks)."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5):
        super().__init__()
        self.normalized_shape = normalized_shape
        self.eps = eps
        self.weight = Parameter(init.ones((normalized_shape,)))
        self.bias = Parameter(init.zeros((normalized_shape,)))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        x_hat = (x - mean) / (var + self.eps) ** 0.5
        return x_hat * self.weight + self.bias

    def __repr__(self) -> str:
        return f"LayerNorm({self.normalized_shape})"


class Embedding(Module):
    """Token embedding lookup table."""

    def __init__(self, num_embeddings: int, embedding_dim: int, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(init.normal((num_embeddings, embedding_dim), std=0.02, rng=rng))

    def forward(self, indices) -> Tensor:
        idx = indices.data if isinstance(indices, Tensor) else indices
        return F.embedding(idx, self.weight)

    def __repr__(self) -> str:
        return f"Embedding({self.num_embeddings}, {self.embedding_dim})"


class Dropout(Module):
    """Inverted dropout; a per-layer seeded generator keeps masks replayable."""

    def __init__(self, p: float = 0.1, seed: Optional[int] = None):
        super().__init__()
        self.p = p
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, training=self.training, rng=self._rng)

    def reseed(self, seed: int) -> None:
        """Reset the mask generator — used for stateless/replayable dropout."""
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class ReLU6(Module):
    """ReLU capped at 6 (MobileNetV2)."""

    def forward(self, x: Tensor) -> Tensor:
        return x.clip(0.0, 6.0)


class GELU(Module):
    """Gaussian error linear unit (tanh approximation, as used by BERT)."""

    def forward(self, x: Tensor) -> Tensor:
        inner = (x + x * x * x * 0.044715) * math.sqrt(2.0 / math.pi)
        return x * 0.5 * (inner.tanh() + 1.0)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class MaxPool2d(Module):
    def __init__(self, kernel_size: int, stride: Optional[int] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)


class AvgPool2d(Module):
    def __init__(self, kernel_size: int, stride: Optional[int] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)


class AdaptiveAvgPool2d(Module):
    def __init__(self, output_size: int = 1):
        super().__init__()
        self.output_size = output_size

    def forward(self, x: Tensor) -> Tensor:
        return F.adaptive_avg_pool2d(x, self.output_size)


class Flatten(Module):
    """Flatten all dimensions except the batch dimension."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)

"""A small reverse-mode automatic differentiation engine backed by numpy.

This module provides the :class:`Tensor` class, the foundation of the
``repro.nn`` substrate.  It mirrors the subset of the PyTorch tensor/autograd
semantics that the Egeria reproduction relies on:

* reverse-mode autodiff over a dynamically built DAG,
* ``requires_grad`` flags on leaves so frozen parameters (and everything that
  depends only on frozen parameters) are excluded from the backward pass,
* broadcasting-aware gradients,
* a :func:`no_grad` context manager used by the reference model and by the
  activation cache.

The design intentionally favours clarity over raw speed; all heavy math is
delegated to numpy, and the models used in tests/benchmarks are scaled to a
size where this engine trains them in seconds.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "set_grad_enabled", "tensor", "zeros", "ones", "randn", "arange"]

Number = Union[int, float]
ArrayLike = Union[Number, Sequence, np.ndarray, "Tensor"]

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Return whether gradient tracking is currently enabled."""
    return _GRAD_ENABLED


def set_grad_enabled(mode: bool) -> None:
    """Globally enable or disable gradient tracking."""
    global _GRAD_ENABLED
    _GRAD_ENABLED = bool(mode)


@contextlib.contextmanager
def no_grad():
    """Context manager that disables gradient tracking.

    Used for the reference-model forward pass, plasticity evaluation and
    cached-activation replay, none of which need gradients.
    """
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _as_array(data: ArrayLike, dtype=np.float32) -> np.ndarray:
    if isinstance(data, Tensor):
        return data.data
    if isinstance(data, np.ndarray):
        if data.dtype != dtype:
            return data.astype(dtype)
        return data
    return np.asarray(data, dtype=dtype)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so it matches ``shape`` after a broadcasted op."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A multi-dimensional array with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Anything convertible to a numpy array (scalar, list, ndarray, Tensor).
    requires_grad:
        Whether gradients should be accumulated into ``self.grad`` during
        :meth:`backward`.  Only floating point tensors may require grad.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "_op")
    __array_priority__ = 200  # numpy should defer to Tensor's operators

    def __init__(self, data: ArrayLike, requires_grad: bool = False, _prev: Iterable["Tensor"] = (), _op: str = ""):
        self.data: np.ndarray = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Callable[[], None] = lambda: None
        self._prev: Tuple[Tensor, ...] = tuple(_prev) if self.requires_grad or any(p.requires_grad for p in _prev) else ()
        self._op: str = _op

    # ------------------------------------------------------------------ #
    # Introspection helpers
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (no copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def clone(self) -> "Tensor":
        """Return a copy of this tensor participating in the graph."""
        out = self._make(self.data.copy(), (self,), "clone")

        def _backward():
            if self.requires_grad:
                self._accumulate(out.grad)

        out._backward = _backward
        return out

    # ------------------------------------------------------------------ #
    # Graph construction helpers
    # ------------------------------------------------------------------ #
    def _make(self, data: np.ndarray, prev: Tuple["Tensor", ...], op: str) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in prev)
        out = Tensor(data, requires_grad=requires, _prev=prev if requires else (), _op=op)
        return out

    def _accumulate(self, grad: Optional[np.ndarray]) -> None:
        if grad is None:
            return
        if self.grad is None:
            self.grad = grad.astype(np.float32, copy=True)
        else:
            self.grad += grad

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out = self._make(self.data + other.data, (self, other), "add")

        def _backward():
            if self.requires_grad:
                self._accumulate(_unbroadcast(out.grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(out.grad, other.shape))

        out._backward = _backward
        return out

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out = self._make(self.data * other.data, (self, other), "mul")

        def _backward():
            if self.requires_grad:
                self._accumulate(_unbroadcast(out.grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(out.grad * self.data, other.shape))

        out._backward = _backward
        return out

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        return self + (-other)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) + (-self)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        return self * other ** -1.0

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) * self ** -1.0

    def __pow__(self, power: Number) -> "Tensor":
        assert isinstance(power, (int, float)), "only scalar powers are supported"
        out = self._make(self.data ** power, (self,), f"pow{power}")

        def _backward():
            if self.requires_grad:
                self._accumulate(power * self.data ** (power - 1) * out.grad)

        out._backward = _backward
        return out

    __radd__ = __add__
    __rmul__ = __mul__

    def __matmul__(self, other: "Tensor") -> "Tensor":
        return self.matmul(other)

    def matmul(self, other: "Tensor") -> "Tensor":
        """Matrix product supporting batched operands (numpy @ semantics)."""
        other = other if isinstance(other, Tensor) else Tensor(other)
        out = self._make(self.data @ other.data, (self, other), "matmul")

        def _backward():
            grad = out.grad
            if self.requires_grad:
                if other.data.ndim == 1:
                    self_grad = np.outer(grad, other.data) if self.data.ndim == 2 else grad[..., None] * other.data
                else:
                    self_grad = grad @ np.swapaxes(other.data, -1, -2)
                self._accumulate(_unbroadcast(self_grad, self.shape))
            if other.requires_grad:
                if self.data.ndim == 1:
                    other_grad = np.outer(self.data, grad)
                else:
                    other_grad = np.swapaxes(self.data, -1, -2) @ grad
                other._accumulate(_unbroadcast(other_grad, other.shape))

        out._backward = _backward
        return out

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out = self._make(self.data.sum(axis=axis, keepdims=keepdims), (self,), "sum")

        def _backward():
            if not self.requires_grad:
                return
            grad = out.grad
            if axis is None:
                grad = np.broadcast_to(grad, self.shape)
            else:
                if not keepdims:
                    grad = np.expand_dims(grad, axis=axis)
                grad = np.broadcast_to(grad, self.shape)
            self._accumulate(grad.astype(np.float32))

        out._backward = _backward
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        out = (centered * centered).mean(axis=axis, keepdims=keepdims)
        return out

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        out = self._make(out_data, (self,), "max")

        def _backward():
            if not self.requires_grad:
                return
            grad = out.grad
            expanded = out_data
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis=axis)
                expanded = np.expand_dims(out_data, axis=axis)
            mask = (self.data == expanded).astype(np.float32)
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            self._accumulate(mask * grad)

        out._backward = _backward
        return out

    # ------------------------------------------------------------------ #
    # Elementwise non-linearities
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out = self._make(np.exp(self.data), (self,), "exp")

        def _backward():
            if self.requires_grad:
                self._accumulate(out.data * out.grad)

        out._backward = _backward
        return out

    def log(self) -> "Tensor":
        out = self._make(np.log(self.data + 1e-12), (self,), "log")

        def _backward():
            if self.requires_grad:
                self._accumulate(out.grad / (self.data + 1e-12))

        out._backward = _backward
        return out

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def relu(self) -> "Tensor":
        out = self._make(np.maximum(self.data, 0.0), (self,), "relu")

        def _backward():
            if self.requires_grad:
                self._accumulate((self.data > 0).astype(np.float32) * out.grad)

        out._backward = _backward
        return out

    def sigmoid(self) -> "Tensor":
        sig = 1.0 / (1.0 + np.exp(-self.data))
        out = self._make(sig, (self,), "sigmoid")

        def _backward():
            if self.requires_grad:
                self._accumulate(sig * (1.0 - sig) * out.grad)

        out._backward = _backward
        return out

    def tanh(self) -> "Tensor":
        t = np.tanh(self.data)
        out = self._make(t, (self,), "tanh")

        def _backward():
            if self.requires_grad:
                self._accumulate((1.0 - t * t) * out.grad)

        out._backward = _backward
        return out

    def clip(self, low: float, high: float) -> "Tensor":
        out = self._make(np.clip(self.data, low, high), (self,), "clip")

        def _backward():
            if self.requires_grad:
                mask = ((self.data >= low) & (self.data <= high)).astype(np.float32)
                self._accumulate(mask * out.grad)

        out._backward = _backward
        return out

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = self._make(self.data.reshape(shape), (self,), "reshape")

        def _backward():
            if self.requires_grad:
                self._accumulate(out.grad.reshape(self.shape))

        out._backward = _backward
        return out

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 0:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out = self._make(self.data.transpose(axes), (self,), "transpose")
        inverse = np.argsort(axes)

        def _backward():
            if self.requires_grad:
                self._accumulate(out.grad.transpose(inverse))

        out._backward = _backward
        return out

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(tuple(axes))

    def __getitem__(self, index) -> "Tensor":
        out = self._make(self.data[index], (self,), "getitem")

        def _backward():
            if self.requires_grad:
                grad = np.zeros_like(self.data)
                np.add.at(grad, index, out.grad)
                self._accumulate(grad)

        out._backward = _backward
        return out

    def pad(self, pad_width) -> "Tensor":
        """Zero-pad the tensor.  ``pad_width`` follows ``np.pad`` convention."""
        out = self._make(np.pad(self.data, pad_width), (self,), "pad")

        def _backward():
            if self.requires_grad:
                slices = tuple(slice(p[0], p[0] + s) for p, s in zip(pad_width, self.shape))
                self._accumulate(out.grad[slices])

        out._backward = _backward
        return out

    # ------------------------------------------------------------------ #
    # Backward pass
    # ------------------------------------------------------------------ #
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        Nodes whose subtree contains no ``requires_grad`` leaf are never
        visited, which is precisely how frozen layer modules drop out of the
        backward pass: once Egeria sets ``requires_grad=False`` on their
        parameters, their portion of the graph is pruned here.
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)
        self.grad = np.asarray(grad, dtype=np.float32)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited and parent.requires_grad:
                    stack.append((parent, False))

        for node in reversed(topo):
            node._backward()

    def zero_grad(self) -> None:
        """Clear any accumulated gradient."""
        self.grad = None


# ---------------------------------------------------------------------- #
# Free-standing graph ops that combine multiple tensors
# ---------------------------------------------------------------------- #
def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    requires = _GRAD_ENABLED and any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=requires, _prev=tuple(tensors) if requires else (), _op="concat")

    def _backward():
        start = 0
        for t in tensors:
            size = t.shape[axis]
            idx = [slice(None)] * data.ndim
            idx[axis] = slice(start, start + size)
            if t.requires_grad:
                t._accumulate(out.grad[tuple(idx)])
            start += size

    out._backward = _backward
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient support."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)
    requires = _GRAD_ENABLED and any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=requires, _prev=tuple(tensors) if requires else (), _op="stack")

    def _backward():
        for i, t in enumerate(tensors):
            if t.requires_grad:
                idx = [slice(None)] * data.ndim
                idx[axis] = i
                t._accumulate(out.grad[tuple(idx)])

    out._backward = _backward
    return out


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select with gradient support for both branches."""
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    cond = condition.data if isinstance(condition, Tensor) else np.asarray(condition)
    data = np.where(cond, a.data, b.data)
    requires = _GRAD_ENABLED and (a.requires_grad or b.requires_grad)
    out = Tensor(data, requires_grad=requires, _prev=(a, b) if requires else (), _op="where")

    def _backward():
        if a.requires_grad:
            a._accumulate(_unbroadcast(np.where(cond, out.grad, 0.0), a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(np.where(cond, 0.0, out.grad), b.shape))

    out._backward = _backward
    return out


# ---------------------------------------------------------------------- #
# Constructors
# ---------------------------------------------------------------------- #
def tensor(data: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Create a tensor from array-like data."""
    return Tensor(data, requires_grad=requires_grad)


def zeros(*shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape, dtype=np.float32), requires_grad=requires_grad)


def ones(*shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape, dtype=np.float32), requires_grad=requires_grad)


def randn(*shape, requires_grad: bool = False, rng: Optional[np.random.Generator] = None) -> Tensor:
    gen = rng if rng is not None else np.random.default_rng()
    return Tensor(gen.standard_normal(shape).astype(np.float32), requires_grad=requires_grad)


def arange(n: int, requires_grad: bool = False) -> Tensor:
    return Tensor(np.arange(n, dtype=np.float32), requires_grad=requires_grad)

"""Composite building blocks: residual blocks, inverted residuals, attention.

The Egeria paper freezes *layer modules* — groups of consecutive layers
"defined together" (§4.2.1), such as ResNet residual blocks, MobileNetV2
inverted-residual blocks, and Transformer encoder/decoder layers.  The classes
in this module are exactly those units; :mod:`repro.core.modules` later parses
a model into a sequence of them to drive freezing decisions.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from . import functional as F
from . import init
from .layers import BatchNorm2d, Conv2d, Dropout, LayerNorm, Linear, ReLU, ReLU6
from .module import Identity, Module, Sequential
from .tensor import Tensor

__all__ = [
    "ConvBNReLU",
    "BasicBlock",
    "Bottleneck",
    "InvertedResidual",
    "MultiHeadAttention",
    "FeedForward",
    "TransformerEncoderLayer",
    "TransformerDecoderLayer",
    "PositionalEncoding",
]


class ConvBNReLU(Module):
    """Convolution + BatchNorm + ReLU(6) — the standard CNN stem unit."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int = 3, stride: int = 1,
                 groups: int = 1, relu6: bool = False, rng: Optional[np.random.Generator] = None):
        super().__init__()
        padding = (kernel_size - 1) // 2
        self.conv = Conv2d(in_channels, out_channels, kernel_size, stride=stride, padding=padding,
                           groups=groups, bias=False, rng=rng)
        self.bn = BatchNorm2d(out_channels)
        self.act = ReLU6() if relu6 else ReLU()

    def forward(self, x: Tensor) -> Tensor:
        return self.act(self.bn(self.conv(x)))


class BasicBlock(Module):
    """ResNet basic residual block (two 3x3 convolutions)."""

    expansion = 1

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.conv1 = Conv2d(in_channels, out_channels, 3, stride=stride, padding=1, bias=False, rng=rng)
        self.bn1 = BatchNorm2d(out_channels)
        self.conv2 = Conv2d(out_channels, out_channels, 3, stride=1, padding=1, bias=False, rng=rng)
        self.bn2 = BatchNorm2d(out_channels)
        self.relu = ReLU()
        if stride != 1 or in_channels != out_channels:
            self.shortcut = Sequential(
                Conv2d(in_channels, out_channels, 1, stride=stride, bias=False, rng=rng),
                BatchNorm2d(out_channels),
            )
        else:
            self.shortcut = Identity()

    def forward(self, x: Tensor) -> Tensor:
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        out = out + self.shortcut(x)
        return self.relu(out)


class Bottleneck(Module):
    """ResNet bottleneck block (1x1 reduce, 3x3, 1x1 expand) used by ResNet-50."""

    expansion = 4

    def __init__(self, in_channels: int, width: int, stride: int = 1,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        out_channels = width * self.expansion
        self.conv1 = Conv2d(in_channels, width, 1, bias=False, rng=rng)
        self.bn1 = BatchNorm2d(width)
        self.conv2 = Conv2d(width, width, 3, stride=stride, padding=1, bias=False, rng=rng)
        self.bn2 = BatchNorm2d(width)
        self.conv3 = Conv2d(width, out_channels, 1, bias=False, rng=rng)
        self.bn3 = BatchNorm2d(out_channels)
        self.relu = ReLU()
        if stride != 1 or in_channels != out_channels:
            self.shortcut = Sequential(
                Conv2d(in_channels, out_channels, 1, stride=stride, bias=False, rng=rng),
                BatchNorm2d(out_channels),
            )
        else:
            self.shortcut = Identity()

    def forward(self, x: Tensor) -> Tensor:
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.relu(self.bn2(self.conv2(out)))
        out = self.bn3(self.conv3(out))
        out = out + self.shortcut(x)
        return self.relu(out)


class InvertedResidual(Module):
    """MobileNetV2 inverted residual with linear bottleneck."""

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1, expand_ratio: int = 2,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        hidden = int(round(in_channels * expand_ratio))
        self.use_residual = stride == 1 and in_channels == out_channels
        layers = []
        if expand_ratio != 1:
            layers.append(ConvBNReLU(in_channels, hidden, kernel_size=1, relu6=True, rng=rng))
        layers.append(ConvBNReLU(hidden, hidden, kernel_size=3, stride=stride, groups=hidden, relu6=True, rng=rng))
        layers.append(Conv2d(hidden, out_channels, 1, bias=False, rng=rng))
        layers.append(BatchNorm2d(out_channels))
        self.block = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        out = self.block(x)
        if self.use_residual:
            out = out + x
        return out


class MultiHeadAttention(Module):
    """Scaled dot-product multi-head attention."""

    def __init__(self, d_model: int, num_heads: int, dropout: float = 0.0,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if d_model % num_heads != 0:
            raise ValueError("d_model must be divisible by num_heads")
        self.d_model = d_model
        self.num_heads = num_heads
        self.head_dim = d_model // num_heads
        self.q_proj = Linear(d_model, d_model, rng=rng)
        self.k_proj = Linear(d_model, d_model, rng=rng)
        self.v_proj = Linear(d_model, d_model, rng=rng)
        self.out_proj = Linear(d_model, d_model, rng=rng)
        self.dropout = Dropout(dropout)

    def _split_heads(self, x: Tensor) -> Tensor:
        batch, seq, _ = x.shape
        return x.reshape(batch, seq, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: Tensor) -> Tensor:
        batch, heads, seq, dim = x.shape
        return x.transpose(0, 2, 1, 3).reshape(batch, seq, heads * dim)

    def forward(self, query: Tensor, key: Optional[Tensor] = None, value: Optional[Tensor] = None,
                mask: Optional[np.ndarray] = None) -> Tensor:
        key = key if key is not None else query
        value = value if value is not None else query
        q = self._split_heads(self.q_proj(query))
        k = self._split_heads(self.k_proj(key))
        v = self._split_heads(self.v_proj(value))

        scores = q.matmul(k.transpose(0, 1, 3, 2)) * (1.0 / math.sqrt(self.head_dim))
        if mask is not None:
            scores = scores + Tensor(np.where(mask, 0.0, -1e9).astype(np.float32))
        attn = F.softmax(scores, axis=-1)
        attn = self.dropout(attn)
        context = attn.matmul(v)
        return self.out_proj(self._merge_heads(context))


class FeedForward(Module):
    """Position-wise feed-forward network of a Transformer block."""

    def __init__(self, d_model: int, d_ff: int, dropout: float = 0.0, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.fc1 = Linear(d_model, d_ff, rng=rng)
        self.fc2 = Linear(d_ff, d_model, rng=rng)
        self.relu = ReLU()
        self.dropout = Dropout(dropout)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc2(self.dropout(self.relu(self.fc1(x))))


class TransformerEncoderLayer(Module):
    """Pre-norm Transformer encoder layer (self-attention + FFN)."""

    def __init__(self, d_model: int, num_heads: int, d_ff: int, dropout: float = 0.0,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.self_attn = MultiHeadAttention(d_model, num_heads, dropout=dropout, rng=rng)
        self.ffn = FeedForward(d_model, d_ff, dropout=dropout, rng=rng)
        self.norm1 = LayerNorm(d_model)
        self.norm2 = LayerNorm(d_model)
        self.dropout = Dropout(dropout)

    def forward(self, x: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
        x = x + self.dropout(self.self_attn(self.norm1(x), mask=mask))
        x = x + self.dropout(self.ffn(self.norm2(x)))
        return x


class TransformerDecoderLayer(Module):
    """Pre-norm Transformer decoder layer (masked self-attn, cross-attn, FFN)."""

    def __init__(self, d_model: int, num_heads: int, d_ff: int, dropout: float = 0.0,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.self_attn = MultiHeadAttention(d_model, num_heads, dropout=dropout, rng=rng)
        self.cross_attn = MultiHeadAttention(d_model, num_heads, dropout=dropout, rng=rng)
        self.ffn = FeedForward(d_model, d_ff, dropout=dropout, rng=rng)
        self.norm1 = LayerNorm(d_model)
        self.norm2 = LayerNorm(d_model)
        self.norm3 = LayerNorm(d_model)
        self.dropout = Dropout(dropout)

    def forward(self, x: Tensor, memory: Tensor, self_mask: Optional[np.ndarray] = None,
                cross_mask: Optional[np.ndarray] = None) -> Tensor:
        x = x + self.dropout(self.self_attn(self.norm1(x), mask=self_mask))
        x = x + self.dropout(self.cross_attn(self.norm2(x), key=memory, value=memory, mask=cross_mask))
        x = x + self.dropout(self.ffn(self.norm3(x)))
        return x


class PositionalEncoding(Module):
    """Fixed sinusoidal positional encoding added to token embeddings."""

    def __init__(self, d_model: int, max_len: int = 512):
        super().__init__()
        position = np.arange(max_len)[:, None].astype(np.float32)
        div_term = np.exp(np.arange(0, d_model, 2) * (-math.log(10000.0) / d_model)).astype(np.float32)
        encoding = np.zeros((max_len, d_model), dtype=np.float32)
        encoding[:, 0::2] = np.sin(position * div_term)
        encoding[:, 1::2] = np.cos(position * div_term)
        self.register_buffer("encoding", encoding)

    def forward(self, x: Tensor) -> Tensor:
        seq_len = x.shape[1]
        return x + Tensor(self.encoding[:seq_len])

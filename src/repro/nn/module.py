"""Module/Parameter abstractions with forward hooks and freezing support.

This is the structural layer of the ``repro.nn`` substrate.  It mirrors the
pieces of ``torch.nn.Module`` that Egeria's paper relies on:

* named submodule traversal (Egeria parses layer modules from the model
  structure, §5 of the paper),
* forward hooks to capture intermediate activations (§4.1.1),
* ``requires_grad`` manipulation through :meth:`Module.freeze` /
  :meth:`Module.unfreeze` (§5: "we essentially set the requires_grad flag of
  all its parameters to false"),
* ``state_dict`` snapshotting, used to generate the quantized reference model.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter", "Module", "Sequential", "ModuleList", "Identity"]


class Parameter(Tensor):
    """A :class:`Tensor` that is registered as a trainable parameter."""

    def __init__(self, data, requires_grad: bool = True):
        super().__init__(data, requires_grad=requires_grad)


HookFn = Callable[["Module", Tuple, Tensor], None]


class RemovableHandle:
    """Handle returned by :meth:`Module.register_forward_hook`."""

    _next_id = 0

    def __init__(self, hooks: Dict[int, HookFn]):
        self._hooks = hooks
        self.id = RemovableHandle._next_id
        RemovableHandle._next_id += 1

    def remove(self) -> None:
        """Detach the hook from its module."""
        self._hooks.pop(self.id, None)


class Module:
    """Base class for all neural network modules.

    Subclasses implement :meth:`forward`.  Calling the module runs the forward
    pass and then fires any registered forward hooks with
    ``hook(module, inputs, output)`` — the mechanism Egeria's worker uses to
    capture intermediate activations for plasticity evaluation.
    """

    def __init__(self):
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._forward_hooks: Dict[int, HookFn] = {}
        self.training: bool = True

    # ------------------------------------------------------------------ #
    # Attribute management
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-trainable persistent array (e.g. BatchNorm stats)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, param: Parameter) -> None:
        self._parameters[name] = param
        object.__setattr__(self, name, param)

    # ------------------------------------------------------------------ #
    # Forward + hooks
    # ------------------------------------------------------------------ #
    def forward(self, *inputs, **kwargs):
        raise NotImplementedError

    def __call__(self, *inputs, **kwargs):
        output = self.forward(*inputs, **kwargs)
        for hook in list(self._forward_hooks.values()):
            hook(self, inputs, output)
        return output

    def register_forward_hook(self, hook: HookFn) -> RemovableHandle:
        """Register ``hook(module, inputs, output)`` to fire after forward."""
        handle = RemovableHandle(self._forward_hooks)
        self._forward_hooks[handle.id] = hook
        return handle

    # ------------------------------------------------------------------ #
    # Traversal
    # ------------------------------------------------------------------ #
    def parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_parameters():
            yield param

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (prefix + name if prefix else name), param
        for mod_name, module in self._modules.items():
            sub_prefix = f"{prefix}{mod_name}." if prefix else f"{mod_name}."
            yield from module.named_parameters(sub_prefix)

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix, self
        for mod_name, module in self._modules.items():
            sub_prefix = f"{prefix}.{mod_name}" if prefix else mod_name
            yield from module.named_modules(sub_prefix)

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def children(self) -> Iterator["Module"]:
        return iter(self._modules.values())

    def named_children(self) -> Iterator[Tuple[str, "Module"]]:
        return iter(self._modules.items())

    def get_submodule(self, path: str) -> "Module":
        """Return a submodule by dotted path (e.g. ``"layer1.0.conv1"``)."""
        module: Module = self
        if not path:
            return module
        for part in path.split("."):
            if part not in module._modules:
                raise KeyError(f"submodule {path!r} not found (missing {part!r})")
            module = module._modules[part]
        return module

    # ------------------------------------------------------------------ #
    # Train / eval, gradients, freezing
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def freeze(self) -> None:
        """Exclude this module's parameters from gradient computation."""
        for param in self.parameters():
            param.requires_grad = False

    def unfreeze(self) -> None:
        """Re-include this module's parameters in gradient computation."""
        for param in self.parameters():
            param.requires_grad = True

    def is_frozen(self) -> bool:
        """True when no parameter of this module requires grad."""
        params = list(self.parameters())
        return bool(params) and all(not p.requires_grad for p in params)

    def num_parameters(self, trainable_only: bool = False) -> int:
        """Total number of scalar parameters in this module."""
        return sum(p.size for p in self.parameters() if p.requires_grad or not trainable_only)

    # ------------------------------------------------------------------ #
    # State dict
    # ------------------------------------------------------------------ #
    def state_dict(self, prefix: str = "") -> "OrderedDict[str, np.ndarray]":
        """Snapshot all parameters and buffers as numpy arrays (copies)."""
        state: "OrderedDict[str, np.ndarray]" = OrderedDict()
        for name, param in self._parameters.items():
            state[prefix + name] = param.data.copy()
        for name, buf in self._buffers.items():
            state[prefix + name] = np.array(buf, copy=True)
        for mod_name, module in self._modules.items():
            state.update(module.state_dict(prefix=f"{prefix}{mod_name}."))
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], prefix: str = "") -> None:
        """Load a snapshot previously produced by :meth:`state_dict`."""
        for name, param in self._parameters.items():
            key = prefix + name
            if key in state:
                param.data = np.asarray(state[key], dtype=np.float32).reshape(param.shape)
        for name in list(self._buffers.keys()):
            key = prefix + name
            if key in state:
                new_val = np.array(state[key], copy=True)
                self._buffers[name] = new_val
                object.__setattr__(self, name, new_val)
        for mod_name, module in self._modules.items():
            module.load_state_dict(state, prefix=f"{prefix}{mod_name}.")

    def __repr__(self) -> str:
        child_repr = ", ".join(self._modules.keys())
        return f"{self.__class__.__name__}({child_repr})"


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        for idx, module in enumerate(modules):
            setattr(self, str(idx), module)

    def forward(self, x):
        for module in self._modules.values():
            x = module(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, idx: int) -> Module:
        return list(self._modules.values())[idx]


class ModuleList(Module):
    """A list of modules that is properly registered for traversal."""

    def __init__(self, modules: Optional[List[Module]] = None):
        super().__init__()
        self._length = 0
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        setattr(self, str(self._length), module)
        self._length += 1
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, idx: int) -> Module:
        return self._modules[str(idx)]

    def forward(self, *inputs, **kwargs):
        raise RuntimeError("ModuleList is a container and cannot be called directly")


class Identity(Module):
    """Pass-through module, handy for optional branches."""

    def forward(self, x):
        return x

"""Weight initialisation schemes for the ``repro.nn`` layers.

Provides Kaiming (He) and Xavier (Glorot) initialisers along with simple
uniform/normal/constant fills.  All initialisers take an explicit
``numpy.random.Generator`` so model construction is fully deterministic given
a seed — a requirement for reproducible benchmark runs.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "kaiming_uniform",
    "kaiming_normal",
    "xavier_uniform",
    "xavier_normal",
    "uniform",
    "normal",
    "zeros",
    "ones",
    "compute_fans",
]


def compute_fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Return ``(fan_in, fan_out)`` for a weight tensor shape.

    Linear weights are ``(out, in)``; convolution weights are
    ``(out, in, k, k)`` where the receptive field multiplies both fans.
    """
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        fan_out, fan_in = shape
        return fan_in, fan_out
    receptive = int(np.prod(shape[2:]))
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out


def _rng(rng: Optional[np.random.Generator]) -> np.random.Generator:
    return rng if rng is not None else np.random.default_rng()


def kaiming_uniform(shape, rng: Optional[np.random.Generator] = None, gain: float = math.sqrt(2.0)) -> np.ndarray:
    """He-uniform initialisation suited to ReLU networks."""
    fan_in, _ = compute_fans(shape)
    bound = gain * math.sqrt(3.0 / max(fan_in, 1))
    return _rng(rng).uniform(-bound, bound, size=shape).astype(np.float32)


def kaiming_normal(shape, rng: Optional[np.random.Generator] = None, gain: float = math.sqrt(2.0)) -> np.ndarray:
    """He-normal initialisation suited to ReLU networks."""
    fan_in, _ = compute_fans(shape)
    std = gain / math.sqrt(max(fan_in, 1))
    return (_rng(rng).standard_normal(shape) * std).astype(np.float32)


def xavier_uniform(shape, rng: Optional[np.random.Generator] = None, gain: float = 1.0) -> np.ndarray:
    """Glorot-uniform initialisation suited to tanh/linear/attention layers."""
    fan_in, fan_out = compute_fans(shape)
    bound = gain * math.sqrt(6.0 / max(fan_in + fan_out, 1))
    return _rng(rng).uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_normal(shape, rng: Optional[np.random.Generator] = None, gain: float = 1.0) -> np.ndarray:
    """Glorot-normal initialisation."""
    fan_in, fan_out = compute_fans(shape)
    std = gain * math.sqrt(2.0 / max(fan_in + fan_out, 1))
    return (_rng(rng).standard_normal(shape) * std).astype(np.float32)


def uniform(shape, low: float = -0.1, high: float = 0.1, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    return _rng(rng).uniform(low, high, size=shape).astype(np.float32)


def normal(shape, mean: float = 0.0, std: float = 0.02, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    return (mean + std * _rng(rng).standard_normal(shape)).astype(np.float32)


def zeros(shape) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def ones(shape) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)

"""``repro.nn`` — a compact numpy-backed neural network substrate.

The Egeria reproduction cannot rely on PyTorch (offline environment), so this
package re-implements the slice of a deep-learning framework that the paper's
mechanisms need: an autograd tensor, modules with forward hooks and
``requires_grad`` freezing, the common layers/blocks, and training losses.
"""

from . import functional, init
from .blocks import (
    BasicBlock,
    Bottleneck,
    ConvBNReLU,
    FeedForward,
    InvertedResidual,
    MultiHeadAttention,
    PositionalEncoding,
    TransformerDecoderLayer,
    TransformerEncoderLayer,
)
from .layers import (
    AdaptiveAvgPool2d,
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Embedding,
    Flatten,
    GELU,
    LayerNorm,
    Linear,
    MaxPool2d,
    ReLU,
    ReLU6,
    Sigmoid,
    Tanh,
)
from .losses import CrossEntropyLoss, LabelSmoothingCrossEntropy, MSELoss, SpanExtractionLoss, cross_entropy
from .module import Identity, Module, ModuleList, Parameter, Sequential
from .tensor import Tensor, arange, concatenate, no_grad, ones, randn, stack, tensor, where, zeros

__all__ = [
    "functional",
    "init",
    "Tensor",
    "tensor",
    "zeros",
    "ones",
    "randn",
    "arange",
    "concatenate",
    "stack",
    "where",
    "no_grad",
    "Module",
    "ModuleList",
    "Parameter",
    "Sequential",
    "Identity",
    "Linear",
    "Conv2d",
    "BatchNorm2d",
    "LayerNorm",
    "Embedding",
    "Dropout",
    "ReLU",
    "ReLU6",
    "GELU",
    "Tanh",
    "Sigmoid",
    "MaxPool2d",
    "AvgPool2d",
    "AdaptiveAvgPool2d",
    "Flatten",
    "ConvBNReLU",
    "BasicBlock",
    "Bottleneck",
    "InvertedResidual",
    "MultiHeadAttention",
    "FeedForward",
    "TransformerEncoderLayer",
    "TransformerDecoderLayer",
    "PositionalEncoding",
    "CrossEntropyLoss",
    "LabelSmoothingCrossEntropy",
    "MSELoss",
    "SpanExtractionLoss",
    "cross_entropy",
]

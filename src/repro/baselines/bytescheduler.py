"""ByteScheduler baseline: priority-based communication scheduling.

ByteScheduler (SOSP'19) is the paper's distributed-training baseline
(Figure 10): it partitions gradient tensors and schedules their transmission
by priority (front layers first) so that communication overlaps not only with
the backward pass but also with the *next iteration's forward pass* —
"theoretically optimal scheduling without skipping any parameter and full
accuracy" (§6.1).

The class below wraps the :class:`~repro.sim.TimelineSimulator` policy into a
trainer-compatible object so distributed benchmarks can compare:

* vanilla all-reduce,
* ByteScheduler,
* Egeria (frozen layers excluded from synchronization),
* Egeria + ByteScheduler,

for a given cluster size — reproducing the bar groups of Figure 10.  It also
reproduces the caveat the paper mentions: when communication is not the
bottleneck, ByteScheduler's gain is limited and a slight throughput drop (its
default-configuration overhead) is normal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.modules import LayerModule
from ..sim.allreduce import AllReduceModel
from ..sim.cluster import Cluster, GPUDevice, paper_testbed_cluster
from ..sim.cost_model import CostModel
from ..sim.timeline import SchedulePolicy, TimelineSimulator

__all__ = ["ByteSchedulerModel", "DistributedThroughputComparison"]


@dataclass
class ByteSchedulerModel:
    """Analytical model of ByteScheduler's communication overlap.

    ``scheduling_overhead_fraction`` models the credit/partition bookkeeping
    cost that makes ByteScheduler slightly slower than the baseline when the
    network is not the bottleneck (§6.3, footnote about issue reports).
    """

    scheduling_overhead_fraction: float = 0.01

    def iteration_time(self, simulator: TimelineSimulator, frozen_prefix: int = 0,
                       cached_fp: bool = False, with_egeria: bool = False) -> float:
        policy = SchedulePolicy.EGERIA_BYTESCHEDULER if with_egeria else SchedulePolicy.BYTESCHEDULER
        timeline = simulator.simulate(policy, frozen_prefix=frozen_prefix, cached_fp=cached_fp)
        return timeline.total * (1.0 + self.scheduling_overhead_fraction)


class DistributedThroughputComparison:
    """Builds the Figure 10 comparison for one model and one cluster size."""

    def __init__(self, layer_modules: Sequence[LayerModule], batch_size: int = 32,
                 cluster: Optional[Cluster] = None, bytescheduler: Optional[ByteSchedulerModel] = None):
        self.layer_modules = list(layer_modules)
        self.batch_size = batch_size
        self.cluster = cluster or paper_testbed_cluster()
        self.bytescheduler = bytescheduler or ByteSchedulerModel()

    def _simulator(self, workers: List[GPUDevice]) -> TimelineSimulator:
        cost_model = CostModel(self.layer_modules, batch_size=self.batch_size)
        allreduce = AllReduceModel(self.cluster)
        return TimelineSimulator(self.layer_modules, cost_model, allreduce, workers)

    def throughputs(self, num_machines: int, gpus_per_machine: int = 2, frozen_prefix: int = 0,
                    cached_fp: bool = True) -> Dict[str, float]:
        """Samples/second for the four policies at the given cluster size."""
        workers = self.cluster.workers(num_machines=num_machines, gpus_per_machine=gpus_per_machine)
        simulator = self._simulator(workers)
        samples_per_iteration = self.batch_size * len(workers)

        results: Dict[str, float] = {}
        vanilla = simulator.simulate(SchedulePolicy.VANILLA)
        results[SchedulePolicy.VANILLA] = vanilla.throughput(samples_per_iteration)

        bytesched_time = self.bytescheduler.iteration_time(simulator)
        results[SchedulePolicy.BYTESCHEDULER] = samples_per_iteration / bytesched_time if bytesched_time else 0.0

        egeria = simulator.simulate(SchedulePolicy.EGERIA, frozen_prefix=frozen_prefix, cached_fp=cached_fp)
        results[SchedulePolicy.EGERIA] = egeria.throughput(samples_per_iteration)

        combined_time = self.bytescheduler.iteration_time(simulator, frozen_prefix=frozen_prefix,
                                                          cached_fp=cached_fp, with_egeria=True)
        results[SchedulePolicy.EGERIA_BYTESCHEDULER] = (
            samples_per_iteration / combined_time if combined_time else 0.0
        )
        return results

    def scaling_sweep(self, machine_counts: Sequence[int], gpus_per_machine: int = 2,
                      frozen_prefix: int = 0, cached_fp: bool = True) -> List[Dict[str, float]]:
        """Throughput rows for each cluster size (the Figure 10 x-axis)."""
        rows = []
        for num_machines in machine_counts:
            row: Dict[str, float] = {"num_machines": float(num_machines)}
            row.update(self.throughputs(num_machines, gpus_per_machine, frozen_prefix, cached_fp))
            rows.append(row)
        return rows

"""ByteScheduler baseline: priority-based communication scheduling.

ByteScheduler (SOSP'19) is the paper's distributed-training baseline
(Figure 10): it partitions gradient tensors and schedules their transmission
by priority (front layers first) so that communication overlaps not only with
the backward pass but also with the *next iteration's forward pass* —
"theoretically optimal scheduling without skipping any parameter and full
accuracy" (§6.1).

The class below wraps the :class:`~repro.sim.TimelineSimulator` policy into a
trainer-compatible object so distributed benchmarks can compare:

* vanilla all-reduce,
* ByteScheduler,
* Egeria (frozen layers excluded from synchronization),
* Egeria + ByteScheduler,

for a given cluster size — reproducing the bar groups of Figure 10.  It also
reproduces the caveat the paper mentions: when communication is not the
bottleneck, ByteScheduler's gain is limited and a slight throughput drop (its
default-configuration overhead) is normal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.modules import LayerModule
from ..sim.allreduce import AllReduceModel
from ..sim.cluster import Cluster, GPUDevice, paper_testbed_cluster
from ..sim.cost_model import CostModel
from ..sim.engine import EventDrivenEngine
from ..sim.timeline import SchedulePolicy, TimelineSimulator

__all__ = ["ByteSchedulerModel", "DistributedThroughputComparison"]


@dataclass
class ByteSchedulerModel:
    """Analytical model of ByteScheduler's communication overlap.

    ``scheduling_overhead_fraction`` models the credit/partition bookkeeping
    cost that makes ByteScheduler slightly slower than the baseline when the
    network is not the bottleneck (§6.3, footnote about issue reports).
    """

    scheduling_overhead_fraction: float = 0.01

    def iteration_time(self, simulator: TimelineSimulator, frozen_prefix: int = 0,
                       cached_fp: bool = False, with_egeria: bool = False) -> float:
        policy = SchedulePolicy.EGERIA_BYTESCHEDULER if with_egeria else SchedulePolicy.BYTESCHEDULER
        timeline = simulator.simulate(policy, frozen_prefix=frozen_prefix, cached_fp=cached_fp)
        return timeline.total * (1.0 + self.scheduling_overhead_fraction)


class DistributedThroughputComparison:
    """Builds the Figure 10 comparison for one model and one cluster size.

    ``backend`` selects how the per-policy iteration time is obtained:

    * ``"event"`` (default) — the discrete-event engine replays several
      iterations and reports the steady-state spacing, so bucket
      serialization, the slowest-worker barrier and ByteScheduler's overlap
      with the next forward pass all emerge from actual events;
    * ``"closed_form"`` — the original analytical
      :class:`~repro.sim.timeline.TimelineSimulator` (fast fallback, kept
      validated against the engine).
    """

    BACKENDS = ("event", "closed_form")

    def __init__(self, layer_modules: Sequence[LayerModule], batch_size: int = 32,
                 cluster: Optional[Cluster] = None, bytescheduler: Optional[ByteSchedulerModel] = None,
                 backend: str = "event", engine: Optional[EventDrivenEngine] = None):
        if backend not in self.BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; expected one of {self.BACKENDS}")
        self.layer_modules = list(layer_modules)
        self.batch_size = batch_size
        self.cluster = cluster or paper_testbed_cluster()
        self.bytescheduler = bytescheduler or ByteSchedulerModel()
        self.backend = backend
        self.engine = engine or EventDrivenEngine(self.cluster)

    def _simulator(self, workers: List[GPUDevice]) -> TimelineSimulator:
        cost_model = CostModel(self.layer_modules, batch_size=self.batch_size)
        allreduce = AllReduceModel(self.cluster)
        return TimelineSimulator(self.layer_modules, cost_model, allreduce, workers)

    def _policy_seconds(self, policy: str, workers: List[GPUDevice], frozen_prefix: int,
                        cached_fp: bool) -> float:
        """Steady-state iteration seconds for one policy."""
        uses_freezing = policy in (SchedulePolicy.EGERIA, SchedulePolicy.EGERIA_BYTESCHEDULER)
        prefix = frozen_prefix if uses_freezing else 0
        cached = cached_fp if uses_freezing else False
        if self.backend == "closed_form":
            return self._simulator(workers).simulate(policy, frozen_prefix=prefix, cached_fp=cached).total
        cost_model = CostModel(self.layer_modules, batch_size=self.batch_size)
        return self.engine.steady_iteration_seconds(cost_model, workers=workers, frozen_prefix=prefix,
                                                    cached_fp=cached, policy=policy)

    def throughputs(self, num_machines: int, gpus_per_machine: int = 2, frozen_prefix: int = 0,
                    cached_fp: bool = True) -> Dict[str, float]:
        """Samples/second for the four policies at the given cluster size."""
        workers = self.cluster.workers(num_machines=num_machines, gpus_per_machine=gpus_per_machine)
        samples_per_iteration = self.batch_size * len(workers)
        overhead = 1.0 + self.bytescheduler.scheduling_overhead_fraction

        results: Dict[str, float] = {}
        for policy in SchedulePolicy.ALL:
            seconds = self._policy_seconds(policy, workers, frozen_prefix, cached_fp)
            if policy in (SchedulePolicy.BYTESCHEDULER, SchedulePolicy.EGERIA_BYTESCHEDULER):
                seconds *= overhead
            results[policy] = samples_per_iteration / seconds if seconds > 0 else 0.0
        return results

    def scaling_sweep(self, machine_counts: Sequence[int], gpus_per_machine: int = 2,
                      frozen_prefix: int = 0, cached_fp: bool = True) -> List[Dict[str, float]]:
        """Throughput rows for each cluster size (the Figure 10 x-axis)."""
        rows = []
        for num_machines in machine_counts:
            row: Dict[str, float] = {"num_machines": float(num_machines)}
            row.update(self.throughputs(num_machines, gpus_per_machine, frozen_prefix, cached_fp))
            rows.append(row)
        return rows

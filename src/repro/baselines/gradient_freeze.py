"""Gradient-norm–based freezing (AutoFreeze-style baseline).

AutoFreeze (Liu et al., 2021) and PipeTransformer freeze layers whose
*gradient norm* (relative to the other layers) has become small — a metric
computed against hard labels, which the paper argues is less semantically
meaningful than activation-based plasticity and which it measures to lose
~1–1.5% accuracy at matched speedup outside of fine-tuning (Figure 2 right,
Figure 8, §6.2).

:class:`GradientFreezeTrainer` reproduces that family: it tracks an
exponentially smoothed per-module gradient norm and freezes the frontmost
active module once its share of the total gradient norm stays below a
threshold for a number of consecutive evaluations.  An aggressiveness knob
lets benchmarks tune it to reach the same speedup as Egeria (the paper's
comparison protocol).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.modules import LayerModule
from ..core.tasks import TaskAdapter
from ..core.trainer import BaseTrainer
from ..data.dataloader import DataLoader
from ..nn.module import Module
from ..optim.lr_scheduler import LRScheduler
from ..optim.optimizer import Optimizer
from ..sim.cost_model import CostModel

__all__ = ["GradientFreezeTrainer", "module_gradient_norm"]


def module_gradient_norm(layer_module: LayerModule) -> float:
    """L2 norm of all gradients currently stored in a layer module."""
    total = 0.0
    for block in layer_module.blocks:
        for param in block.parameters():
            if param.grad is not None:
                total += float(np.sum(param.grad.astype(np.float64) ** 2))
    return float(np.sqrt(total))


class GradientFreezeTrainer(BaseTrainer):
    """Freeze front modules whose relative gradient norm stays small.

    Parameters
    ----------
    eval_interval_iters:
        Evaluate gradient norms every this many iterations.
    norm_share_threshold:
        Freeze the frontmost active module once its smoothed share of the
        total gradient norm falls below this value.
    patience:
        Number of consecutive below-threshold evaluations required.
    smoothing:
        Exponential smoothing factor for the per-module norm estimates.
    """

    def __init__(self, model: Module, task: TaskAdapter, train_loader: DataLoader,
                 eval_loader: Optional[DataLoader] = None, optimizer: Optional[Optimizer] = None,
                 scheduler: Optional[LRScheduler] = None, eval_interval_iters: int = 20,
                 norm_share_threshold: float = 0.05, patience: int = 3, smoothing: float = 0.7,
                 cost_model: Optional[CostModel] = None, layer_modules: Optional[Sequence[LayerModule]] = None,
                 comm_seconds_per_byte: float = 0.0, name: str = "autofreeze"):
        super().__init__(model, task, train_loader, eval_loader, optimizer, scheduler,
                         cost_model, layer_modules, comm_seconds_per_byte, name=name)
        self.eval_interval_iters = max(eval_interval_iters, 1)
        self.norm_share_threshold = norm_share_threshold
        self.patience = max(patience, 1)
        self.smoothing = smoothing
        self._frozen_prefix = 0
        self._below_threshold_count = 0
        self._smoothed_norms: Dict[int, float] = {}
        self.freeze_events: List[Dict[str, float]] = []

    def frozen_prefix(self) -> int:
        return self._frozen_prefix

    # ------------------------------------------------------------------ #
    # Gradient-norm evaluation
    # ------------------------------------------------------------------ #
    def _update_norms(self) -> None:
        for module in self.layer_modules:
            norm = module_gradient_norm(module)
            previous = self._smoothed_norms.get(module.index)
            if previous is None:
                self._smoothed_norms[module.index] = norm
            else:
                self._smoothed_norms[module.index] = self.smoothing * previous + (1 - self.smoothing) * norm

    def _frontmost_share(self) -> Optional[float]:
        """Smoothed gradient-norm share of the frontmost active module."""
        if self._frozen_prefix >= len(self.layer_modules) - 1:
            return None
        total = sum(self._smoothed_norms.get(m.index, 0.0) for m in self.layer_modules[self._frozen_prefix:])
        if total <= 0:
            return None
        front = self._smoothed_norms.get(self.layer_modules[self._frozen_prefix].index, 0.0)
        return front / total

    def on_iteration_end(self, batch, loss_value: float) -> None:
        if self.iteration % self.eval_interval_iters != 0:
            return
        self._update_norms()
        share = self._frontmost_share()
        if share is None:
            return
        if share < self.norm_share_threshold:
            self._below_threshold_count += 1
        else:
            self._below_threshold_count = 0
        if self._below_threshold_count >= self.patience:
            module = self.layer_modules[self._frozen_prefix]
            module.freeze()
            self._frozen_prefix += 1
            self._below_threshold_count = 0
            self.freeze_events.append({
                "iteration": self.iteration,
                "module_index": module.index,
                "gradient_share": share,
            })

"""Static layer freezing: fix a stage's parameters at a preset epoch.

This is the transfer-learning technique the paper's motivation experiment
(Figure 2, left) applies to general training: "we first fix the parameters of
each layer module at the 20th/50th epoch and show their validation accuracies
alongside the baseline.  The degraded accuracies indicate that freezing layers
prematurely can hurt accuracy by nearly 2%."
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.modules import LayerModule
from ..core.tasks import TaskAdapter
from ..core.trainer import BaseTrainer
from ..data.dataloader import DataLoader
from ..nn.module import Module
from ..optim.lr_scheduler import LRScheduler
from ..optim.optimizer import Optimizer
from ..sim.cost_model import CostModel

__all__ = ["StaticFreezeTrainer"]


class StaticFreezeTrainer(BaseTrainer):
    """Freeze a fixed set of front layer modules at a fixed epoch.

    Parameters
    ----------
    freeze_schedule:
        Mapping from epoch number to the number of front layer modules that
        should be frozen *from that epoch onward* (e.g. ``{20: 3}`` freezes
        the first three modules at epoch 20).  Schedules are cumulative: the
        largest prefix requested so far stays frozen.
    """

    def __init__(self, model: Module, task: TaskAdapter, train_loader: DataLoader,
                 eval_loader: Optional[DataLoader] = None, optimizer: Optional[Optimizer] = None,
                 scheduler: Optional[LRScheduler] = None, freeze_schedule: Optional[Dict[int, int]] = None,
                 cost_model: Optional[CostModel] = None, layer_modules: Optional[Sequence[LayerModule]] = None,
                 comm_seconds_per_byte: float = 0.0, name: str = "static_freeze"):
        super().__init__(model, task, train_loader, eval_loader, optimizer, scheduler,
                         cost_model, layer_modules, comm_seconds_per_byte, name=name)
        self.freeze_schedule: Dict[int, int] = dict(freeze_schedule or {})
        self._frozen_prefix = 0
        self.freeze_events: List[Dict[str, int]] = []

    def frozen_prefix(self) -> int:
        return self._frozen_prefix

    def on_epoch_start(self, epoch: int, lr: float) -> None:
        requested = self.freeze_schedule.get(epoch)
        if requested is None:
            return
        requested = min(requested, len(self.layer_modules) - 1)
        if requested <= self._frozen_prefix:
            return
        for module in self.layer_modules[self._frozen_prefix:requested]:
            module.freeze()
        self._frozen_prefix = requested
        self.freeze_events.append({"epoch": epoch, "frozen_prefix": requested})

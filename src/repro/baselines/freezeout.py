"""FreezeOut baseline: progressive layer freezing on a cosine schedule.

FreezeOut (Brock et al., 2017) freezes layers front-to-back on a *time-based*
schedule: layer ``i`` stops training once a fraction ``t_i`` of the run has
elapsed, where ``t_i`` follows a (optionally cubed) cosine-like ramp from
``t_0`` to 1.  The paper cites it as an early exploration that "shows that
freezing can trade off accuracy for speed" but "reports large accuracy loss on
many models" (§7) — the behaviour this baseline reproduces since its schedule
ignores the layers' actual convergence.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.modules import LayerModule
from ..core.tasks import TaskAdapter
from ..core.trainer import BaseTrainer
from ..data.dataloader import DataLoader
from ..nn.module import Module
from ..optim.lr_scheduler import LRScheduler
from ..optim.optimizer import Optimizer
from ..sim.cost_model import CostModel

__all__ = ["FreezeOutTrainer", "freezeout_schedule"]


def freezeout_schedule(num_modules: int, t0: float = 0.5, cubed: bool = True) -> List[float]:
    """Per-module freeze times as fractions of the total run.

    Module 0 freezes at ``t0`` (optionally ``t0 ** 3`` for the cubed variant,
    which front-loads freezing), the last freezable module never freezes
    (fraction 1.0), and the rest interpolate linearly — following the
    FreezeOut paper's scaled linear/cubic schedules.
    """
    if num_modules <= 1:
        return [1.0] * num_modules
    start = t0 ** 3 if cubed else t0
    times = []
    for index in range(num_modules):
        fraction = index / (num_modules - 1)
        times.append(start + (1.0 - start) * fraction)
    return times


class FreezeOutTrainer(BaseTrainer):
    """Freeze modules front-to-back once their scheduled time fraction elapses."""

    def __init__(self, model: Module, task: TaskAdapter, train_loader: DataLoader,
                 eval_loader: Optional[DataLoader] = None, optimizer: Optional[Optimizer] = None,
                 scheduler: Optional[LRScheduler] = None, total_epochs: int = 50, t0: float = 0.5,
                 cubed: bool = True, cost_model: Optional[CostModel] = None,
                 layer_modules: Optional[Sequence[LayerModule]] = None,
                 comm_seconds_per_byte: float = 0.0, name: str = "freezeout"):
        super().__init__(model, task, train_loader, eval_loader, optimizer, scheduler,
                         cost_model, layer_modules, comm_seconds_per_byte, name=name)
        self.total_epochs = max(total_epochs, 1)
        freezable = max(len(self.layer_modules) - 1, 1)
        self.schedule = freezeout_schedule(freezable, t0=t0, cubed=cubed)
        self._frozen_prefix = 0
        self.freeze_events: List[Dict[str, float]] = []

    def frozen_prefix(self) -> int:
        return self._frozen_prefix

    def on_epoch_start(self, epoch: int, lr: float) -> None:
        progress = epoch / self.total_epochs
        target_prefix = sum(1 for t in self.schedule if progress >= t and t < 1.0)
        target_prefix = min(target_prefix, len(self.layer_modules) - 1)
        if target_prefix <= self._frozen_prefix:
            return
        for module in self.layer_modules[self._frozen_prefix:target_prefix]:
            module.freeze()
            self.freeze_events.append({"epoch": epoch, "module_index": module.index, "progress": progress})
        self._frozen_prefix = target_prefix

"""``repro.baselines`` — the comparison systems of the paper's evaluation.

Vanilla full training, static freezing and gradient-norm (AutoFreeze-style)
freezing from transfer learning, the Skip-Conv direct-difference metric,
FreezeOut's schedule-based freezing, and the ByteScheduler communication
scheduler used in the distributed experiments.
"""

from .bytescheduler import ByteSchedulerModel, DistributedThroughputComparison
from .freezeout import FreezeOutTrainer, freezeout_schedule
from .gradient_freeze import GradientFreezeTrainer, module_gradient_norm
from .skipconv import SkipConvTrainer
from .static_freeze import StaticFreezeTrainer
from .vanilla import VanillaTrainer

__all__ = [
    "VanillaTrainer",
    "StaticFreezeTrainer",
    "GradientFreezeTrainer",
    "module_gradient_norm",
    "SkipConvTrainer",
    "FreezeOutTrainer",
    "freezeout_schedule",
    "ByteSchedulerModel",
    "DistributedThroughputComparison",
]

"""Skip-Conv–style freezing baseline: direct activation-difference gating.

§6.1/§6.2 of the paper: "We also compare Egeria ... to using the metric of
Skip-Conv as an alternative to plasticity.  We use the input-norm gate of
Skip-Conv, which applies to intermediate activation rather than
convolution-specific. ... When comparing models' intermediate results,
Skip-Conv metric works similarly to an early KD research, FitNets, by directly
subtracting two tensors."

Rather than re-implementing the whole Egeria pipeline, this baseline *is* the
Egeria trainer with the plasticity metric swapped for the direct
mean-squared-difference of the activation tensors — exactly the comparison the
paper makes (same system, different convergence signal).  Because the direct
difference is noisier and scale-dependent, it tends to trigger premature
freezes, reproducing the accuracy loss of Figure 8.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.config import EgeriaConfig
from ..core.modules import LayerModule
from ..core.plasticity import direct_difference_loss
from ..core.tasks import TaskAdapter
from ..core.trainer import EgeriaTrainer
from ..data.dataloader import DataLoader
from ..nn.module import Module
from ..optim.lr_scheduler import LRScheduler
from ..optim.optimizer import Optimizer
from ..sim.cost_model import CostModel

__all__ = ["SkipConvTrainer"]


class SkipConvTrainer(EgeriaTrainer):
    """Egeria's machinery with the Skip-Conv/FitNets direct-difference metric."""

    def __init__(self, model: Module, model_factory, task: TaskAdapter, train_loader: DataLoader,
                 eval_loader: Optional[DataLoader] = None, optimizer: Optional[Optimizer] = None,
                 scheduler: Optional[LRScheduler] = None, config: Optional[EgeriaConfig] = None,
                 cost_model: Optional[CostModel] = None, layer_modules: Optional[Sequence[LayerModule]] = None,
                 comm_seconds_per_byte: float = 0.0, aggressiveness: float = 2.0, name: str = "skipconv"):
        super().__init__(model, model_factory, task, train_loader, eval_loader, optimizer, scheduler,
                         config, cost_model, layer_modules, comm_seconds_per_byte, name=name)
        # Swap the convergence signal: direct tensor difference instead of SP loss.
        self.engine.metric = direct_difference_loss
        # The direct-difference signal is flatter, which makes the slope test
        # pass sooner; ``aggressiveness`` scales the tolerance the same way the
        # paper tunes this baseline to match Egeria's speedup.
        self._aggressiveness = aggressiveness
        for tracker in self.engine.trackers.values():
            tracker.tolerance_coefficient = min(tracker.tolerance_coefficient * aggressiveness, 0.95)

"""Vanilla (full) training baseline.

This is the paper's main comparison point: the unmodified training framework
("PyTorch" in Table 1/Figure 8), whose converged accuracy defines the TTA
target every accelerated run must reach.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.modules import LayerModule
from ..core.tasks import TaskAdapter
from ..core.trainer import BaseTrainer
from ..data.dataloader import DataLoader
from ..nn.module import Module
from ..optim.lr_scheduler import LRScheduler
from ..optim.optimizer import Optimizer
from ..sim.cost_model import CostModel

__all__ = ["VanillaTrainer"]


class VanillaTrainer(BaseTrainer):
    """Full training with no freezing — identical loop, zero Egeria machinery."""

    def __init__(self, model: Module, task: TaskAdapter, train_loader: DataLoader,
                 eval_loader: Optional[DataLoader] = None, optimizer: Optional[Optimizer] = None,
                 scheduler: Optional[LRScheduler] = None, cost_model: Optional[CostModel] = None,
                 layer_modules: Optional[Sequence[LayerModule]] = None,
                 comm_seconds_per_byte: float = 0.0, name: str = "vanilla"):
        super().__init__(model, task, train_loader, eval_loader, optimizer, scheduler,
                         cost_model, layer_modules, comm_seconds_per_byte, name=name)

"""``repro.experiments`` — workload builders and table/figure harnesses.

The bridge between the library and the paper's evaluation: pre-scaled
workloads for the seven Table 1 models, trainer runners for Egeria and every
baseline, and one ``run_*`` function per table/figure (used by the
``benchmarks/`` suite and the examples).
"""

from .figures import (
    run_checkpoint_overhead,
    run_fault_tolerance,
    run_fig1_pwcca_convergence,
    run_fig2_premature_freezing,
    run_fig4_plasticity_trends,
    run_fig8_end_to_end,
    run_fig9_breakdown,
    run_fig10_distributed,
    run_fig11_freezing_decisions,
    run_fig12_hyperparameters,
    run_freezing_replay,
    run_multijob_cluster,
    run_overhead_analysis,
    run_storage_contention,
    run_table1_tta,
    run_table2_reference_precision,
    run_topology_interference,
    run_trainer_backed_job,
    run_trainer_fault_tolerance,
)
from .runners import SYSTEMS, ComparisonRow, build_trainer, compare_systems, format_rows, run_trainer
from .workloads import SCALES, Workload, available_workloads, build_workload

__all__ = [
    "Workload",
    "SCALES",
    "build_workload",
    "available_workloads",
    "SYSTEMS",
    "ComparisonRow",
    "build_trainer",
    "run_trainer",
    "compare_systems",
    "format_rows",
    "run_table1_tta",
    "run_table2_reference_precision",
    "run_fig1_pwcca_convergence",
    "run_fig2_premature_freezing",
    "run_fig4_plasticity_trends",
    "run_fig8_end_to_end",
    "run_fig9_breakdown",
    "run_fig10_distributed",
    "run_multijob_cluster",
    "run_freezing_replay",
    "run_checkpoint_overhead",
    "run_fault_tolerance",
    "run_storage_contention",
    "run_topology_interference",
    "run_trainer_backed_job",
    "run_trainer_fault_tolerance",
    "run_fig11_freezing_decisions",
    "run_fig12_hyperparameters",
    "run_overhead_analysis",
]

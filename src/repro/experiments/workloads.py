"""Pre-configured training workloads for the paper's experiments.

Each builder returns a :class:`Workload` bundling the model factory, task
adapter, data loaders, optimizer/scheduler factories and an Egeria
configuration, sized so the whole experiment runs on a CPU in seconds while
keeping the *shape* of the paper's setup:

* a high initial learning rate with step decay, so validation accuracy only
  stabilises after the LR drops (as in the paper's 200-epoch CIFAR runs) and
  TTA is reached late enough for freezing to pay off;
* the same model structure (stages/blocks) as the paper's models, so the
  layer-module decomposition and freezing schedule look like Figure 11;
* synthetic datasets with a train/eval split drawn from the same distribution.

The ``scale`` knob ("tiny" for unit tests, "small" for benchmarks) controls
sample counts, epochs and model width.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from .. import models
from ..core.config import EgeriaConfig
from ..core.tasks import (
    ClassificationTask,
    QuestionAnsweringTask,
    SegmentationTask,
    TaskAdapter,
    TranslationTask,
)
from ..data import DataLoader, make_dataset
from ..optim import SGD, Adam, AdamW, InverseSquareRootLR, LinearDecayLR, LambdaLR, MultiStepLR

__all__ = ["Workload", "SCALES", "build_workload", "available_workloads"]


@dataclass
class Workload:
    """Everything needed to train one of the paper's evaluation models."""

    name: str
    paper_model: str
    task: TaskAdapter
    model_factory: Callable[[], object]
    train_dataset: object
    eval_dataset: object
    batch_size: int
    num_epochs: int
    optimizer_factory: Callable[[object], object]
    scheduler_factory: Callable[[object], object]
    egeria_config: EgeriaConfig
    paper_tta_speedup: float = 0.0
    seed: int = 0

    def train_loader(self, seed: Optional[int] = None) -> DataLoader:
        return DataLoader(self.train_dataset, batch_size=self.batch_size, seed=self.seed if seed is None else seed)

    def eval_loader(self) -> DataLoader:
        return DataLoader(self.eval_dataset, batch_size=self.batch_size, shuffle=False)

    def make_model(self):
        return self.model_factory()

    def make_optimizer(self, model):
        return self.optimizer_factory(model)

    def make_scheduler(self, optimizer):
        return self.scheduler_factory(optimizer)


#: Scale presets controlling dataset size, epochs, resolution and difficulty.
SCALES: Dict[str, Dict[str, float]] = {
    "tiny": {"samples": 140, "epochs": 18, "image_size": 8, "noise": 2.5},
    "small": {"samples": 200, "epochs": 30, "image_size": 8, "noise": 2.5},
}


def _cv_config(num_epochs: int, iters_per_epoch: int) -> EgeriaConfig:
    """Egeria hyperparameters following the §4.2.2 guideline at this scale.

    The guideline scales ``n`` so that every layer module can be evaluated and
    frozen within the run; at these miniature scales that means evaluating
    every couple of iterations and using a short freeze window.
    """
    return EgeriaConfig(
        eval_interval_iters=max(iters_per_epoch // 4, 2),
        freeze_window=2,
        bootstrap_min_evaluations=2,
        reference_update_interval=4,
    )


def _classification_workload(name: str, paper_model: str, model_factory, scale: str, seed: int,
                             paper_speedup: float, num_classes: int = 10) -> Workload:
    preset = SCALES[scale]
    full = make_dataset("synthetic_cifar10", num_samples=int(preset["samples"]), num_classes=num_classes,
                        image_size=int(preset["image_size"]), noise=float(preset["noise"]), seed=seed)
    train_ds, eval_ds = full.split(eval_fraction=0.2)
    batch_size = 16
    num_epochs = int(preset["epochs"])
    iters_per_epoch = len(train_ds) // batch_size
    milestones = [int(num_epochs * 0.6), int(num_epochs * 0.83)]
    return Workload(
        name=name,
        paper_model=paper_model,
        task=ClassificationTask(),
        model_factory=model_factory,
        train_dataset=train_ds,
        eval_dataset=eval_ds,
        batch_size=batch_size,
        num_epochs=num_epochs,
        optimizer_factory=lambda m: SGD(m.parameters(), lr=0.4, momentum=0.9, weight_decay=5e-4),
        scheduler_factory=lambda opt: MultiStepLR(opt, milestones=milestones, gamma=0.1),
        egeria_config=_cv_config(num_epochs, iters_per_epoch),
        paper_tta_speedup=paper_speedup,
        seed=seed,
    )


def _segmentation_workload(scale: str, seed: int) -> Workload:
    preset = SCALES[scale]
    num_classes = 6
    full = make_dataset("synthetic_voc", num_samples=int(preset["samples"] * 0.6), num_classes=num_classes,
                        image_size=16, noise=1.0, seed=seed)
    train_ds, eval_ds = full.split(eval_fraction=0.2)
    batch_size = 8
    num_epochs = max(int(preset["epochs"] * 0.6), 6)
    iters_per_epoch = len(train_ds) // batch_size
    return Workload(
        name="deeplabv3_voc",
        paper_model="DeepLabv3",
        task=SegmentationTask(num_classes=num_classes),
        model_factory=lambda: models.DeepLabV3Lite(num_classes=num_classes, backbone_depth=8, seed=seed),
        train_dataset=train_ds,
        eval_dataset=eval_ds,
        batch_size=batch_size,
        num_epochs=num_epochs,
        optimizer_factory=lambda m: SGD(m.parameters(), lr=0.2, momentum=0.9, weight_decay=1e-4),
        scheduler_factory=lambda opt: LambdaLR(opt, total_epochs=num_epochs, power=0.9),
        egeria_config=_cv_config(num_epochs, iters_per_epoch),
        paper_tta_speedup=0.21,
        seed=seed,
    )


def _translation_workload(name: str, paper_model: str, scale: str, seed: int, tiny: bool,
                          paper_speedup: float) -> Workload:
    preset = SCALES[scale]
    vocab = 32 if tiny else 48
    seq_len = 10
    full = make_dataset("synthetic_wmt16", num_samples=int(preset["samples"] * 1.5), vocab_size=vocab,
                        seq_len=seq_len, seed=seed)
    train_ds, eval_ds = full.split(eval_fraction=0.25)
    batch_size = 16
    num_epochs = int(preset["epochs"])
    iters_per_epoch = len(train_ds) // batch_size

    def model_factory():
        if tiny:
            return models.transformer_tiny(vocab_size=vocab, seed=seed)
        return models.TransformerMT(vocab_size=vocab, d_model=32, num_heads=4, d_ff=48,
                                    num_encoder_layers=4, num_decoder_layers=4, seed=seed)

    return Workload(
        name=name,
        paper_model=paper_model,
        task=TranslationTask(label_smoothing=0.1),
        model_factory=model_factory,
        train_dataset=train_ds,
        eval_dataset=eval_ds,
        batch_size=batch_size,
        num_epochs=num_epochs,
        optimizer_factory=lambda m: Adam(m.parameters(), lr=3e-3),
        scheduler_factory=lambda opt: InverseSquareRootLR(opt, warmup_steps=4),
        egeria_config=_cv_config(num_epochs, iters_per_epoch),
        paper_tta_speedup=paper_speedup,
        seed=seed,
    )


def _qa_workload(scale: str, seed: int) -> Workload:
    preset = SCALES[scale]
    full = make_dataset("synthetic_squad", num_samples=int(preset["samples"]), vocab_size=64, seq_len=12, seed=seed)
    train_ds, eval_ds = full.split(eval_fraction=0.2)
    batch_size = 16
    num_epochs = max(int(preset["epochs"] * 0.55), 6)
    iters_per_epoch = len(train_ds) // batch_size
    num_layers = 4 if scale == "tiny" else 6

    def model_factory():
        encoder = models.BertLite(vocab_size=64, d_model=24, num_heads=4, d_ff=48,
                                  num_layers=num_layers, max_len=16, seed=seed)
        models.pretrain_bert_lite(encoder, num_steps=15, batch_size=8, seq_len=12, seed=seed)
        return models.BertForQuestionAnswering(encoder=encoder, seed=seed)

    return Workload(
        name="bert_squad",
        paper_model="BERT-Base (fine-tuning)",
        task=QuestionAnsweringTask(),
        model_factory=model_factory,
        train_dataset=train_ds,
        eval_dataset=eval_ds,
        batch_size=batch_size,
        num_epochs=num_epochs,
        optimizer_factory=lambda m: AdamW(m.parameters(), lr=5e-4, weight_decay=0.01),
        scheduler_factory=lambda opt: LinearDecayLR(opt, total_steps=num_epochs, warmup_steps=1),
        egeria_config=_cv_config(num_epochs, iters_per_epoch),
        paper_tta_speedup=0.41,
        seed=seed,
    )


_BUILDERS: Dict[str, Callable[[str, int], Workload]] = {
    "resnet56_cifar10": lambda scale, seed: _classification_workload(
        "resnet56_cifar10", "ResNet-56",
        lambda: models.CifarResNet(depth=8 if scale == "tiny" else 20, num_classes=10, width=0.75, seed=seed),
        scale, seed, paper_speedup=0.23),
    "resnet50_imagenet": lambda scale, seed: _classification_workload(
        "resnet50_imagenet", "ResNet-50",
        lambda: models.ImageNetResNet(stage_blocks=(1, 1, 1, 1) if scale == "tiny" else (2, 2, 2, 2),
                                      num_classes=10, base_width=6, seed=seed),
        scale, seed, paper_speedup=0.28),
    "mobilenet_v2_cifar10": lambda scale, seed: _classification_workload(
        "mobilenet_v2_cifar10", "MobileNet V2",
        lambda: models.mobilenet_v2_lite(num_classes=10, seed=seed),
        scale, seed, paper_speedup=0.22),
    "deeplabv3_voc": lambda scale, seed: _segmentation_workload(scale, seed),
    "transformer_base_wmt16": lambda scale, seed: _translation_workload(
        "transformer_base_wmt16", "Transformer-Base", scale, seed, tiny=False, paper_speedup=0.43),
    "transformer_tiny_wmt16": lambda scale, seed: _translation_workload(
        "transformer_tiny_wmt16", "Transformer-Tiny", scale, seed, tiny=True, paper_speedup=0.19),
    "bert_squad": lambda scale, seed: _qa_workload(scale, seed),
}


def available_workloads() -> List[str]:
    """Names of the seven Table 1 workloads."""
    return sorted(_BUILDERS)


def build_workload(name: str, scale: str = "small", seed: int = 0) -> Workload:
    """Build one of the paper's workloads at the given scale ("tiny"/"small")."""
    if scale not in SCALES:
        raise KeyError(f"unknown scale {scale!r}; known: {sorted(SCALES)}")
    if name not in _BUILDERS:
        raise KeyError(f"unknown workload {name!r}; known: {available_workloads()}")
    return _BUILDERS[name](scale, seed)

"""Runners: train a workload under Egeria or any baseline and compare TTA.

These helpers are the glue between :mod:`repro.experiments.workloads` and the
trainers.  A single :func:`run_trainer` call trains one system on one workload
and returns its :class:`~repro.metrics.RunHistory`; :func:`compare_systems`
runs several systems on the same workload and produces the accuracy/TTA rows
that Table 1 and Figure 8 report.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..baselines import (
    FreezeOutTrainer,
    GradientFreezeTrainer,
    SkipConvTrainer,
    StaticFreezeTrainer,
    VanillaTrainer,
)
from ..core.config import EgeriaConfig
from ..core.trainer import BaseTrainer, EgeriaTrainer
from ..metrics.tracking import RunHistory, tta_speedup
from ..sim import Cluster, EventDrivenEngine, SchedulePolicy
from .workloads import Workload

__all__ = ["SYSTEMS", "build_trainer", "run_trainer", "compare_systems", "ComparisonRow"]

#: Names of the systems the evaluation section compares.
SYSTEMS = ("vanilla", "egeria", "autofreeze", "skipconv", "static_freeze", "freezeout")


def build_trainer(system: str, workload: Workload, comm_seconds_per_byte: float = 0.0,
                  config: Optional[EgeriaConfig] = None, **overrides) -> BaseTrainer:
    model = workload.make_model()
    optimizer = workload.make_optimizer(model)
    scheduler = workload.make_scheduler(optimizer)
    train_loader = workload.train_loader()
    eval_loader = workload.eval_loader()
    common = dict(task=workload.task, train_loader=train_loader, eval_loader=eval_loader,
                  optimizer=optimizer, scheduler=scheduler, comm_seconds_per_byte=comm_seconds_per_byte)
    egeria_config = config or workload.egeria_config

    if system == "vanilla":
        return VanillaTrainer(model, **common)
    if system == "egeria":
        cache_dir = overrides.pop("cache_dir", tempfile.mkdtemp(prefix="egeria_run_"))
        cfg = EgeriaConfig(**{**egeria_config.__dict__, "cache_dir": cache_dir, **overrides})
        return EgeriaTrainer(model, workload.model_factory, config=cfg, **common)
    if system == "skipconv":
        cache_dir = overrides.pop("cache_dir", tempfile.mkdtemp(prefix="skipconv_run_"))
        cfg = EgeriaConfig(**{**egeria_config.__dict__, "cache_dir": cache_dir, **overrides})
        return SkipConvTrainer(model, workload.model_factory, config=cfg, **common)
    if system == "autofreeze":
        # Tuned to reach a similar speedup to Egeria (the paper's protocol):
        # freeze eagerly on the gradient-norm signal.
        return GradientFreezeTrainer(
            model,
            eval_interval_iters=overrides.pop("eval_interval_iters", egeria_config.eval_interval_iters),
            norm_share_threshold=overrides.pop("norm_share_threshold", 0.2),
            patience=overrides.pop("patience", 2),
            **common,
        )
    if system == "static_freeze":
        schedule = overrides.pop("freeze_schedule", None)
        if schedule is None:
            freeze_epoch = max(workload.num_epochs // 5, 1)
            schedule = {freeze_epoch: overrides.pop("freeze_modules", 2)}
        return StaticFreezeTrainer(model, freeze_schedule=schedule, **common)
    if system == "freezeout":
        return FreezeOutTrainer(model, total_epochs=workload.num_epochs,
                                t0=overrides.pop("t0", 0.25), **common)
    raise KeyError(f"unknown system {system!r}; known: {SYSTEMS}")


def run_trainer(system: str, workload: Workload, num_epochs: Optional[int] = None,
                comm_seconds_per_byte: float = 0.0, config: Optional[EgeriaConfig] = None,
                sim_backend: str = "event", sim_cluster: Optional[Cluster] = None,
                sim_num_machines: Optional[int] = None, sim_gpus_per_machine: Optional[int] = None,
                checkpoint_manager=None, checkpoint_every: int = 1,
                **overrides) -> Dict[str, object]:
    """Train one system on one workload; returns history, trainer summary, etc.

    ``sim_backend="event"`` (the default) accounts simulated time through
    the discrete-event engine; with a ``sim_cluster`` the engine also prices
    per-link communication for ``sim_num_machines`` x
    ``sim_gpus_per_machine`` workers (otherwise the single-GPU compute
    timeline is replayed event by event).  ``sim_backend="closed_form"``
    selects the validated analytical fast mode.

    With a ``checkpoint_manager`` (see :mod:`repro.ckpt`) the trainer saves a
    full training-state snapshot every ``checkpoint_every`` epochs; the
    result dict then carries the per-checkpoint ``"checkpoints"`` history.
    """
    trainer = build_trainer(system, workload, comm_seconds_per_byte, config, **overrides)
    if sim_backend != trainer.sim_backend or sim_cluster is not None:
        engine = EventDrivenEngine(sim_cluster) if sim_backend == "event" else None
        workers = None
        if sim_cluster is not None:
            workers = sim_cluster.workers(num_machines=sim_num_machines,
                                          gpus_per_machine=sim_gpus_per_machine)
        trainer.configure_simulation(backend=sim_backend, engine=engine, workers=workers,
                                     policy=SchedulePolicy.VANILLA)
    if checkpoint_manager is not None:
        trainer.configure_checkpointing(checkpoint_manager, checkpoint_every=checkpoint_every)
    history = trainer.fit(num_epochs or workload.num_epochs)
    result: Dict[str, object] = {
        "system": system,
        "workload": workload.name,
        "sim_backend": trainer.sim_backend,
        "history": history,
        "final_metric": history.final_metric(),
        "best_metric": history.best_metric(),
        "simulated_time": history.total_simulated_time(),
        "wall_time": history.total_wall_time(),
        "frozen_fraction": trainer.frozen_fraction(),
    }
    if checkpoint_manager is not None:
        result["checkpoints"] = checkpoint_manager.history()
    if isinstance(trainer, EgeriaTrainer):
        result["summary"] = trainer.summary()
        result["timeline"] = trainer.freezing_timeline()
        trainer.close()
    return result


@dataclass
class ComparisonRow:
    """One Table 1 / Figure 8 style row: a system's accuracy and TTA speedup."""

    workload: str
    system: str
    final_metric: float
    best_metric: float
    target_metric: float
    reached_target: bool
    tta_speedup_vs_vanilla: Optional[float]
    simulated_time: float
    accuracy_gap_vs_vanilla: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "system": self.system,
            "final_metric": self.final_metric,
            "best_metric": self.best_metric,
            "target_metric": self.target_metric,
            "reached_target": self.reached_target,
            "tta_speedup_vs_vanilla": self.tta_speedup_vs_vanilla,
            "simulated_time": self.simulated_time,
            "accuracy_gap_vs_vanilla": self.accuracy_gap_vs_vanilla,
        }


def compare_systems(workload: Workload, systems: Sequence[str] = ("vanilla", "egeria"),
                    num_epochs: Optional[int] = None, target_slack: float = 0.98,
                    **overrides) -> List[ComparisonRow]:
    """Run several systems on one workload and compute per-system TTA speedups.

    The accuracy target follows the paper's protocol: the converged accuracy
    of the vanilla baseline (here scaled by ``target_slack`` to absorb the
    evaluation noise of the very small synthetic validation sets).
    """
    results = {system: run_trainer(system, workload, num_epochs=num_epochs, **overrides)
               for system in systems}
    vanilla_history: RunHistory = results["vanilla"]["history"]
    vanilla_final = vanilla_history.final_metric()
    if workload.task.higher_is_better:
        target = vanilla_final * target_slack
    else:
        target = vanilla_final / target_slack

    rows: List[ComparisonRow] = []
    for system, result in results.items():
        history: RunHistory = result["history"]
        speedup = tta_speedup(vanilla_history, history, target) if system != "vanilla" else 0.0
        reached = history.time_to_accuracy(target) is not None
        if workload.task.higher_is_better:
            gap = history.final_metric() - vanilla_final
        else:
            gap = vanilla_final - history.final_metric()
        rows.append(ComparisonRow(
            workload=workload.name,
            system=system,
            final_metric=history.final_metric(),
            best_metric=history.best_metric(),
            target_metric=target,
            reached_target=reached,
            tta_speedup_vs_vanilla=speedup,
            simulated_time=history.total_simulated_time(),
            accuracy_gap_vs_vanilla=gap,
        ))
    return rows


def format_rows(rows: Sequence[ComparisonRow]) -> str:
    """Plain-text table of comparison rows (printed by the benches)."""
    header = f"{'workload':<24} {'system':<14} {'final':>8} {'target':>8} {'hit':>4} {'speedup':>8} {'gap':>8}"
    lines = [header, "-" * len(header)]
    for row in rows:
        speedup = "n/a" if row.tta_speedup_vs_vanilla is None else f"{row.tta_speedup_vs_vanilla:+.1%}"
        lines.append(
            f"{row.workload:<24} {row.system:<14} {row.final_metric:>8.3f} {row.target_metric:>8.3f} "
            f"{'yes' if row.reached_target else 'no':>4} {speedup:>8} {row.accuracy_gap_vs_vanilla:>+8.3f}"
        )
    return "\n".join(lines)

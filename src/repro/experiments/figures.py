"""Experiment harnesses that regenerate every table and figure of the paper.

Each ``run_*`` function reproduces one table/figure of the evaluation (or
motivation) section and returns plain dict/list data that the corresponding
benchmark under ``benchmarks/`` prints and sanity-checks.  The experiments run
on the scaled synthetic workloads of :mod:`repro.experiments.workloads`; see
EXPERIMENTS.md for the paper-vs-measured comparison.

Index
-----
* :func:`run_fig1_pwcca_convergence`  — Figure 1 (post hoc PWCCA analysis)
* :func:`run_fig2_premature_freezing` — Figure 2 (static/gradient freezing hurts)
* :func:`run_fig4_plasticity_trends`  — Figure 4 (plasticity per layer module)
* :func:`run_table1_tta`              — Table 1 (TTA speedups, 7 workloads)
* :func:`run_fig8_end_to_end`         — Figure 8 (accuracy curves vs baselines)
* :func:`run_fig9_breakdown`          — Figure 9 (BP freezing vs FP caching)
* :func:`run_fig10_distributed`       — Figure 10 (distributed throughput)
* :func:`run_multijob_cluster`        — beyond-paper: multi-job cluster scenario
* :func:`run_freezing_replay`         — beyond-paper: Egeria timeline replayed in the simulator
* :func:`run_checkpoint_overhead`     — beyond-paper: freezing-aware checkpoint byte curve
* :func:`run_fault_tolerance`         — beyond-paper: failure injection, resume vs from-scratch
* :func:`run_storage_contention`      — beyond-paper: concurrent vs staggered checkpointers on shared storage
* :func:`run_trainer_backed_job`      — beyond-paper: a real EgeriaTrainer inside the cluster simulator
* :func:`run_topology_interference`   — beyond-paper: rack-local vs cross-rack placement on per-ToR fabric
* :func:`run_trainer_fault_tolerance` — beyond-paper: TrainerJob failure injection, bit-exact resume vs restart
* :func:`run_fig11_freezing_decisions`— Figure 11 (freeze/unfreeze timeline)
* :func:`run_table2_reference_precision` — Table 2 (int8/fp16/fp32 reference)
* :func:`run_fig12_hyperparameters`   — Figure 12 (sensitivity of n, W, T)
* :func:`run_overhead_analysis`       — §6.5 (reference + cache overheads)
"""

from __future__ import annotations

import copy
import hashlib
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from .. import nn
from ..analysis import ConvergenceAnalyzer
from ..baselines import DistributedThroughputComparison
from ..ckpt import CheckpointManager, MemoryBackend
from ..core import EgeriaConfig, EgeriaTrainer, parse_layer_modules, sp_loss
from ..core.hooks import ActivationRecorder
from ..core.reference import ReferenceModel
from ..metrics.tracking import RunHistory
from ..quantization import PRECISIONS
from ..core.modules import LayerModule
from ..sim import (
    AllReduceModel,
    Cluster,
    ClusterScheduler,
    ClusterSpec,
    CostModel,
    EventDrivenEngine,
    SchedulePolicy,
    SimJob,
    TimelineSimulator,
    TrainerJob,
    paper_testbed_cluster,
    single_node_cluster,
)
from .runners import ComparisonRow, build_trainer, compare_systems, run_trainer
from .workloads import Workload, available_workloads, build_workload

__all__ = [
    "run_fig1_pwcca_convergence",
    "run_fig2_premature_freezing",
    "run_fig4_plasticity_trends",
    "run_table1_tta",
    "run_fig8_end_to_end",
    "run_fig9_breakdown",
    "run_fig10_distributed",
    "run_multijob_cluster",
    "run_freezing_replay",
    "run_checkpoint_overhead",
    "run_fault_tolerance",
    "run_storage_contention",
    "run_trainer_backed_job",
    "run_fig11_freezing_decisions",
    "run_table2_reference_precision",
    "run_fig12_hyperparameters",
    "run_overhead_analysis",
]


# --------------------------------------------------------------------------- #
# Figure 1 — post hoc PWCCA convergence analysis
# --------------------------------------------------------------------------- #
def run_fig1_pwcca_convergence(scale: str = "tiny", snapshot_every: int = 2, seed: int = 0) -> Dict[str, object]:
    """Track each layer module's PWCCA distance to the fully-trained model.

    Reproduces Figure 1's shape: front modules reach a low, stable score long
    before the deep modules do, revealing freezable regions; the theoretical
    compute saving from freezing inside them is reported (paper: ~45%).
    """
    workload = build_workload("resnet56_cifar10", scale=scale, seed=seed)
    model = workload.make_model()
    optimizer = workload.make_optimizer(model)
    scheduler = workload.make_scheduler(optimizer)
    loader = workload.train_loader()
    task = workload.task

    snapshots: Dict[int, Dict[str, np.ndarray]] = {}
    for epoch in range(workload.num_epochs):
        scheduler.step(epoch)
        loader.set_epoch(epoch)
        while True:
            batch = loader.next_batch()
            if batch is None:
                break
            loss = task.loss(task.forward(model, batch), batch)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        if epoch % snapshot_every == 0 or epoch == workload.num_epochs - 1:
            snapshots[epoch] = model.state_dict()

    # The fully-trained reference is the final model.
    final_model = workload.make_model()
    final_model.load_state_dict(model.state_dict())
    final_model.eval()

    layer_modules = parse_layer_modules(model)
    analyzer = ConvergenceAnalyzer(layer_modules, metric="pwcca")
    probe_batch = workload.train_dataset.get_batch(np.arange(min(16, len(workload.train_dataset))))
    probe_inputs = task.input_tensors(probe_batch)

    snapshot_model = workload.make_model()
    for epoch in sorted(snapshots):
        snapshot_model.load_state_dict(snapshots[epoch])
        snapshot_model.eval()
        analyzer.record(epoch, snapshot_model, final_model, probe_inputs)

    return {
        "history": analyzer.history,
        "epochs": analyzer.epochs,
        "module_names": [m.name for m in layer_modules],
        "module_params": [m.num_params for m in layer_modules],
        "freezable_regions": analyzer.module_regions(stability_threshold=0.05),
        "theoretical_saving": analyzer.estimated_saving(stability_threshold=0.05),
    }


# --------------------------------------------------------------------------- #
# Figure 2 — premature freezing hurts accuracy
# --------------------------------------------------------------------------- #
def run_fig2_premature_freezing(scale: str = "tiny", seed: int = 0) -> Dict[str, object]:
    """Compare no-freeze vs static early freezing vs gradient-metric freezing."""
    workload = build_workload("resnet56_cifar10", scale=scale, seed=seed)
    early_epoch = max(workload.num_epochs // 6, 1)
    freeze_modules = max(len(parse_layer_modules(workload.make_model())) // 2, 2)

    vanilla = run_trainer("vanilla", workload)
    static = run_trainer("static_freeze", workload, freeze_schedule={early_epoch: freeze_modules})
    gradient = run_trainer("autofreeze", workload, norm_share_threshold=0.5, patience=1)

    def curve(result):
        return result["history"].metrics()

    return {
        "epochs": list(range(workload.num_epochs)),
        "curves": {
            "no_freeze": curve(vanilla),
            "static_freeze": curve(static),
            "gradient_metric": curve(gradient),
        },
        "final": {
            "no_freeze": vanilla["final_metric"],
            "static_freeze": static["final_metric"],
            "gradient_metric": gradient["final_metric"],
        },
        "accuracy_drop": {
            "static_freeze": vanilla["final_metric"] - static["final_metric"],
            "gradient_metric": vanilla["final_metric"] - gradient["final_metric"],
        },
        "frozen_fraction": {
            "static_freeze": static["frozen_fraction"],
            "gradient_metric": gradient["frozen_fraction"],
        },
    }


# --------------------------------------------------------------------------- #
# Figure 4 — plasticity of layer modules during training
# --------------------------------------------------------------------------- #
def run_fig4_plasticity_trends(scale: str = "tiny", reference_fraction: float = 0.4,
                               seed: int = 0) -> Dict[str, object]:
    """Measure SP-loss plasticity of each module against a partially-trained reference.

    Mirrors the paper's validation experiment: the reference is the model
    trained for only ``reference_fraction`` of the epochs; the front modules'
    plasticity drops quickly and stays low while deep modules keep moving.
    """
    workload = build_workload("resnet56_cifar10", scale=scale, seed=seed)
    model = workload.make_model()
    optimizer = workload.make_optimizer(model)
    scheduler = workload.make_scheduler(optimizer)
    loader = workload.train_loader()
    task = workload.task
    layer_modules = parse_layer_modules(model)
    analyzer = ConvergenceAnalyzer(layer_modules, metric="sp")

    reference_epoch = max(int(workload.num_epochs * reference_fraction), 1)
    reference_model: Optional[nn.Module] = None
    probe_batch = workload.train_dataset.get_batch(np.arange(min(16, len(workload.train_dataset))))
    probe_inputs = task.input_tensors(probe_batch)
    accuracy_curve: List[float] = []
    eval_loader = workload.eval_loader()

    for epoch in range(workload.num_epochs):
        scheduler.step(epoch)
        loader.set_epoch(epoch)
        while True:
            batch = loader.next_batch()
            if batch is None:
                break
            loss = task.loss(task.forward(model, batch), batch)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        if epoch == reference_epoch:
            reference_model = workload.make_model()
            reference_model.load_state_dict(model.state_dict())
            reference_model.eval()
        if reference_model is not None:
            analyzer.record(epoch, model, reference_model, probe_inputs)
        accuracy_curve.append(task.evaluate(model, iter(eval_loader)))

    return {
        "plasticity": analyzer.history,
        "epochs": analyzer.epochs,
        "accuracy": accuracy_curve,
        "module_names": [m.name for m in layer_modules],
        "reference_epoch": reference_epoch,
    }


# --------------------------------------------------------------------------- #
# Table 1 — TTA speedups across the seven workloads
# --------------------------------------------------------------------------- #
def run_table1_tta(scale: str = "tiny", workload_names: Optional[Sequence[str]] = None,
                   seed: int = 0) -> List[Dict[str, object]]:
    """Vanilla-vs-Egeria TTA comparison for the requested workloads."""
    names = list(workload_names or available_workloads())
    rows: List[Dict[str, object]] = []
    for name in names:
        workload = build_workload(name, scale=scale, seed=seed)
        comparison = compare_systems(workload, systems=("vanilla", "egeria"))
        egeria_row = next(r for r in comparison if r.system == "egeria")
        vanilla_row = next(r for r in comparison if r.system == "vanilla")
        rows.append({
            "workload": name,
            "paper_model": workload.paper_model,
            "paper_tta_speedup": workload.paper_tta_speedup,
            "measured_tta_speedup": egeria_row.tta_speedup_vs_vanilla,
            "vanilla_final": vanilla_row.final_metric,
            "egeria_final": egeria_row.final_metric,
            "egeria_reached_target": egeria_row.reached_target,
            "accuracy_gap": egeria_row.accuracy_gap_vs_vanilla,
            "metric": workload.task.metric_name,
        })
    return rows


# --------------------------------------------------------------------------- #
# Figure 8 — end-to-end accuracy curves vs freezing baselines
# --------------------------------------------------------------------------- #
def run_fig8_end_to_end(scale: str = "tiny", workload_name: str = "resnet50_imagenet",
                        seed: int = 0) -> Dict[str, object]:
    """Accuracy-vs-epoch curves for Baseline / Egeria / AutoFreeze / Skip-Conv."""
    workload = build_workload(workload_name, scale=scale, seed=seed)
    systems = ("vanilla", "egeria", "autofreeze", "skipconv")
    results: Dict[str, Dict[str, object]] = {}
    for system in systems:
        overrides = {"norm_share_threshold": 0.5, "patience": 1} if system == "autofreeze" else {}
        results[system] = run_trainer(system, workload, **overrides)

    vanilla_history: RunHistory = results["vanilla"]["history"]
    vanilla_final = vanilla_history.final_metric()
    target = vanilla_final * 0.98 if workload.task.higher_is_better else vanilla_final / 0.98

    rows: List[Dict[str, object]] = []
    for system, result in results.items():
        history: RunHistory = result["history"]
        if workload.task.higher_is_better:
            gap = history.final_metric() - vanilla_final
        else:
            gap = vanilla_final - history.final_metric()
        rows.append({
            "system": system,
            "final_metric": history.final_metric(),
            "target_metric": target,
            "reached_target": history.time_to_accuracy(target) is not None,
            "accuracy_gap_vs_vanilla": gap,
            "frozen_fraction": result["frozen_fraction"],
            "simulated_time": result["simulated_time"],
        })
    return {
        "workload": workload_name,
        "metric": workload.task.metric_name,
        "higher_is_better": workload.task.higher_is_better,
        "curves": {system: results[system]["history"].metrics() for system in systems},
        "rows": rows,
    }


# --------------------------------------------------------------------------- #
# Figure 9 — performance breakdown: BP freezing vs FP caching
# --------------------------------------------------------------------------- #
def run_fig9_breakdown(workload_names: Optional[Sequence[str]] = None, scale: str = "tiny",
                       frozen_fraction: float = 0.4, seed: int = 0) -> List[Dict[str, float]]:
    """Iteration-time reduction from layer freezing alone vs freezing + FP caching.

    Drives the discrete-event engine with the first modules (up to
    ``frozen_fraction`` of parameters) frozen — the regime Egeria reaches in
    the later training stages — and reports normalised iteration times
    (baseline = 1.0), mirroring the bar groups of Figure 9.  Each row also
    records the worst-case relative deviation of the closed-form
    :class:`CostModel` fast path from the engine, the contract that keeps the
    fast path trustworthy (asserted < 5% by the benchmark).
    """
    names = list(workload_names or ["resnet50_imagenet", "mobilenet_v2_cifar10",
                                    "transformer_base_wmt16", "bert_squad"])
    engine = EventDrivenEngine()
    rows: List[Dict[str, float]] = []
    for name in names:
        workload = build_workload(name, scale=scale, seed=seed)
        model = workload.make_model()
        layer_modules = parse_layer_modules(model)
        cost_model = CostModel(layer_modules, batch_size=workload.batch_size)
        total_params = sum(m.num_params for m in layer_modules)
        prefix, running = 0, 0
        for module in layer_modules:
            if running + module.num_params > total_params * frozen_fraction:
                break
            running += module.num_params
            prefix += 1
        baseline = engine.simulate_iteration(cost_model, frozen_prefix=0, cached_fp=False,
                                             include_reference_overhead=False).total
        freeze_only = engine.simulate_iteration(cost_model, frozen_prefix=prefix, cached_fp=False,
                                                include_reference_overhead=True).total
        freeze_cache = engine.simulate_iteration(cost_model, frozen_prefix=prefix, cached_fp=True,
                                                 include_reference_overhead=True).total
        deviation = max(
            engine.closed_form_deviation(cost_model, 0, False, include_reference_overhead=False),
            engine.closed_form_deviation(cost_model, prefix, False),
            engine.closed_form_deviation(cost_model, prefix, True),
        )
        rows.append({
            "workload": name,
            "frozen_modules": prefix,
            "baseline": 1.0,
            "freezing_only": freeze_only / baseline if baseline else 1.0,
            "freezing_plus_caching": freeze_cache / baseline if baseline else 1.0,
            "fp_caching_extra_saving": (freeze_only - freeze_cache) / baseline if baseline else 0.0,
            "closed_form_deviation": deviation,
        })
    return rows


# --------------------------------------------------------------------------- #
# Figure 10 — distributed training throughput
# --------------------------------------------------------------------------- #
def run_fig10_distributed(workload_name: str = "resnet50_imagenet", scale: str = "tiny",
                          machine_counts: Sequence[int] = (2, 3, 4, 5), frozen_fraction: float = 0.4,
                          seed: int = 0) -> Dict[str, object]:
    """Throughput of vanilla / ByteScheduler / Egeria / Egeria+BS at 2–5 nodes."""
    workload = build_workload(workload_name, scale=scale, seed=seed)
    model = workload.make_model()
    layer_modules = parse_layer_modules(model)
    total_params = sum(m.num_params for m in layer_modules)
    prefix, running = 0, 0
    for module in layer_modules:
        if running + module.num_params > total_params * frozen_fraction:
            break
        running += module.num_params
        prefix += 1
    comparison = DistributedThroughputComparison(layer_modules, batch_size=workload.batch_size,
                                                 cluster=paper_testbed_cluster(), backend="event")
    rows = comparison.scaling_sweep(machine_counts, gpus_per_machine=2, frozen_prefix=prefix, cached_fp=True)
    return {
        "workload": workload_name,
        "frozen_prefix": prefix,
        "rows": rows,
        "policies": list(SchedulePolicy.ALL),
    }


# --------------------------------------------------------------------------- #
# Beyond the paper — multi-job cluster scenario on the event-driven engine
# --------------------------------------------------------------------------- #
def run_multijob_cluster(workload_name: str = "resnet50_imagenet", scale: str = "tiny",
                         iterations: int = 25, placement: str = "round_robin",
                         straggler_gpu: str = "node0:gpu0", straggler_speed: float = 0.6,
                         frozen_fraction: float = 0.4, seed: int = 0) -> Dict[str, object]:
    """Several training jobs sharing the paper's testbed, with a straggler.

    An Egeria job (frozen prefix + cached FP) and a vanilla job train
    concurrently on the 5-machine cluster; a third job arrives immediately
    but must queue until GPUs free up, and the vanilla job loses two workers
    mid-run (elastic leave).  One GPU is a straggler, which gates every
    all-reduce of the job placed on it.  Returns a plain-data dict that is
    bit-for-bit deterministic for a fixed seed — the property the multi-job
    benchmark asserts by running it twice.
    """
    workload = build_workload(workload_name, scale=scale, seed=seed)
    layer_modules = parse_layer_modules(workload.make_model())
    cost_model = CostModel(layer_modules, batch_size=workload.batch_size)
    total_params = sum(m.num_params for m in layer_modules)
    prefix, running = 0, 0
    for module in layer_modules:
        if running + module.num_params > total_params * frozen_fraction:
            break
        running += module.num_params
        prefix += 1

    cluster = paper_testbed_cluster()
    scheduler = ClusterScheduler(cluster, placement=placement, seed=seed)
    scheduler.set_gpu_speed(straggler_gpu, straggler_speed, at_time=0.0)
    scheduler.submit(SimJob("egeria", cost_model, num_workers=4, iterations=iterations,
                            policy=SchedulePolicy.EGERIA, frozen_prefix=prefix, cached_fp=True,
                            include_reference_overhead=True))
    scheduler.submit(SimJob("vanilla", cost_model, num_workers=4, iterations=iterations,
                            policy=SchedulePolicy.VANILLA))
    scheduler.submit(SimJob("queued", cost_model, num_workers=4, iterations=max(iterations // 2, 1),
                            policy=SchedulePolicy.VANILLA))
    # Elastic leave: the vanilla job gives up two workers partway through.
    first_iteration = scheduler.engine.simulate_iteration(cost_model, workers=cluster.workers(2, 2)).total
    scheduler.resize_job("vanilla", -2, at_time=first_iteration * (iterations // 2))
    result = scheduler.run()
    return {
        "workload": workload_name,
        "frozen_prefix": prefix,
        "placement": placement,
        "straggler": {"gpu": straggler_gpu, "speed": straggler_speed},
        "result": result.as_dict(),
    }


# --------------------------------------------------------------------------- #
# Beyond the paper — Egeria freezing timeline replayed through the simulator
# --------------------------------------------------------------------------- #
def run_freezing_replay(workload_name: str = "resnet56_cifar10", scale: str = "tiny",
                        num_workers: int = 4, seed: int = 0) -> Dict[str, object]:
    """Replay a real Egeria freezing timeline inside the cluster simulator.

    Trains the workload with Egeria, converts its freeze/unfreeze events into
    a ``iteration -> frozen_prefix`` step function, and feeds that callable to
    :attr:`SimJob.frozen_prefix` — so the simulated job's iterations shorten
    mid-run exactly when the real run froze modules, the cluster-level view
    of Figure 11.
    """
    workload = build_workload(workload_name, scale=scale, seed=seed)
    egeria = run_trainer("egeria", workload)
    timeline = egeria["timeline"]
    total_iterations = int(egeria["summary"]["iteration"])

    # Freeze events advance the prefix front-to-back; an unfreeze resets it.
    steps: List[tuple] = [(0, 0)]
    for event in timeline:
        if event["action"] in ("freeze", "refreeze"):
            prefix = int(event["module_index"]) + 1
        else:
            prefix = 0
        steps.append((int(event["iteration"]), prefix))

    def prefix_at(iteration: int) -> int:
        prefix = 0
        for start, value in steps:
            if iteration >= start:
                prefix = value
            else:
                break
        return prefix

    layer_modules = parse_layer_modules(workload.make_model())
    cost_model = CostModel(layer_modules, batch_size=workload.batch_size)
    cluster = paper_testbed_cluster()
    scheduler = ClusterScheduler(cluster, placement="fifo", seed=seed)
    scheduler.submit(SimJob("egeria_replay", cost_model, num_workers=num_workers,
                            iterations=total_iterations, policy=SchedulePolicy.EGERIA,
                            frozen_prefix=prefix_at, cached_fp=True,
                            include_reference_overhead=True))
    result = scheduler.run()
    record = result.jobs["egeria_replay"]
    return {
        "workload": workload_name,
        "total_iterations": total_iterations,
        "num_freeze_events": sum(1 for e in timeline if e["action"] in ("freeze", "refreeze")),
        "prefix_series": [prefix_at(i) for i in range(total_iterations)],
        "iteration_seconds": list(record.iteration_seconds),
        "makespan": result.makespan,
    }


# --------------------------------------------------------------------------- #
# Beyond the paper — freezing-aware checkpoint overhead curve (next to Fig. 9)
# --------------------------------------------------------------------------- #
def run_checkpoint_overhead(workload_name: str = "resnet56_cifar10", scale: str = "tiny",
                            seed: int = 0) -> Dict[str, object]:
    """Per-checkpoint write volume of an Egeria run, one checkpoint per epoch.

    The storage analogue of the Figure 9 iteration-time breakdown: tensors
    are content-addressed, the frozen prefix is immutable between freeze
    events, so the ``model``/``optimizer`` bytes each checkpoint writes fall
    as the prefix advances.  Rows carry the total and the per-section bytes
    (the quantized reference snapshot rewrites on its own update cadence).
    """
    workload = build_workload(workload_name, scale=scale, seed=seed)
    manager = CheckpointManager(MemoryBackend())
    result = run_trainer("egeria", workload, checkpoint_manager=manager, checkpoint_every=1)
    rows: List[Dict[str, object]] = []
    for info in result["checkpoints"]:
        sections = info.get("bytes_written_by_section", {})
        rows.append({
            "step": info["step"],
            "epoch": info["meta"]["epoch"],
            "frozen_prefix": info["meta"]["frozen_prefix"],
            "frozen_fraction": info["meta"]["frozen_fraction"],
            "bytes_written": info["bytes_written"],
            "payload_bytes": info["payload_bytes"],
            "model_state_bytes": sections.get("model", 0) + sections.get("optimizer", 0),
            "reference_bytes": sections.get("egeria", 0),
        })
    return {
        "workload": workload_name,
        "rows": rows,
        "timeline": result["timeline"],
        "full_payload_bytes": rows[0]["payload_bytes"] if rows else 0,
    }


# --------------------------------------------------------------------------- #
# Beyond the paper — failure injection: resume-from-checkpoint vs from-scratch
# --------------------------------------------------------------------------- #
def run_fault_tolerance(workload_name: str = "resnet50_imagenet", scale: str = "tiny",
                        iterations: int = 30, checkpoint_every: int = 5,
                        fail_gpu: str = "node0:gpu0", fail_after_fraction: float = 0.6,
                        frozen_fraction: float = 0.4, seed: int = 0) -> Dict[str, object]:
    """Deterministic failure-injection scenario, with and without checkpoints.

    One 4-worker job trains on the paper's testbed; ``fail_gpu`` dies after
    ~``fail_after_fraction`` of the run.  With ``checkpoint_every`` set the
    job restarts from its last incremental checkpoint (restore read charged
    as link-bytes); without, it restarts from scratch.  Returns both runs'
    records so the benchmark can assert the makespan win.
    """
    workload = build_workload(workload_name, scale=scale, seed=seed)
    layer_modules = parse_layer_modules(workload.make_model())
    cost_model = CostModel(layer_modules, batch_size=workload.batch_size)
    total_params = sum(m.num_params for m in layer_modules)
    prefix, running = 0, 0
    for module in layer_modules:
        if running + module.num_params > total_params * frozen_fraction:
            break
        running += module.num_params
        prefix += 1

    def scenario(ckpt_every: Optional[int]) -> Dict[str, object]:
        cluster = paper_testbed_cluster()
        scheduler = ClusterScheduler(cluster, placement="fifo", seed=seed)
        scheduler.submit(SimJob("job", cost_model, num_workers=4, iterations=iterations,
                                policy=SchedulePolicy.EGERIA, frozen_prefix=prefix,
                                cached_fp=True, include_reference_overhead=True,
                                checkpoint_every=ckpt_every))
        nominal = scheduler.engine.simulate_iteration(
            cost_model, workers=cluster.workers(2, 2), frozen_prefix=prefix, cached_fp=True,
            include_reference_overhead=True).total
        scheduler.inject_failure(fail_gpu, at_time=nominal * iterations * fail_after_fraction)
        return scheduler.run().as_dict()

    with_checkpoint = scenario(checkpoint_every)
    from_scratch = scenario(None)
    return {
        "workload": workload_name,
        "iterations": iterations,
        "checkpoint_every": checkpoint_every,
        "frozen_prefix": prefix,
        "fail_gpu": fail_gpu,
        "with_checkpoint": with_checkpoint,
        "from_scratch": from_scratch,
        "makespan_saving": (from_scratch["makespan"] - with_checkpoint["makespan"])
                           / from_scratch["makespan"] if from_scratch["makespan"] else 0.0,
    }


# --------------------------------------------------------------------------- #
# Beyond the paper — storage contention: concurrent vs staggered checkpointers
# --------------------------------------------------------------------------- #
def run_storage_contention(workload_name: str = "resnet50_imagenet", scale: str = "tiny",
                           iterations: int = 12, checkpoint_every: int = 2,
                           num_workers: int = 2, seed: int = 0) -> Dict[str, object]:
    """Two identical checkpointing jobs sharing one storage resource.

    Three deterministic variants of the same two-job scenario:

    * **concurrent** — both jobs arrive at t=0, so every periodic checkpoint
      hits the shared storage target at the same instant and the second
      writer queues behind the first;
    * **staggered** — the second job arrives one iteration later, so the
      writes interleave without overlapping and nobody waits;
    * **concurrent_async** — the concurrent arrival pattern with overlapped
      (async) checkpoint writes: compute is released at the iteration
      boundary while the snapshot drains in the background.

    Each job is confined to a single machine (``num_workers`` ≤ the
    per-machine GPU count with FIFO packing), so the *only* shared resource
    in play is the storage target — the cleanest demonstration that resource
    queues, not fudge factors, produce the contention.
    """
    workload = build_workload(workload_name, scale=scale, seed=seed)
    layer_modules = parse_layer_modules(workload.make_model())
    cost_model = CostModel(layer_modules, batch_size=workload.batch_size)

    def scenario(stagger: float, asynchronous: bool) -> Dict[str, object]:
        scheduler = ClusterScheduler(paper_testbed_cluster(), placement="fifo", seed=seed)
        for name, arrival in (("a", 0.0), ("b", stagger)):
            scheduler.submit(SimJob(name, cost_model, num_workers=num_workers,
                                    iterations=iterations, checkpoint_every=checkpoint_every,
                                    async_checkpoint=asynchronous, arrival_time=arrival))
        return scheduler.run().as_dict()

    concurrent = scenario(0.0, asynchronous=False)
    # Stagger by one steady-state iteration: checkpoints then interleave
    # instead of colliding.
    stagger = concurrent["jobs"]["a"]["mean_iteration_seconds"]
    staggered = scenario(stagger, asynchronous=False)
    concurrent_async = scenario(0.0, asynchronous=True)
    return {
        "workload": workload_name,
        "iterations": iterations,
        "checkpoint_every": checkpoint_every,
        "stagger_seconds": stagger,
        "concurrent": concurrent,
        "staggered": staggered,
        "concurrent_async": concurrent_async,
        "storage_resource": Cluster.CKPT_STORAGE,
    }


# --------------------------------------------------------------------------- #
# Beyond the paper — a real EgeriaTrainer driving a simulated cluster job
# --------------------------------------------------------------------------- #
def run_trainer_backed_job(workload_name: str = "resnet56_cifar10", scale: str = "tiny",
                           num_workers: int = 4, checkpoint_every: Optional[int] = None,
                           seed: int = 0) -> Dict[str, object]:
    """Run a live Egeria trainer as a cluster job through the scheduler.

    The :class:`TrainerJob` adapter executes one real training iteration per
    simulated iteration: the trainer's live freezing decisions set the frozen
    prefix the engine prices, and every periodic checkpoint is an actual
    content-addressed :class:`~repro.ckpt.CheckpointManager` snapshot whose
    *incremental* ``bytes_written`` — not the ``CKPT_STATE_MULTIPLIER``
    estimate — is what the shared storage resource is charged with.  A
    vanilla synthetic job shares the cluster so the trainer-backed job also
    contends for the fabric.  Deterministic for a fixed seed.
    """
    workload = build_workload(workload_name, scale=scale, seed=seed)
    trainer = build_trainer("egeria", workload)
    manager = CheckpointManager(MemoryBackend())
    trainer.configure_checkpointing(manager, checkpoint_every=1)
    iterations_per_epoch = len(trainer.train_loader)
    iterations = iterations_per_epoch * workload.num_epochs
    checkpoint_every = checkpoint_every or max(iterations_per_epoch // 2, 1)

    job = TrainerJob("trainer", trainer, iterations=iterations, num_workers=num_workers,
                     policy=SchedulePolicy.EGERIA, checkpoint_every=checkpoint_every)
    scheduler = ClusterScheduler(paper_testbed_cluster(), placement="round_robin", seed=seed)
    scheduler.submit(job)
    scheduler.submit(SimJob("companion", job.cost_model, num_workers=num_workers,
                            iterations=max(iterations // 2, 1),
                            policy=SchedulePolicy.VANILLA))
    result = scheduler.run()
    record = result.jobs["trainer"]
    summary = {
        "workload": workload_name,
        "iterations": iterations,
        "checkpoint_every": checkpoint_every,
        "result": result.as_dict(),
        "prefix_series": list(job.prefix_series),
        "max_frozen_prefix": max(job.prefix_series) if job.prefix_series else 0,
        "num_checkpoints": len(job.checkpoint_infos),
        "simulated_checkpoint_bytes": record.checkpoint_bytes_written,
        "actual_checkpoint_bytes": sum(info["bytes_written"] for info in manager.history()),
        "actual_payload_bytes": [info["payload_bytes"] for info in manager.history()],
        "final_frozen_fraction": trainer.frozen_fraction(),
    }
    trainer.close()
    return summary


# --------------------------------------------------------------------------- #
# Beyond the paper — per-ToR fabric: placement locality changes interference
# --------------------------------------------------------------------------- #
def run_topology_interference(iterations: int = 4, num_workers: int = 4,
                              module_params: Sequence[int] = (400_000, 800_000, 600_000),
                              batch_size: int = 4, seed: int = 0,
                              policies: Sequence[str] = ("fifo", "fair")) -> Dict[str, object]:
    """Rack-local vs cross-rack placement of two jobs on a per-ToR fabric.

    A 4-machine, 2-rack cluster declares per-ToR uplink resources plus a
    core fabric (``ClusterSpec.per_tor_fabric``), with NIC and uplink speeds
    equal so rack-local and cross-rack rings have identical *uncontended*
    all-reduce cost — any completion-time difference between placements is
    pure shared-resource interference.  Two comm-heavy jobs run under each
    scheduling discipline (``fifo`` first-fit serialization, ``fair``
    processor sharing) in two placements:

    * ``tor_pack`` — each job packs into its own rack, queueing only on its
      own ToR's uplink (disjoint resources: no cross-job interference, and
      the core carries zero bytes);
    * ``round_robin`` — both jobs interleave across both racks, sharing both
      uplinks *and* the core.

    Deterministic for fixed inputs; the benchmark asserts rack-local
    placement beats cross-rack under every discipline and that the
    discipline never changes per-link byte totals, only their timing.
    """
    cost_model = CostModel(
        [LayerModule(name=f"m{i}", paths=[], blocks=[], num_params=int(params), index=i)
         for i, params in enumerate(module_params)],
        batch_size=batch_size)
    variants: Dict[str, Dict[str, object]] = {}
    for policy in policies:
        for placement in ("tor_pack", "round_robin"):
            cluster = Cluster(ClusterSpec(num_machines=4, gpus_per_machine=2,
                                          num_tor_switches=2, nic_gbps=1.0,
                                          tor_uplink_gbps=1.0, per_tor_fabric=True,
                                          fabric_policy=policy))
            scheduler = ClusterScheduler(cluster, placement=placement, seed=seed)
            for name in ("a", "b"):
                scheduler.submit(SimJob(name, cost_model, num_workers=num_workers,
                                        iterations=iterations))
            variants[f"{policy}/{placement}"] = scheduler.run().as_dict()
    return {
        "iterations": iterations,
        "num_workers": num_workers,
        "policies": list(policies),
        "core_resource": Cluster.CORE,
        "variants": variants,
    }


# --------------------------------------------------------------------------- #
# Beyond the paper — trainer-backed fault injection: bit-exact resume
# --------------------------------------------------------------------------- #
def _model_digest(model) -> str:
    """Order-independent SHA-256 digest of a model's full parameter state."""
    digest = hashlib.sha256()
    state = model.state_dict()
    for key in sorted(state):
        digest.update(key.encode("utf-8"))
        digest.update(np.ascontiguousarray(state[key]).tobytes())
    return digest.hexdigest()


def run_trainer_fault_tolerance(workload_name: str = "resnet56_cifar10", scale: str = "tiny",
                                num_workers: int = 2, checkpoint_every: Optional[int] = None,
                                fail_gpu: str = "node0:gpu0",
                                fail_after_fraction: float = 0.45,
                                seed: int = 0) -> Dict[str, object]:
    """Failure injection against a **live trainer** running in the scheduler.

    Three variants of the same :class:`TrainerJob` scenario — the ROADMAP's
    outstanding trainer-backed fault-injection benchmark:

    * ``clean`` — the reference run, no failure;
    * ``resumed`` — ``fail_gpu`` dies mid-run; the job rolls back to its
      last *real* checkpoint (the live trainer restores bit-exactly and the
      data loader re-seeks), pays the restore read on shared storage, and
      replays the lost iterations;
    * ``scratch`` — the same failure without periodic checkpoints: the
      job's simulated progress restarts from zero.

    Returns the three scheduler records plus SHA-256 digests of each run's
    final model state.  The benchmark asserts the recovery contract:
    ``resumed`` reproduces ``clean``'s weights exactly (rollback is
    bit-exact, not merely approximate) while finishing earlier than
    ``scratch``.
    """
    def scenario(fail: bool, with_checkpoints: bool) -> Dict[str, object]:
        workload = build_workload(workload_name, scale=scale, seed=seed)
        trainer = build_trainer("egeria", workload)
        manager = None
        if with_checkpoints:
            manager = CheckpointManager(MemoryBackend())
            trainer.configure_checkpointing(manager, checkpoint_every=1)
        per_epoch = len(trainer.train_loader)
        iterations = per_epoch * workload.num_epochs
        every = checkpoint_every or max(per_epoch // 2, 1)
        job = TrainerJob("trainer", trainer, iterations=iterations, num_workers=num_workers,
                         policy=SchedulePolicy.EGERIA,
                         checkpoint_every=every if with_checkpoints else None)
        cluster = paper_testbed_cluster()
        scheduler = ClusterScheduler(cluster, placement="fifo", seed=seed)
        scheduler.submit(job)
        if fail:
            nominal = EventDrivenEngine(paper_testbed_cluster()).simulate_iteration(
                trainer.cost_model, workers=cluster.workers(1, num_workers)).total
            scheduler.inject_failure(fail_gpu,
                                     at_time=nominal * iterations * fail_after_fraction)
        result = scheduler.run()
        summary = {
            "iterations": iterations,
            "checkpoint_every": every if with_checkpoints else None,
            "result": result.as_dict(),
            "model_digest": _model_digest(trainer.model),
            "trainer_iteration": trainer.iteration,
            "num_checkpoints": len(job.checkpoint_infos),
        }
        trainer.close()
        return summary

    clean = scenario(fail=False, with_checkpoints=True)
    resumed = scenario(fail=True, with_checkpoints=True)
    scratch = scenario(fail=True, with_checkpoints=False)
    return {
        "workload": workload_name,
        "clean": clean,
        "resumed": resumed,
        "scratch": scratch,
        "bit_exact_resume": clean["model_digest"] == resumed["model_digest"],
        "makespan_saving": (scratch["result"]["makespan"] - resumed["result"]["makespan"])
                           / scratch["result"]["makespan"]
                           if scratch["result"]["makespan"] else 0.0,
    }


# --------------------------------------------------------------------------- #
# Figure 11 — freezing/unfreezing decision timeline
# --------------------------------------------------------------------------- #
def run_fig11_freezing_decisions(scale: str = "tiny", seed: int = 0) -> Dict[str, object]:
    """Active-parameter-fraction timeline of an Egeria ResNet run."""
    workload = build_workload("resnet56_cifar10", scale=scale, seed=seed)
    result = run_trainer("egeria", workload)
    history: RunHistory = result["history"]
    return {
        "workload": workload.name,
        "timeline": result["timeline"],
        "active_fraction_per_epoch": [1.0 - f for f in history.frozen_fractions()],
        "module_sizes": {m.name: m.num_params
                         for m in parse_layer_modules(workload.make_model())},
        "final_metric": result["final_metric"],
        "summary": result["summary"],
    }


# --------------------------------------------------------------------------- #
# Table 2 — reference-model precision sensitivity
# --------------------------------------------------------------------------- #
def run_table2_reference_precision(scale: str = "tiny", precisions: Sequence[str] = ("int8", "float16", "float32"),
                                   seed: int = 0) -> List[Dict[str, object]]:
    """Final accuracy / CPU speed / reference accuracy gap per reference precision."""
    workload = build_workload("resnet56_cifar10", scale=scale, seed=seed)
    base_result = run_trainer("vanilla", workload)

    rows: List[Dict[str, object]] = []
    for precision in precisions:
        result = run_trainer("egeria", workload, reference_precision=precision)
        reference_gap = _reference_accuracy_gap(workload, precision)
        rows.append({
            "precision": precision,
            "final_accuracy": result["final_metric"],
            "cpu_inference_speedup": PRECISIONS[precision].cpu_speedup,
            "reference_accuracy_gap": reference_gap,
            "memory_ratio": PRECISIONS[precision].memory_ratio,
            "vanilla_final": base_result["final_metric"],
        })
    return rows


def _reference_accuracy_gap(workload: Workload, precision: str) -> float:
    """Accuracy drop of a quantized snapshot relative to its float32 original."""
    model = workload.make_model()
    optimizer = workload.make_optimizer(model)
    loader = workload.train_loader()
    task = workload.task
    # Train briefly so the snapshot is meaningful.
    for epoch in range(max(workload.num_epochs // 3, 2)):
        loader.set_epoch(epoch)
        while True:
            batch = loader.next_batch()
            if batch is None:
                break
            loss = task.loss(task.forward(model, batch), batch)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
    eval_loader = workload.eval_loader()
    fp32_accuracy = task.evaluate(model, iter(eval_loader))
    reference = ReferenceModel(workload.model_factory, precision=precision)
    reference.generate(model)
    quant_accuracy = task.evaluate(reference.model, iter(workload.eval_loader()))
    return fp32_accuracy - quant_accuracy


# --------------------------------------------------------------------------- #
# Figure 12 — hyperparameter sensitivity
# --------------------------------------------------------------------------- #
def run_fig12_hyperparameters(scale: str = "tiny", seed: int = 0) -> List[Dict[str, object]]:
    """Sweep W, n and T around the guideline values (Figure 12)."""
    workload = build_workload("resnet56_cifar10", scale=scale, seed=seed)
    chosen = workload.egeria_config
    variants = {
        "chosen": {},
        "n_doubled": {"eval_interval_iters": chosen.eval_interval_iters * 2},
        "n_halved": {"eval_interval_iters": max(chosen.eval_interval_iters // 2, 1)},
        "W_doubled": {"freeze_window": chosen.freeze_window * 2},
        "W_halved": {"freeze_window": max(chosen.freeze_window // 2, 1)},
        "T_doubled": {"tolerance_coefficient": min(chosen.tolerance_coefficient * 2, 0.9),
                      "relative_slope_floor": min(chosen.relative_slope_floor * 2, 0.9)},
        "T_halved": {"tolerance_coefficient": chosen.tolerance_coefficient / 2,
                     "relative_slope_floor": chosen.relative_slope_floor / 2},
    }
    vanilla = run_trainer("vanilla", workload)
    target = vanilla["final_metric"] * 0.98
    rows: List[Dict[str, object]] = []
    for label, overrides in variants.items():
        result = run_trainer("egeria", workload, **overrides)
        history: RunHistory = result["history"]
        rows.append({
            "variant": label,
            "overrides": overrides,
            "final_metric": result["final_metric"],
            "simulated_time": result["simulated_time"],
            "frozen_fraction": result["frozen_fraction"],
            "time_to_target": history.time_to_accuracy(target),
        })
    return rows


# --------------------------------------------------------------------------- #
# §6.5 — system overhead analysis
# --------------------------------------------------------------------------- #
def run_overhead_analysis(scale: str = "tiny", seed: int = 0) -> Dict[str, object]:
    """Reference-model generation/update cost and activation-cache storage ratio."""
    workload = build_workload("resnet56_cifar10", scale=scale, seed=seed)
    result = run_trainer("egeria", workload)
    summary = result["summary"]
    reference_stats = summary["controller"]["reference_stats"]
    cache_stats = summary["cache"]

    model = workload.make_model()
    layer_modules = parse_layer_modules(model)
    cost_model = CostModel(layer_modules, batch_size=workload.batch_size)
    input_bytes = workload.train_dataset.input_nbytes_per_sample()
    # Activation bytes at the tail of the first module for one sample.
    probe = workload.train_dataset.get_batch(np.arange(1))
    with ActivationRecorder(model, [layer_modules[0].tail_path]) as recorder:
        with nn.no_grad():
            model(*workload.task.input_tensors(probe))
        activation = recorder.get(layer_modules[0].tail_path)
    activation_bytes = int(activation[0].size * 4) if activation is not None else 0

    generations = max(reference_stats["generations"] + reference_stats["updates"], 1)
    return {
        "reference_generation_seconds_mean": reference_stats["total_generation_seconds"] / generations,
        "reference_forward_passes": reference_stats["forward_passes"],
        "reference_time_fraction_of_training": (
            reference_stats["total_forward_seconds"] / max(result["wall_time"], 1e-9)
        ),
        "reference_overhead_fraction_model": cost_model.reference_overhead_fraction,
        "cache_bytes_written": cache_stats["bytes_written"],
        "cache_hit_rate": cache_stats["hit_rate"],
        "activation_to_input_ratio": activation_bytes / input_bytes if input_bytes else 0.0,
        "fp_fraction_of_iteration": cost_model.fp_fraction(),
    }

"""Reproduction of *Egeria: Efficient DNN Training with Knowledge-Guided Layer
Freezing* (EuroSys 2023).

Top-level packages:

* :mod:`repro.nn` -- numpy-backed autograd/NN substrate (tensors, modules,
  hooks, layers, blocks, losses);
* :mod:`repro.optim` -- SGD/Adam and the paper's LR schedules;
* :mod:`repro.models` -- the seven evaluation models (ResNet-50/56,
  MobileNetV2, DeepLabv3, Transformer-Base/Tiny, BERT) scaled for CPU;
* :mod:`repro.data` -- synthetic datasets, look-ahead data loader, stateless
  augmentation;
* :mod:`repro.quantization` -- int8/int4/fp16 post-training quantization;
* :mod:`repro.core` -- Egeria itself: plasticity, reference model, freezing
  engine, controller/worker, activation cache, trainers;
* :mod:`repro.baselines` -- vanilla training, static/gradient (AutoFreeze-style)
  freezing, Skip-Conv metric, FreezeOut and ByteScheduler models;
* :mod:`repro.analysis` -- PWCCA/SVCCA post hoc convergence analysis;
* :mod:`repro.sim` -- cost model, cluster topology, all-reduce and schedules;
* :mod:`repro.ckpt` -- freezing-aware incremental checkpointing and
  fault-tolerance storage backends;
* :mod:`repro.metrics` -- accuracy metrics and time-to-accuracy tracking.
"""

__version__ = "1.0.0"

__all__ = [
    "nn",
    "optim",
    "models",
    "data",
    "quantization",
    "core",
    "baselines",
    "analysis",
    "sim",
    "ckpt",
    "metrics",
]

"""Trainer-backed cluster jobs: a real trainer driving a simulated job.

Everything else in :mod:`repro.sim` prices *synthetic* jobs — a frozen-prefix
schedule and a byte estimate stand in for real training.  :class:`TrainerJob`
closes the loop: it wraps a live :class:`~repro.core.trainer.BaseTrainer` /
:class:`~repro.core.trainer.EgeriaTrainer` and advances it one *real*
iteration per simulated iteration, so

* the trainer's live freezing decisions (bootstrapping stage, plasticity
  evaluations, LR-drop unfreezes) set the frozen prefix and cached-FP mode
  the engine prices each simulated iteration with;
* checkpoints are *actual* :class:`~repro.ckpt.CheckpointManager` snapshots:
  the bytes charged to the shared storage resource are the content-addressed
  incremental ``bytes_written`` the manager really persisted — not the
  ``CKPT_STATE_MULTIPLIER`` estimate — and a restore reads back the
  snapshot's true ``payload_bytes``;
* a rollback after failure/preemption restores the trainer bit-exactly from
  the matching checkpoint and re-seeks the data loader, so the re-executed
  iterations replay the original run.

The adapter stays deterministic: it consumes only the trainer's own seeded
randomness (model init, data order, per-layer dropout streams), so two
scheduler runs built from identically-configured trainers produce identical
results — the property the trainer-backed benchmark asserts.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from ..metrics.tracking import EpochRecord, RunHistory
from .scheduler import SimJob
from .timeline import SchedulePolicy

__all__ = ["TrainerJob"]


class TrainerJob(SimJob):
    """A :class:`SimJob` whose behaviour comes from a live trainer.

    Parameters
    ----------
    name, num_workers, iterations, policy, arrival_time, checkpoint_every,
    storage, link, async_checkpoint, weight:
        As for :class:`SimJob`.  ``iterations`` counts real training
        iterations (mini-batches); the data loader wraps to the next epoch —
        stepping the LR schedule and firing the trainer's epoch hooks — when
        it runs out of batches.
    trainer:
        The trainer to drive.  Attach a checkpoint manager
        (``trainer.configure_checkpointing``) before submitting when
        ``checkpoint_every`` is set, so snapshots are real and rollbacks are
        bit-exact; without one the job falls back to the cost-model byte
        estimate and cannot roll the live trainer back.
    """

    def __init__(self, name: str, trainer: Any, iterations: int, num_workers: int = 1,
                 policy: str = SchedulePolicy.VANILLA, arrival_time: float = 0.0,
                 checkpoint_every: Optional[int] = None, storage: Optional[str] = None,
                 link: Optional[str] = None, async_checkpoint: bool = False,
                 weight: float = 1.0):
        """Wrap ``trainer`` as a schedulable job priced by its own cost model."""
        SimJob.__init__(self, name=name, cost_model=trainer.cost_model,
                        num_workers=num_workers, iterations=int(iterations), policy=policy,
                        frozen_prefix=0, cached_fp=False, include_reference_overhead=False,
                        arrival_time=arrival_time, checkpoint_every=checkpoint_every,
                        storage=storage, link=link, async_checkpoint=async_checkpoint,
                        weight=weight)
        self.trainer = trainer
        #: :class:`~repro.ckpt.manager.CheckpointInfo` of every snapshot the
        #: scheduler triggered, in order (the byte audit trail).
        self.checkpoint_infos: List = []
        #: Frozen prefix in force during each executed iteration.
        self.prefix_series: List[int] = []
        #: Per-iteration training history (one record per *executed*
        #: iteration: loss, LR, frozen fraction, the simulated time the
        #: iteration was scheduled at).  Attached to the scheduler's
        #: :class:`~repro.sim.scheduler.JobRecord` via :meth:`run_history`
        #: and rolled back alongside ``prefix_series``.
        self.iteration_history = RunHistory(name=name, metric_name="train_loss",
                                            higher_is_better=False)
        self._epoch = -1
        self._profile: Tuple[int, bool, bool] = (0, False, False)

    # ------------------------------------------------------------------ #
    # Inline training loop (one batch per simulated iteration)
    # ------------------------------------------------------------------ #
    def _start_epoch(self, epoch: int) -> None:
        trainer = self.trainer
        self._epoch = epoch
        lr = trainer.scheduler.step(epoch) if trainer.scheduler is not None else trainer.optimizer.lr
        trainer.on_epoch_start(epoch, lr)
        trainer.train_loader.set_epoch(epoch)

    def _next_batch(self):
        trainer = self.trainer
        if self._epoch < 0:
            self._start_epoch(0)
        batch = trainer.train_loader.next_batch()
        while batch is None:
            self._start_epoch(self._epoch + 1)
            batch = trainer.train_loader.next_batch()
        return batch

    def begin_iteration(self, iteration: int, sim_time: float = 0.0) -> None:
        """Run one real training iteration and capture its pricing profile.

        The profile (frozen prefix, cached-FP mode, reference overhead) is
        read *before* the step: freezing decisions taken at the end of the
        step only affect subsequent iterations, matching the trainers' own
        accounting.  A re-schedule of an already-executed iteration (no-op
        resize restarts) does not re-train.  ``sim_time`` (the simulated
        clock at scheduling) is stamped into the iteration's history record.
        """
        trainer = self.trainer
        if trainer.iteration > iteration:
            return  # already executed; keep the captured profile
        self._profile = (trainer.frozen_prefix(), trainer.uses_cached_fp(),
                         trainer.include_reference_overhead())
        self.prefix_series.append(self._profile[0])
        batch = self._next_batch()
        trainer.iteration += 1
        loss_value = trainer.train_one_iteration(batch)
        trainer._epoch_losses.append(loss_value)
        trainer.on_iteration_end(batch, loss_value)
        num_modules = len(self.cost_model.layer_modules)
        self.iteration_history.add(EpochRecord(
            epoch=int(iteration), train_loss=float(loss_value), metric=float(loss_value),
            simulated_time=float(sim_time), wall_time=0.0,
            learning_rate=float(trainer.optimizer.lr),
            frozen_fraction=(self._profile[0] / num_modules) if num_modules else 0.0,
            cached_fp=bool(self._profile[1])))

    def run_history(self) -> Optional[RunHistory]:
        """The live per-iteration history (attached to the job's record)."""
        return self.iteration_history

    def iteration_profile(self, iteration: int) -> Tuple[int, bool, bool]:
        """The pricing profile captured by :meth:`begin_iteration`."""
        return self._profile

    def steady_profile(self) -> bool:
        """Never batchable: each profile emerges from a real training step."""
        return False

    # ------------------------------------------------------------------ #
    # Real checkpoint volume
    # ------------------------------------------------------------------ #
    def checkpoint_write_bytes(self, iteration: int, frozen_prefix: int) -> int:
        """Take a *real* snapshot; returns its content-addressed increment.

        Falls back to the cost-model estimate when no checkpoint manager is
        configured on the trainer.
        """
        trainer = self.trainer
        if trainer.checkpoint_manager is None:
            return super().checkpoint_write_bytes(iteration, frozen_prefix)
        info = trainer.save_checkpoint()
        self.checkpoint_infos.append(info)
        return int(info.bytes_written)

    def _snapshot_for(self, iteration: int):
        """Newest saved snapshot at or before ``iteration`` (None if none).

        An async write can be saved but later dropped as a rollback target
        (descheduled mid-drain), so the scheduler's watermark may point at an
        older snapshot than the newest save — match by step, not recency.
        """
        candidates = [info for info in self.checkpoint_infos if info.step <= iteration]
        return candidates[-1] if candidates else None

    def restore_read_bytes(self, iteration: int, frozen_prefix: int) -> int:
        """Bytes a restore to ``iteration`` reads (the snapshot's full payload)."""
        snapshot = self._snapshot_for(iteration)
        if snapshot is None:
            return super().restore_read_bytes(iteration, frozen_prefix)
        # A restore reads the snapshot's full logical payload, not just the
        # increment the write deduplicated down to.
        return int(snapshot.payload_bytes)

    # ------------------------------------------------------------------ #
    # Rollback: restore the live trainer and re-seek the data loader
    # ------------------------------------------------------------------ #
    def _seek(self, iteration: int) -> None:
        """Position the data loader right after ``iteration`` executed batches.

        Only the loader's own epoch-seeded order is consumed, so seeking does
        not disturb the trainer's restored RNG streams.
        """
        trainer = self.trainer
        per_epoch = len(trainer.train_loader)
        full_epochs, within = divmod(int(iteration), per_epoch)
        if within == 0 and full_epochs > 0:
            # Exactly at an epoch boundary: the boundary's epoch-start hooks
            # have not fired yet from the restored state's point of view, so
            # leave the loader exhausted at the previous epoch — the next
            # _next_batch crosses the boundary through the normal path.
            epoch, draws = full_epochs - 1, per_epoch
        else:
            epoch, draws = full_epochs, within
        trainer.train_loader.set_epoch(epoch)
        for _ in range(draws):
            trainer.train_loader.next_batch()
        self._epoch = epoch

    def rollback(self, to_iteration: int) -> None:
        """Restore the live trainer to ``to_iteration`` and re-seek the loader."""
        trainer = self.trainer
        if trainer.checkpoint_manager is None or to_iteration <= 0:
            # No durable snapshot to return to: the scheduler restarts the
            # job's *accounting* from zero, but the live trainer cannot be
            # rewound — begin_iteration will skip re-training the iterations
            # it already executed.
            return
        snapshot = self._snapshot_for(to_iteration)
        if snapshot is None:
            # Never restore a snapshot from *after* the rollback target: that
            # would leave the live trainer ahead of the scheduler's counter.
            return
        trainer.restore(snapshot.checkpoint_id)
        self._seek(int(trainer.iteration))
        self.prefix_series = self.prefix_series[: int(trainer.iteration)]
        # The rolled-back iterations will re-execute and re-record; trim
        # their history exactly like the prefix series.
        self.iteration_history.records = self.iteration_history.records[
            : int(trainer.iteration)]
        self._profile = (trainer.frozen_prefix(), trainer.uses_cached_fp(),
                         trainer.include_reference_overhead())

"""The profiling harness behind ``repro sim profile``.

:func:`profile_scenario` replays one scenario under :mod:`cProfile` and
returns a machine-readable report: wall-clock runtime, simulator throughput
(events and iterations per wall-clock second, from
``EventDrivenEngine.perf_counters``), the run's headline results and the
ranked hot functions — the ROADMAP "profile first, then attack the top
offenders" enabler.  Hot-function rows carry ``calls`` / ``tottime`` /
``cumtime`` exactly as :mod:`pstats` accounts them, sorted by the chosen
column.

This module is the one place in the simulator core allowed to read the wall
clock (explicitly suppressed per call site): profiling *measures host time by
definition*, and none of it feeds back into simulated time — the profiled
run's simulation results are the same as anyone else's.
"""

from __future__ import annotations

import cProfile
import pstats
import time
from typing import Dict, List, Optional, Union

__all__ = ["profile_scenario"]

#: ``sort`` choices mapped to their pstats row column.
_SORT_COLUMNS = ("cumulative", "tottime", "calls")


def _hot_functions(profiler: cProfile.Profile, top: int, sort: str) -> List[Dict[str, object]]:
    """Rank the profiler's per-function rows; returns the ``top`` hottest.

    Ties (and the final ranking) are broken deterministically by the
    function's ``file:line:name`` string.
    """
    rows: List[Dict[str, object]] = []
    stats = pstats.Stats(profiler)
    for (filename, line, name), (_cc, ncalls, tottime, cumtime, _callers) in stats.stats.items():
        rows.append({
            "function": f"{filename}:{line}:{name}",
            "calls": int(ncalls),
            "tottime": float(tottime),
            "cumtime": float(cumtime),
        })
    if sort == "calls":
        rows.sort(key=lambda row: (-row["calls"], row["function"]))  # type: ignore[operator]
    elif sort == "tottime":
        rows.sort(key=lambda row: (-row["tottime"], row["function"]))  # type: ignore[operator]
    else:
        rows.sort(key=lambda row: (-row["cumtime"], row["function"]))  # type: ignore[operator]
    return rows[:top]


def profile_scenario(scenario: Union[str, Dict[str, object]], top: int = 25,
                     sort: str = "cumulative",
                     default_policy: Optional[str] = None) -> Dict[str, object]:
    """Profile one scenario run; returns the machine-readable report.

    ``scenario`` is a spec dict or a path to a scenario JSON file (exactly
    what :func:`repro.sim.scenario.run_scenario` accepts); ``top`` bounds
    the hot-function list and ``sort`` ranks it (``"cumulative"``,
    ``"tottime"`` or ``"calls"``).  The report carries the profiled run's
    ``makespan`` and engine ``perf`` counters, the wall-clock
    ``wall_seconds``, the derived ``events_per_second`` /
    ``iterations_per_second`` throughput, and the ranked ``hot_functions``.
    Timing includes profiler overhead — compare profiled runs with profiled
    runs, and use ``benchmarks/`` for absolute numbers.
    """
    if sort not in _SORT_COLUMNS:
        raise ValueError(f"sort must be one of {_SORT_COLUMNS}, got {sort!r}")
    from ..scenario import run_scenario  # late: scenario imports this package

    profiler = cProfile.Profile()
    begin = time.perf_counter()  # simlint: disable=SIM001 -- host-side profiling harness, never feeds sim time
    profiler.enable()
    try:
        report = run_scenario(scenario, default_policy=default_policy)
    finally:
        profiler.disable()
    wall_seconds = time.perf_counter() - begin  # simlint: disable=SIM001 -- host-side profiling harness, never feeds sim time

    perf = report.get("perf") if isinstance(report.get("perf"), dict) else {}
    events = float(perf.get("events_processed", 0) or 0)
    iterations = float(perf.get("iterations_simulated", 0) or 0)
    iterations += float(perf.get("iterations_fast_forwarded", 0) or 0)
    return {
        "scenario": scenario if isinstance(scenario, str) else "<inline>",
        "wall_seconds": wall_seconds,
        "events_per_second": events / wall_seconds if wall_seconds > 0 else 0.0,
        "iterations_per_second": iterations / wall_seconds if wall_seconds > 0 else 0.0,
        "makespan": report.get("makespan"),
        "num_jobs": report.get("num_jobs"),
        "perf": dict(perf),
        "sort": sort,
        "hot_functions": _hot_functions(profiler, int(top), sort),
    }

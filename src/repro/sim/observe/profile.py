"""The profiling harness behind ``repro sim profile``.

:func:`profile_scenario` replays one scenario under :mod:`cProfile` and
returns a machine-readable report: wall-clock runtime, simulator throughput
(events and iterations per wall-clock second, from
``EventDrivenEngine.perf_counters``), the run's headline results and the
ranked hot functions — the ROADMAP "profile first, then attack the top
offenders" enabler.  Hot-function rows carry ``calls`` / ``tottime`` /
``cumtime`` exactly as :mod:`pstats` accounts them, sorted by the chosen
column.

This module is the one place in the simulator core allowed to read the wall
clock (explicitly suppressed per call site): profiling *measures host time by
definition*, and none of it feeds back into simulated time — the profiled
run's simulation results are the same as anyone else's.
"""

from __future__ import annotations

import cProfile
import pstats
import time
from typing import Dict, List, Optional, Union

__all__ = ["profile_scenario", "diff_profiles"]

#: ``sort`` choices mapped to their pstats row column.
_SORT_COLUMNS = ("cumulative", "tottime", "calls")


def _hot_functions(profiler: cProfile.Profile, top: int, sort: str) -> List[Dict[str, object]]:
    """Rank the profiler's per-function rows; returns the ``top`` hottest.

    Ties (and the final ranking) are broken deterministically by the
    function's ``file:line:name`` string.
    """
    rows: List[Dict[str, object]] = []
    stats = pstats.Stats(profiler)
    for (filename, line, name), (_cc, ncalls, tottime, cumtime, _callers) in stats.stats.items():
        rows.append({
            "function": f"{filename}:{line}:{name}",
            "calls": int(ncalls),
            "tottime": float(tottime),
            "cumtime": float(cumtime),
        })
    if sort == "calls":
        rows.sort(key=lambda row: (-row["calls"], row["function"]))  # type: ignore[operator]
    elif sort == "tottime":
        rows.sort(key=lambda row: (-row["tottime"], row["function"]))  # type: ignore[operator]
    else:
        rows.sort(key=lambda row: (-row["cumtime"], row["function"]))  # type: ignore[operator]
    return rows[:top]


def profile_scenario(scenario: Union[str, Dict[str, object]], top: int = 25,
                     sort: str = "cumulative",
                     default_policy: Optional[str] = None) -> Dict[str, object]:
    """Profile one scenario run; returns the machine-readable report.

    ``scenario`` is a spec dict or a path to a scenario JSON file (exactly
    what :func:`repro.sim.scenario.run_scenario` accepts); ``top`` bounds
    the hot-function list and ``sort`` ranks it (``"cumulative"``,
    ``"tottime"`` or ``"calls"``).  The report carries the profiled run's
    ``makespan`` and engine ``perf`` counters, the wall-clock
    ``wall_seconds``, the derived ``events_per_second`` /
    ``iterations_per_second`` throughput, and the ranked ``hot_functions``.
    Timing includes profiler overhead — compare profiled runs with profiled
    runs, and use ``benchmarks/`` for absolute numbers.
    """
    if sort not in _SORT_COLUMNS:
        raise ValueError(f"sort must be one of {_SORT_COLUMNS}, got {sort!r}")
    from ..scenario import run_scenario  # late: scenario imports this package

    profiler = cProfile.Profile()
    begin = time.perf_counter()  # simlint: disable=SIM001 -- host-side profiling harness, never feeds sim time
    profiler.enable()
    try:
        report = run_scenario(scenario, default_policy=default_policy)
    finally:
        profiler.disable()
    wall_seconds = time.perf_counter() - begin  # simlint: disable=SIM001 -- host-side profiling harness, never feeds sim time

    perf = report.get("perf") if isinstance(report.get("perf"), dict) else {}
    events = float(perf.get("events_processed", 0) or 0)
    iterations = float(perf.get("iterations_simulated", 0) or 0)
    iterations += float(perf.get("iterations_fast_forwarded", 0) or 0)
    return {
        "scenario": scenario if isinstance(scenario, str) else "<inline>",
        "wall_seconds": wall_seconds,
        "events_per_second": events / wall_seconds if wall_seconds > 0 else 0.0,
        "iterations_per_second": iterations / wall_seconds if wall_seconds > 0 else 0.0,
        "makespan": report.get("makespan"),
        "num_jobs": report.get("num_jobs"),
        "perf": dict(perf),
        "sort": sort,
        "hot_functions": _hot_functions(profiler, int(top), sort),
    }


def diff_profiles(baseline: Dict[str, object], current: Dict[str, object]) -> Dict[str, object]:
    """Per-function regression table between two profile reports.

    ``baseline`` and ``current`` are :func:`profile_scenario` reports (the
    baseline typically loaded from a ``--out`` file of an earlier run).
    Every function appearing in either ``hot_functions`` list gets a row
    with its baseline/current ``cumtime``/``tottime``/``calls`` and their
    deltas, ranked worst-regression-first (``delta_cumtime`` descending) —
    so a before/after comparison of an optimization is one
    ``repro sim profile --baseline`` invocation.  Functions absent on one
    side count zero there and are flagged ``"new"``/``"gone"``.
    """
    base_rows = {str(row["function"]): row
                 for row in baseline.get("hot_functions", [])}  # type: ignore[union-attr]
    current_rows = {str(row["function"]): row
                    for row in current.get("hot_functions", [])}  # type: ignore[union-attr]
    functions: List[Dict[str, object]] = []
    for function in sorted(set(base_rows) | set(current_rows)):
        old, new = base_rows.get(function), current_rows.get(function)
        old_cum = float(old["cumtime"]) if old else 0.0
        new_cum = float(new["cumtime"]) if new else 0.0
        old_tot = float(old["tottime"]) if old else 0.0
        new_tot = float(new["tottime"]) if new else 0.0
        old_calls = int(old["calls"]) if old else 0
        new_calls = int(new["calls"]) if new else 0
        functions.append({
            "function": function,
            "status": "new" if old is None else ("gone" if new is None else "common"),
            "baseline_cumtime": old_cum, "cumtime": new_cum,
            "delta_cumtime": new_cum - old_cum,
            "baseline_tottime": old_tot, "tottime": new_tot,
            "delta_tottime": new_tot - old_tot,
            "baseline_calls": old_calls, "calls": new_calls,
            "delta_calls": new_calls - old_calls,
        })
    functions.sort(key=lambda row: (-row["delta_cumtime"], row["function"]))  # type: ignore[operator]
    old_wall = float(baseline.get("wall_seconds", 0.0) or 0.0)
    new_wall = float(current.get("wall_seconds", 0.0) or 0.0)
    return {
        "baseline_scenario": baseline.get("scenario"),
        "scenario": current.get("scenario"),
        "baseline_wall_seconds": old_wall,
        "wall_seconds": new_wall,
        "delta_wall_seconds": new_wall - old_wall,
        "wall_ratio": (new_wall / old_wall) if old_wall > 0 else None,
        "functions": functions,
    }

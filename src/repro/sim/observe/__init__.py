"""SimScope: structured sim-time observability for the cluster simulator.

The simulator's headline guarantees (determinism, bit-identical fast-forward,
byte conservation) are enforced by SimLint and SimSan; *SimScope* is the layer
that makes a run's behaviour **visible**.  Three pillars, all reading sim time
from the event loop (never the wall clock) and all transparent — an observed
run is bit-identical to a plain run:

* :class:`Tracer` (:mod:`repro.sim.observe.trace`) — structured sim-time
  spans and instants on one track per job and per shared resource, exported
  as Chrome ``trace_event`` JSON viewable in Perfetto
  (https://ui.perfetto.dev): iteration spans (live vs fast-forwarded),
  queue-wait spans, per-link occupancy windows, scheduling / preemption /
  migration / fault decisions, checkpoint writes;
* :class:`MetricsRegistry` (:mod:`repro.sim.observe.metrics`) — counters,
  gauges and histograms sampled in sim time: cluster utilization, per-link
  throughput and queue depth, job queue latency, fast-forward cache hit
  rate, frozen-prefix fraction — exported as JSON or CSV time-series and
  summarized per-cell in ``repro sim sweep`` output;
* :func:`profile_scenario` (:mod:`repro.sim.observe.profile`) — the
  profiling harness behind ``repro sim profile``: runs a scenario under
  ``cProfile`` and reports ranked hot functions plus wall-clock events/sec
  in a machine-readable report.

:class:`SimObserver` (:mod:`repro.sim.observe.observer`) is the hook surface
the engine, scheduler and resource timelines call into, mirroring SimSan's
attachment pattern: ``EventDrivenEngine(observe=SimObserver())``, the
scenario JSON ``"observe"`` key, or ``repro sim run --trace-out/--metrics-out``.
The default is a **null sink** — no observer attached — so untraced runs pay
only an ``is None`` check per hook site.  :mod:`repro.sim.observe.checker`
validates exported trace/metrics files (the CI ``trace-smoke`` gate).

See ``docs/observability.md`` for the trace model, the metric catalog, the
Perfetto workflow and the overhead budget.
"""

from .checker import check_metrics, check_trace
from .metrics import MetricSeries, MetricsRegistry
from .observer import SimObserver
from .profile import diff_profiles, profile_scenario
from .trace import Tracer

__all__ = [
    "Tracer",
    "MetricSeries",
    "MetricsRegistry",
    "SimObserver",
    "profile_scenario",
    "diff_profiles",
    "check_trace",
    "check_metrics",
]

"""Structured sim-time tracer exporting Chrome ``trace_event`` JSON.

The tracer records **spans** (things with a duration: iteration execution,
queue waits, per-link occupancy windows) and **instants** (point decisions:
preemption, failure, checkpoint commit) against named *tracks*.  A track is a
``(group, label)`` pair — e.g. ``("job", "a")`` or ``("resource", "fabric")``
— rendered as one Chrome trace *thread* inside the group's *process*, so
Perfetto (https://ui.perfetto.dev) shows one swim-lane per job and per shared
resource with human-readable names from metadata events.

Recording is deliberately cheap: hooks append compact tuples and all JSON
rendering happens at export time (:meth:`Tracer.as_dict`), which is what
keeps traced runs inside the ``docs/observability.md`` overhead budget.
Export sorts events by track and sim time, so within any track timestamps
are monotone — one of the schema invariants
:func:`repro.sim.observe.checker.check_trace` enforces.

Sim-time seconds are rendered as the format's canonical microseconds
(``ts``/``dur``); the tracer never reads the wall clock.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = ["Tracer"]

#: One recorded track identifier: ``(group, label)``.
TrackKey = Tuple[str, str]

#: Microseconds per simulated second (Chrome trace ``ts``/``dur`` unit).
_MICROS = 1e6


class Tracer:
    """Collects sim-time spans and instants; exports Chrome ``trace_event`` JSON.

    Tracks are interned on first use in a deterministic order (the simulator
    is deterministic, so first-use order is too): each *group* becomes a
    Chrome process id and each *label* a thread id within it, with
    ``process_name``/``thread_name`` metadata events carrying the readable
    names.  All recorded times are simulated seconds.
    """

    def __init__(self) -> None:
        """Start with no tracks and no events."""
        #: group -> pid (interned, 1-based, first-use order).
        self._pids: Dict[str, int] = {}
        #: (group, label) -> tid (interned, 1-based, first-use order per group).
        self._tids: Dict[TrackKey, int] = {}
        # Compact records; rendered to event dicts only at export time.
        # span: (track, name, start, end, args); instant: (track, name, time, args)
        self._spans: List[Tuple[TrackKey, str, float, float, Optional[Dict[str, object]]]] = []
        self._instants: List[Tuple[TrackKey, str, float, Optional[Dict[str, object]]]] = []

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def span(self, group: str, label: str, name: str, start: float, end: float,
             args: Optional[Dict[str, object]] = None) -> None:
        """Record a ``[start, end]`` sim-time span on track ``(group, label)``.

        ``args`` (rendered verbatim into the event's ``args``) must be
        JSON-plain; the tracer stores the reference and renders lazily, so
        pass either a literal or a dict that will not be mutated afterwards.
        """
        self._spans.append(((group, label), name, float(start), float(end), args))

    def instant(self, group: str, label: str, name: str, time: float,
                args: Optional[Dict[str, object]] = None) -> None:
        """Record a point event at ``time`` on track ``(group, label)``."""
        self._instants.append(((group, label), name, float(time), args))

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #
    def _track_ids(self, track: TrackKey) -> Tuple[int, int]:
        """Intern ``track`` into its ``(pid, tid)`` pair."""
        group = track[0]
        pid = self._pids.get(group)
        if pid is None:
            pid = len(self._pids) + 1
            self._pids[group] = pid
        tid = self._tids.get(track)
        if tid is None:
            tid = sum(1 for key in self._tids if key[0] == group) + 1
            self._tids[track] = tid
        return pid, tid

    def num_events(self) -> int:
        """Number of recorded spans and instants (metadata excluded)."""
        return len(self._spans) + len(self._instants)

    def tracks(self) -> List[TrackKey]:
        """Sorted ``(group, label)`` pairs of every track that recorded events."""
        seen: Dict[TrackKey, None] = {}
        for track, _name, _start, _end, _args in self._spans:
            seen[track] = None
        for track, _name, _time, _args in self._instants:
            seen[track] = None
        return sorted(seen)

    def events(self) -> List[Dict[str, object]]:
        """Render every recorded event as a Chrome ``trace_event`` dict.

        Metadata (``process_name``/``thread_name``) events come first; span
        (``ph="X"``) and instant (``ph="i"``) events follow sorted by
        ``(pid, tid, ts, recording order)``, so sim time is monotone within
        every track — the invariant the schema checker asserts.
        """
        keyed: List[Tuple[int, int, float, int, Dict[str, object]]] = []
        order = 0
        for track, name, start, end, args in self._spans:
            pid, tid = self._track_ids(track)
            event: Dict[str, object] = {
                "name": name, "cat": track[0], "ph": "X",
                # dur is the difference of the *rendered* endpoints, so
                # ts + dur round-trips to the end the adjacent span starts
                # at (up to 1 ulp; the checker allows a ns of slack).
                "ts": start * _MICROS, "dur": end * _MICROS - start * _MICROS,
                "pid": pid, "tid": tid,
            }
            if args is not None:
                event["args"] = dict(args)
            keyed.append((pid, tid, start, order, event))
            order += 1
        for track, name, time, args in self._instants:
            pid, tid = self._track_ids(track)
            event = {
                "name": name, "cat": track[0], "ph": "i",
                "ts": time * _MICROS, "pid": pid, "tid": tid, "s": "t",
            }
            if args is not None:
                event["args"] = dict(args)
            keyed.append((pid, tid, time, order, event))
            order += 1

        rendered: List[Dict[str, object]] = []
        for group, pid in sorted(self._pids.items(), key=lambda item: item[1]):
            rendered.append({"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                             "args": {"name": group}})
        for (group, label), tid in sorted(self._tids.items(),
                                          key=lambda item: (self._pids[item[0][0]], item[1])):
            rendered.append({"name": "thread_name", "ph": "M",
                             "pid": self._pids[group], "tid": tid,
                             "args": {"name": label}})
        rendered.extend(event for _pid, _tid, _ts, _order, event
                        in sorted(keyed, key=lambda item: item[:4]))
        return rendered

    def as_dict(self) -> Dict[str, object]:
        """The full Chrome trace object (``traceEvents`` plus display unit)."""
        return {"traceEvents": self.events(), "displayTimeUnit": "ms"}

    def write(self, path: str) -> None:
        """Write the trace as JSON to ``path`` (load it in Perfetto)."""
        import json

        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.as_dict(), handle, indent=1, sort_keys=True)
            handle.write("\n")

"""Sim-time metrics: counters, gauges and histograms with full time-series.

A :class:`MetricsRegistry` holds named :class:`MetricSeries`, each a list of
``(sim_time, value)`` samples of one of three kinds:

* **counter** — cumulative, non-decreasing (``counter_add`` appends the new
  running total): per-link transferred bytes, iterations simulated vs
  fast-forwarded;
* **gauge** — last-write-wins level (``gauge_set``): cluster utilization,
  per-resource queue depth, per-job frozen-prefix fraction;
* **histogram** — independent observations (``observe``): job queue latency,
  per-transfer queueing wait.

Samples record *simulated* time only — the registry never reads the wall
clock — and recording is an O(1) list append, so observed runs stay inside
the overhead budget (``docs/observability.md``).  Export is JSON
(:meth:`MetricsRegistry.as_dict`), CSV (:meth:`MetricsRegistry.to_csv`) or a
compact per-metric :meth:`MetricsRegistry.summary` — the form ``repro sim
sweep`` merges per cell.  All exports are name-sorted and deterministic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = ["MetricSeries", "MetricsRegistry", "COUNTER", "GAUGE", "HISTOGRAM"]

#: Metric kinds (the ``kind`` field of every series).
COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"


class MetricSeries:
    """One named metric's kind and its ``(sim_time, value)`` samples."""

    def __init__(self, name: str, kind: str):
        """Create an empty series of the given ``kind``."""
        self.name = name
        self.kind = kind
        self.samples: List[Tuple[float, float]] = []

    @property
    def last(self) -> float:
        """The most recent sample's value (0.0 for an empty series)."""
        return self.samples[-1][1] if self.samples else 0.0

    def values(self) -> List[float]:
        """The sample values, in recording order."""
        return [value for _time, value in self.samples]

    def summary(self) -> Dict[str, object]:
        """Compact plain-data statistics of the series.

        Counters report their final cumulative ``total``; gauges and
        histograms report min/mean/max over the sampled values.  Every field
        is JSON-plain and deterministic for a deterministic run.
        """
        row: Dict[str, object] = {"kind": self.kind, "num_samples": len(self.samples)}
        if not self.samples:
            return row
        values = self.values()
        if self.kind == COUNTER:
            row["total"] = values[-1]
        else:
            row["last"] = values[-1]
            row["min"] = min(values)
            row["max"] = max(values)
            row["mean"] = sum(values) / len(values)
        return row

    def as_dict(self) -> Dict[str, object]:
        """Full plain-data view: kind plus the ``[time, value]`` sample list."""
        return {"kind": self.kind,
                "samples": [[time, value] for time, value in self.samples]}


class MetricsRegistry:
    """Named sim-time metric series with JSON/CSV export.

    Metric names are flat strings; per-entity series embed the entity in the
    name (``resource.bytes.fabric``, ``job.frozen_fraction.a``) so exports
    sort deterministically without a label system.
    """

    def __init__(self) -> None:
        """Start with no series registered."""
        self._series: Dict[str, MetricSeries] = {}

    def _get(self, name: str, kind: str) -> MetricSeries:
        series = self._series.get(name)
        if series is None:
            series = MetricSeries(name, kind)
            self._series[name] = series
        elif series.kind != kind:
            raise ValueError(f"metric {name!r} is a {series.kind}, not a {kind}")
        return series

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def counter_add(self, name: str, time: float, delta: float) -> None:
        """Add ``delta`` to the counter, sampling the new running total at ``time``."""
        series = self._get(name, COUNTER)
        series.samples.append((float(time), series.last + float(delta)))

    def gauge_set(self, name: str, time: float, value: float) -> None:
        """Sample the gauge's level at ``time``."""
        self._get(name, GAUGE).samples.append((float(time), float(value)))

    def observe(self, name: str, time: float, value: float) -> None:
        """Record one histogram observation made at ``time``."""
        self._get(name, HISTOGRAM).samples.append((float(time), float(value)))

    # ------------------------------------------------------------------ #
    # Access and export
    # ------------------------------------------------------------------ #
    def names(self) -> List[str]:
        """Sorted names of every registered series."""
        return sorted(self._series)

    def get(self, name: str) -> Optional[MetricSeries]:
        """The named series, or ``None`` when it never recorded."""
        return self._series.get(name)

    def __len__(self) -> int:
        """Number of registered series."""
        return len(self._series)

    def summary(self) -> Dict[str, Dict[str, object]]:
        """Name-sorted compact statistics of every series (the sweep cell form)."""
        return {name: self._series[name].summary() for name in self.names()}

    def as_dict(self) -> Dict[str, object]:
        """Full name-sorted plain-data export (kind + samples per series)."""
        return {"metrics": {name: self._series[name].as_dict() for name in self.names()}}

    def to_csv(self) -> str:
        """``metric,kind,time,value`` rows, name-sorted then sample-ordered."""
        lines = ["metric,kind,time,value"]
        for name in self.names():
            series = self._series[name]
            for time, value in series.samples:
                lines.append(f"{name},{series.kind},{time!r},{value!r}")
        return "\n".join(lines) + "\n"

    def write(self, path: str) -> None:
        """Write the registry to ``path``: CSV for ``.csv``, else full JSON."""
        if path.endswith(".csv"):
            payload = self.to_csv()
        else:
            import json

            payload = json.dumps(self.as_dict(), indent=1, sort_keys=True) + "\n"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(payload)

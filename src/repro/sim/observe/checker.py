"""Validators for exported SimScope traces and metrics.

:func:`check_trace` enforces the Chrome ``trace_event`` schema invariants the
tracer guarantees (complete events, track metadata, per-track sim-time
monotonicity, nest-or-disjoint job spans); :func:`check_metrics` enforces the
metrics export's shape, counter monotonicity and — given the run report —
the byte-conservation law: per-resource traced byte totals equal the
resource-timeline audit exactly.

Both return a list of human-readable problem strings (empty = valid), which
is what the test suite asserts on and what ``tools/check_trace.py`` — the CI
``trace-smoke`` gate — prints and exits non-zero on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = ["check_trace", "check_metrics"]

#: Event phases the tracer emits.
_PHASES = ("X", "i", "M")

#: Metric kinds the registry emits.
_KINDS = ("counter", "gauge", "histogram")


def _is_number(value: object) -> bool:
    """Whether ``value`` is a plain (non-bool) int or float."""
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _check_nesting(track: Tuple[int, int], spans: List[Tuple[float, float, str]],
                   problems: List[str]) -> None:
    """Assert the track's spans nest or are disjoint (never partially overlap).

    Spans are checked in ``(start, -end)`` order with a containment stack —
    the property that makes a job track render as clean nested slices in
    Perfetto.  Only job-category tracks are checked (fair-share resource
    windows overlap arbitrarily by design).  Boundaries get a nanosecond of
    slack: adjacent spans whose shared boundary rounded differently through
    the microsecond rendering (1 ulp of a float µs timestamp) are adjacent,
    not overlapping.
    """
    stack: List[Tuple[float, float, str]] = []
    for start, end, name in sorted(spans, key=lambda item: (item[0], -item[1])):
        slack = 1e-9 * max(1.0, abs(start), abs(end))
        while stack and stack[-1][1] <= start + slack:
            stack.pop()
        if stack and end > stack[-1][1] + slack:
            problems.append(
                f"track {track}: span {name!r} [{start}, {end}] partially overlaps "
                f"{stack[-1][2]!r} [{stack[-1][0]}, {stack[-1][1]}]")
        stack.append((start, end, name))


def check_trace(trace: Dict[str, object]) -> List[str]:
    """Validate a Chrome trace object; returns problem strings (empty = valid).

    Checks: the ``traceEvents`` envelope; required fields per phase (every
    event has ``name``/``ph``/``pid``/``tid``, timed events a numeric ``ts``,
    complete events a non-negative ``dur``); ``process_name`` /
    ``thread_name`` metadata for every track that recorded events; per-track
    ``ts`` monotonicity in file order; and nest-or-disjoint spans on
    job-category tracks.
    """
    problems: List[str] = []
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["trace has no 'traceEvents' list"]
    named_processes: Dict[int, str] = {}
    named_threads: Dict[Tuple[int, int], str] = {}
    last_ts: Dict[Tuple[int, int], float] = {}
    spans_by_track: Dict[Tuple[int, int], List[Tuple[float, float, str]]] = {}
    job_tracks: Dict[Tuple[int, int], bool] = {}
    used_tracks: Dict[Tuple[int, int], bool] = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {index}: not an object")
            continue
        phase = event.get("ph")
        name = event.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"event {index}: missing name")
        if phase not in _PHASES:
            problems.append(f"event {index} ({name!r}): unknown phase {phase!r}")
            continue
        pid, tid = event.get("pid"), event.get("tid")
        if not isinstance(pid, int) or not isinstance(tid, int):
            problems.append(f"event {index} ({name!r}): missing pid/tid")
            continue
        track = (pid, tid)
        if phase == "M":
            args = event.get("args")
            label = args.get("name") if isinstance(args, dict) else None
            if not isinstance(label, str):
                problems.append(f"event {index}: metadata without args.name")
            elif name == "process_name":
                named_processes[pid] = label
            elif name == "thread_name":
                named_threads[track] = label
            continue
        used_tracks[track] = True
        ts = event.get("ts")
        if not _is_number(ts):
            problems.append(f"event {index} ({name!r}): missing numeric ts")
            continue
        previous = last_ts.get(track)
        if previous is not None and ts < previous:
            problems.append(
                f"event {index} ({name!r}): ts {ts} goes backwards on track {track}"
                f" (previous {previous})")
        last_ts[track] = float(ts)
        if phase == "X":
            dur = event.get("dur")
            if not _is_number(dur) or dur < 0:
                problems.append(f"event {index} ({name!r}): complete event needs dur >= 0")
                continue
            spans_by_track.setdefault(track, []).append(
                (float(ts), float(ts) + float(dur), str(name)))
            if event.get("cat") == "job":
                job_tracks[track] = True
    for track in sorted(used_tracks):
        if track[0] not in named_processes:
            problems.append(f"track {track}: no process_name metadata for pid {track[0]}")
        if track not in named_threads:
            problems.append(f"track {track}: no thread_name metadata")
    for track, spans in sorted(spans_by_track.items()):
        if job_tracks.get(track):
            _check_nesting(track, spans, problems)
    return problems


def check_metrics(metrics: Dict[str, object],
                  result: Optional[Dict[str, object]] = None) -> List[str]:
    """Validate a metrics export; returns problem strings (empty = valid).

    Checks the ``{"metrics": {name: {kind, samples}}}`` envelope, numeric
    ``[time, value]`` sample pairs, and counter monotonicity (cumulative
    totals never decrease).  Given ``result`` — a scenario/scheduler report
    with a ``"resources"`` summary — it additionally cross-checks byte
    conservation: every resource that carried bytes has a
    ``resource.bytes.<name>`` counter whose final total equals the
    timeline's ``total_bytes`` audit exactly.
    """
    problems: List[str] = []
    series_map = metrics.get("metrics")
    if not isinstance(series_map, dict):
        return ["export has no 'metrics' mapping"]
    finals: Dict[str, float] = {}
    for name in sorted(series_map):
        series = series_map[name]
        if not isinstance(series, dict):
            problems.append(f"metric {name!r}: not an object")
            continue
        kind = series.get("kind")
        if kind not in _KINDS:
            problems.append(f"metric {name!r}: unknown kind {kind!r}")
            continue
        samples = series.get("samples")
        if not isinstance(samples, list):
            problems.append(f"metric {name!r}: missing samples list")
            continue
        previous_value: Optional[float] = None
        for position, sample in enumerate(samples):
            if (not isinstance(sample, list) or len(sample) != 2
                    or not _is_number(sample[0]) or not _is_number(sample[1])):
                problems.append(f"metric {name!r}: sample {position} is not [time, value]")
                continue
            value = float(sample[1])
            if kind == "counter" and previous_value is not None and value < previous_value:
                problems.append(
                    f"metric {name!r}: counter decreases at sample {position}"
                    f" ({previous_value} -> {value})")
            previous_value = value
        if samples and previous_value is not None:
            finals[str(name)] = previous_value
    if result is not None:
        resources = result.get("resources")
        if isinstance(resources, dict):
            for resource_name in sorted(resources):
                summary = resources[resource_name]
                if not isinstance(summary, dict):
                    continue
                audited = summary.get("total_bytes")
                if not _is_number(audited) or audited <= 0:
                    continue
                metric_name = f"resource.bytes.{resource_name}"
                traced = finals.get(metric_name)
                if traced is None:
                    problems.append(
                        f"resource {resource_name!r} carried {audited} bytes but "
                        f"{metric_name!r} is absent")
                elif int(traced) != int(audited):
                    problems.append(
                        f"{metric_name!r}: traced total {int(traced)} != audited "
                        f"total {int(audited)}")
    return problems

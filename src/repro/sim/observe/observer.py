"""The hook surface the simulator calls into when observability is on.

A :class:`SimObserver` bundles a :class:`~repro.sim.observe.trace.Tracer` and
a :class:`~repro.sim.observe.metrics.MetricsRegistry` behind the small set of
hooks the engine, scheduler and resource timelines invoke, mirroring SimSan's
attachment pattern (``EventDrivenEngine(observe=...)``, ``timeline.observer``,
``ClusterScheduler(..., observe=...)``).  With no observer attached every
hook site is a single ``is None`` check — the null-sink default; a
constructed observer with both pillars disabled records nothing but keeps
the hooks callable, which is what the overhead benchmark's null-sink
configuration measures.

Transparency contract (same as SimSan): hooks read simulation state and
**never** mutate it, so an observed run is bit-identical to a plain run —
``tests/test_observe.py`` asserts this for the engine, the scheduler and a
fault-injection scenario.

Two recording disciplines keep the data honest under cancellation:

* **Request-time facts** (queue depth seen by a transfer, its queueing wait,
  cluster utilization at a scheduling decision) are sampled live, because
  they are true at request time regardless of later re-flows.
* **Committed occupancy** (per-link spans, per-link byte counters) is
  rendered in :meth:`SimObserver.finalize` from the timelines' final audit
  records, so cancelled-and-re-flowed windows appear exactly once at their
  final position and the metrics byte totals match the byte audit by
  construction.  Iteration spans recorded speculatively by the engine are
  dropped when the scheduler invalidates the in-flight iteration
  (:meth:`SimObserver.scheduler_event` on failure/preemption/resize), so the
  exported trace shows only work that really committed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from .metrics import MetricsRegistry
from .trace import Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine attaches us)
    from ..engine import EngineIterationResult
    from ..resources import BaseResourceTimeline, ResourcePool

__all__ = ["SimObserver"]

#: Scheduler event kinds that put a job (back) into the pending queue.
#: ``job_failed``/``job_evicted`` only enqueue immediately when no restart
#: backoff delays them, but the queue-wait span is still measured from the
#: failure instant — the backoff delay *is* queueing the job experiences.
_ENQUEUE_KINDS = ("arrival", "job_failed", "job_resumed", "job_evicted")

#: Scheduler event kinds that invalidate the job's in-flight iteration.
_INVALIDATE_KINDS = ("job_failed", "job_preempted", "resize", "job_evicted")

#: Scheduler event kinds keyed by ``gpu`` rather than ``job``.
_GPU_KINDS = ("set_speed", "gpu_failure", "gpu_recovered", "gpu_recover_ignored",
              "spot_notice", "spot_evicted")

#: Fault-model event kinds keyed by ``resource`` (shown on its track).
_RESOURCE_KINDS = ("link_degraded", "link_restored", "tor_failure", "tor_recovered")

#: Fault-model event kinds keyed by domain ``label`` (cluster track).
_DOMAIN_KINDS = ("domain_failure", "domain_recovered")

#: Fault-model kinds counted as ``faults.<kind>`` metrics.  Only the new
#: structured-fault kinds — the legacy single-GPU failure kinds keep their
#: historical (counter-free) metrics output byte-identical.
_FAULT_COUNTER_KINDS = ("domain_failure", "domain_recovered", "link_degraded",
                        "link_restored", "tor_failure", "tor_recovered",
                        "spot_notice", "spot_evicted", "job_evicted",
                        "proactive_checkpoint", "restart_backoff")


class SimObserver:
    """Collects sim-time traces and metrics from the simulator's hook sites.

    Attach one observer per run (``EventDrivenEngine(observe=...)`` or the
    scenario ``"observe"`` key); call :meth:`finalize` once after the run to
    render committed resource occupancy, then export via :attr:`tracer` /
    :attr:`metrics`.
    """

    def __init__(self, trace: bool = True, metrics: bool = True):
        """Create an observer with either pillar individually switchable.

        ``trace=False, metrics=False`` is the measurable null sink: hooks are
        invoked but record nothing.
        """
        #: The span/instant recorder, or ``None`` when tracing is disabled.
        self.tracer: Optional[Tracer] = Tracer() if trace else None
        #: The time-series recorder, or ``None`` when metrics are disabled.
        self.metrics: Optional[MetricsRegistry] = MetricsRegistry() if metrics else None
        # Engine iteration results, kept as references and rendered at
        # finalize time (dropping any the scheduler later invalidates):
        # (job label, result, mode, frozen_prefix, num_modules).
        self._iterations: List[Tuple[str, "EngineIterationResult", str, int, int]] = []
        #: job -> sim time it (re-)entered the pending queue.
        self._queued_since: Dict[str, float] = {}
        self._busy_gpus = 0
        self._total_gpus = 0
        self._finalized = False

    @property
    def enabled(self) -> bool:
        """Whether any pillar is recording (False for the null sink)."""
        return self.tracer is not None or self.metrics is not None

    # ------------------------------------------------------------------ #
    # Engine hooks
    # ------------------------------------------------------------------ #
    def note_iteration(self, job: Optional[str], result: "EngineIterationResult",
                       mode: str, frozen_prefix: int, num_modules: int) -> None:
        """Record one simulated iteration (``mode`` is ``"live"`` or ``"replay"``).

        The ``result`` reference is kept as-is and rendered at finalize time,
        so the hot path pays one list append; the caller must not mutate the
        result afterwards (the engine never does).
        """
        if self.tracer is None and self.metrics is None:
            return
        self._iterations.append((job if job is not None else "<engine>",
                                 result, mode, int(frozen_prefix), int(num_modules)))

    # ------------------------------------------------------------------ #
    # Scheduler hooks
    # ------------------------------------------------------------------ #
    def note_cluster(self, total_gpus: int) -> None:
        """Tell the observer the cluster size (denominator of utilization)."""
        self._total_gpus = int(total_gpus)

    def _sample_utilization(self, time: float) -> None:
        """Sample the busy-GPU gauge pair after a placement change."""
        if self.metrics is None:
            return
        self.metrics.gauge_set("cluster.gpus_busy", time, float(self._busy_gpus))
        if self._total_gpus > 0:
            self.metrics.gauge_set("cluster.utilization", time,
                                   self._busy_gpus / self._total_gpus)

    def scheduler_event(self, time: float, kind: str, payload: Dict[str, object]) -> None:
        """Record one scheduler decision (forwarded from ``ClusterScheduler._trace``).

        Derives the queue-wait spans and latency histogram (arrival /
        failure / resume -> next ``job_start``), the busy-GPU utilization
        gauges (``job_start`` / ``gpus_released`` worker counts), and an
        instant on the owning job's (or GPU's) track for every decision.
        """
        if self.tracer is None and self.metrics is None:
            return
        job = payload.get("job")
        if kind == "job_start":
            self._busy_gpus += len(payload.get("workers", ()))  # type: ignore[arg-type]
            self._sample_utilization(time)
            queued_at = self._queued_since.pop(job, None) if isinstance(job, str) else None
            if queued_at is not None:
                if self.tracer is not None:
                    self.tracer.span("job", str(job), "queued", queued_at, time)
                if self.metrics is not None:
                    self.metrics.observe("job.queue_latency_seconds", time,
                                         time - queued_at)
        elif kind == "gpus_released":
            self._busy_gpus -= len(payload.get("workers", ()))  # type: ignore[arg-type]
            self._sample_utilization(time)
        if kind in _ENQUEUE_KINDS and isinstance(job, str):
            self._queued_since[job] = time
        if kind in _INVALIDATE_KINDS and isinstance(job, str):
            # The in-flight iteration (started, not finished by ``time``)
            # never committed: drop its speculative span/metrics record.
            self._iterations = [entry for entry in self._iterations
                                if not (entry[0] == job and entry[1].end_time > time
                                        and entry[1].start_time <= time)]
        if self.metrics is not None and kind in _FAULT_COUNTER_KINDS:
            self.metrics.counter_add(f"faults.{kind}", time, 1.0)
        if self.tracer is not None:
            gpu = payload.get("gpu")
            resource = payload.get("resource")
            label_value = payload.get("label")
            if kind in _GPU_KINDS and isinstance(gpu, str):
                self.tracer.instant("cluster", gpu, kind, time, payload)
            elif kind in _RESOURCE_KINDS and isinstance(resource, str):
                self.tracer.instant("resource", resource, kind, time, payload)
            elif kind in _DOMAIN_KINDS and isinstance(label_value, str):
                self.tracer.instant("cluster", label_value, kind, time, payload)
            else:
                label = str(job) if isinstance(job, str) else "<scheduler>"
                self.tracer.instant("job", label, kind, time, payload)

    # ------------------------------------------------------------------ #
    # Resource timeline hooks
    # ------------------------------------------------------------------ #
    def note_reserve(self, timeline: "BaseResourceTimeline", earliest_start: float,
                     start: float, end: float, num_bytes: int, job: Optional[str],
                     kind: str, depth: int) -> None:
        """Record the request-time facts of one reservation.

        ``depth`` is the discipline's queue depth as seen by this request
        (windows not yet started under FIFO, active transfers under fair
        share); the queueing wait is the discipline-assigned delay
        ``start - earliest_start`` (always 0 under processor sharing).
        These are sampled live because later cancellations do not change
        what this request observed.
        """
        if self.metrics is None:
            return
        name = timeline.resource.name
        self.metrics.gauge_set(f"resource.queue_depth.{name}", earliest_start, float(depth))
        self.metrics.observe(f"resource.wait_seconds.{name}", earliest_start,
                             start - earliest_start)

    # ------------------------------------------------------------------ #
    # Finalization
    # ------------------------------------------------------------------ #
    def finalize(self, pool: Optional["ResourcePool"] = None) -> None:
        """Render everything deferred from the hot path; idempotent.

        Iteration spans and counters come from the surviving (committed)
        engine results; per-resource occupancy spans and cumulative byte
        counters come from ``pool``'s final audit records, which is why the
        traced byte totals equal the byte audit exactly — cancellations were
        already re-flowed by the time this runs.
        """
        if self._finalized or (self.tracer is None and self.metrics is None):
            return
        self._finalized = True
        live = replayed = 0
        for job, result, mode, frozen_prefix, num_modules in self._iterations:
            if mode == "replay":
                replayed += 1
            else:
                live += 1
            if self.tracer is not None:
                self.tracer.span("job", job, "iteration", result.start_time,
                                 result.end_time,
                                 {"mode": mode, "frozen_prefix": frozen_prefix,
                                  "communication": result.communication,
                                  "exposed_communication": result.exposed_communication})
            if self.metrics is not None:
                self.metrics.counter_add(
                    "engine.iterations_replayed" if mode == "replay"
                    else "engine.iterations_live", result.start_time, 1.0)
                if num_modules > 0:
                    self.metrics.gauge_set(f"job.frozen_fraction.{job}",
                                           result.start_time,
                                           frozen_prefix / num_modules)
        if self.metrics is not None and (live or replayed):
            self.metrics.gauge_set("engine.cache_hit_rate",
                                   max(entry[1].end_time for entry in self._iterations),
                                   replayed / (live + replayed))
        if pool is not None:
            for name in pool.names():
                timeline = pool.get(name)
                if timeline is None:
                    continue
                for record in timeline.records:
                    if self.tracer is not None:
                        self.tracer.span("resource", name, record.kind,
                                         record.start, record.end,
                                         {"job": record.job, "num_bytes": record.num_bytes})
                    if self.metrics is not None and record.num_bytes:
                        self.metrics.counter_add(f"resource.bytes.{name}",
                                                 record.start, float(record.num_bytes))

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #
    def trace_dict(self) -> Optional[Dict[str, object]]:
        """The Chrome trace object, or ``None`` when tracing is disabled."""
        return self.tracer.as_dict() if self.tracer is not None else None

    def metrics_dict(self) -> Optional[Dict[str, object]]:
        """The full metrics export, or ``None`` when metrics are disabled."""
        return self.metrics.as_dict() if self.metrics is not None else None

"""Iteration timelines under different computation/communication schedules.

Figure 10 of the paper compares distributed-training throughput of:

* the vanilla framework (PyTorch): per-layer gradient all-reduce issued as
  soon as a layer's backward finishes, overlapping communication with the
  backward pass of *earlier* (front) layers;
* ByteScheduler: priority-based scheduling that additionally overlaps
  communication with the *next iteration's forward pass*, i.e. the
  theoretically optimal overlap;
* Egeria: frozen layers are excluded from both backward compute and gradient
  synchronization;
* Egeria + ByteScheduler combined.

:class:`TimelineSimulator` computes per-iteration times for each policy from
the layer-module structure, the freezing state and the all-reduce model, and
reports throughput (samples/second) — the metric Figure 10 plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

if TYPE_CHECKING:  # type-only: a runtime import would cycle through repro.core
    from ..core.modules import LayerModule
from .allreduce import AllReduceModel
from .cluster import Cluster, GPUDevice
from .cost_model import CostModel

__all__ = ["SchedulePolicy", "IterationTimeline", "TimelineSimulator"]


class SchedulePolicy:
    """Names of the supported computation/communication schedules."""

    VANILLA = "vanilla"
    BYTESCHEDULER = "bytescheduler"
    EGERIA = "egeria"
    EGERIA_BYTESCHEDULER = "egeria+bytescheduler"

    ALL = (VANILLA, BYTESCHEDULER, EGERIA, EGERIA_BYTESCHEDULER)


@dataclass
class IterationTimeline:
    """Result of simulating one iteration under one policy.

    ``resource_seconds`` prices the iteration's occupancy of each shared
    resource it traverses (e.g. ``{"fabric": ...}`` for a multi-machine
    all-reduce) — the closed-form counterpart of the event engine's
    per-resource occupancy windows.
    """

    policy: str
    forward: float
    backward: float
    communication: float
    exposed_communication: float
    total: float
    resource_seconds: Dict[str, float] = field(default_factory=dict)

    def throughput(self, samples_per_iteration: int) -> float:
        """Samples processed per second at this iteration time."""
        return samples_per_iteration / self.total if self.total > 0 else 0.0

    def as_dict(self) -> Dict[str, object]:
        """Plain-data view of the timeline (used by Figure 10 rows)."""
        return {
            "policy": self.policy,
            "forward": self.forward,
            "backward": self.backward,
            "communication": self.communication,
            "exposed_communication": self.exposed_communication,
            "total": self.total,
            "resource_seconds": dict(self.resource_seconds),
        }


class TimelineSimulator:
    """Computes iteration timelines for the Figure 10 policies."""

    def __init__(self, layer_modules: Sequence[LayerModule], cost_model: CostModel,
                 allreduce: AllReduceModel, workers: List[GPUDevice]):
        """Bind the simulator to a module list, cost model and worker set."""
        self.layer_modules = list(layer_modules)
        self.cost_model = cost_model
        self.allreduce = allreduce
        self.workers = workers

    # ------------------------------------------------------------------ #
    # Building blocks
    # ------------------------------------------------------------------ #
    def _compute_times(self, frozen_prefix: int, cached_fp: bool) -> Dict[str, float]:
        breakdown = self.cost_model.iteration(frozen_prefix=frozen_prefix, cached_fp=cached_fp,
                                              include_reference_overhead=False)
        return {"forward": breakdown.forward + breakdown.cache_overhead, "backward": breakdown.backward}

    def _gradient_bytes(self, frozen_prefix: int) -> int:
        return sum(self.cost_model.module_gradient_bytes(m)
                   for i, m in enumerate(self.layer_modules) if i >= frozen_prefix)

    def _comm_time(self, frozen_prefix: int) -> float:
        return self.allreduce.allreduce_seconds(self._gradient_bytes(frozen_prefix), self.workers)

    # ------------------------------------------------------------------ #
    # Policies
    # ------------------------------------------------------------------ #
    def simulate(self, policy: str, frozen_prefix: int = 0, cached_fp: bool = False) -> IterationTimeline:
        """Simulate one iteration under the given schedule policy.

        ``frozen_prefix``/``cached_fp`` only apply to the Egeria policies; the
        vanilla and ByteScheduler baselines always train the full model.
        """
        if policy not in SchedulePolicy.ALL:
            raise ValueError(f"unknown policy {policy!r}; expected one of {SchedulePolicy.ALL}")
        uses_freezing = policy in (SchedulePolicy.EGERIA, SchedulePolicy.EGERIA_BYTESCHEDULER)
        prefix = frozen_prefix if uses_freezing else 0
        cached = cached_fp if uses_freezing else False
        compute = self._compute_times(prefix, cached)
        communication = self._comm_time(prefix)

        if policy in (SchedulePolicy.BYTESCHEDULER, SchedulePolicy.EGERIA_BYTESCHEDULER):
            # Optimal priority scheduling: communication overlaps with BP and
            # with the next iteration's FP; only the excess is exposed.
            overlap_budget = compute["backward"] + compute["forward"]
        else:
            # Baseline framework: a layer's gradients are transmitted while
            # earlier layers still run their backward pass, so roughly the
            # backward time (minus the first module's share) is available.
            overlap_budget = compute["backward"] * 0.8

        exposed = max(communication - overlap_budget, 0.0)
        total = compute["forward"] + compute["backward"] + exposed
        resource_seconds: Dict[str, float] = {}
        if communication > 0.0:
            # Price the occupancy on the resource the traffic traverses: the
            # shared leaf–spine fabric for cross-machine rings, the private
            # intra-node interconnect otherwise.
            crosses_fabric = not self.allreduce.cluster.is_single_machine(self.workers)
            resource_seconds[Cluster.FABRIC if crosses_fabric else "intra-node"] = communication
        return IterationTimeline(
            policy=policy,
            forward=compute["forward"],
            backward=compute["backward"],
            communication=communication,
            exposed_communication=exposed,
            total=total,
            resource_seconds=resource_seconds,
        )

    def throughput_sweep(self, policies: Optional[Sequence[str]] = None, frozen_prefix: int = 0,
                         cached_fp: bool = True, samples_per_iteration: Optional[int] = None) -> Dict[str, float]:
        """Throughput (samples/s) for each policy — one Figure 10 bar group."""
        policies = list(policies or SchedulePolicy.ALL)
        samples = samples_per_iteration or (self.cost_model.batch_size * max(len(self.workers), 1))
        results: Dict[str, float] = {}
        for policy in policies:
            timeline = self.simulate(policy, frozen_prefix=frozen_prefix, cached_fp=cached_fp)
            results[policy] = timeline.throughput(samples)
        return results

"""Ring all-reduce communication cost model.

Data-parallel training synchronises gradients with all-reduce (§6.1: "we use
the all-reduce parameter synchronization scheme").  The standard ring
all-reduce moves ``2 (n-1)/n`` times the gradient volume over the slowest
link of the ring, plus a per-message latency term.  Egeria reduces the
synchronized volume by excluding frozen layers' gradients.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .cluster import Cluster, GPUDevice

__all__ = ["AllReduceModel"]


@dataclass
class AllReduceModel:
    """Time model for ring all-reduce over a set of workers.

    Parameters
    ----------
    cluster:
        Cluster topology providing the bottleneck bandwidth.
    latency_seconds:
        Fixed per-all-reduce latency (launch + ring setup).
    intra_node_gbps:
        Effective bandwidth when every worker sits on one machine (NVLink /
        PCIe class, far above the NIC).
    """

    cluster: Cluster
    latency_seconds: float = 50e-6
    intra_node_gbps: float = 128.0

    def effective_bandwidth_gbps(self, workers: List[GPUDevice]) -> float:
        """Bandwidth of the slowest ring link for these workers."""
        if len(workers) <= 1:
            return float("inf")
        if self.cluster.is_single_machine(workers):
            return self.intra_node_gbps
        return self.cluster.worker_bottleneck_gbps(workers)

    def allreduce_seconds(self, gradient_bytes: int, workers: List[GPUDevice]) -> float:
        """Time to all-reduce ``gradient_bytes`` across the workers."""
        n = len(workers)
        if n <= 1 or gradient_bytes <= 0:
            return 0.0
        bandwidth_gbps = self.effective_bandwidth_gbps(workers)
        if bandwidth_gbps == float("inf"):
            return self.latency_seconds
        bytes_on_wire = 2.0 * (n - 1) / n * gradient_bytes
        seconds_per_byte = 8.0 / (bandwidth_gbps * 1e9)
        return self.latency_seconds + bytes_on_wire * seconds_per_byte

    def seconds_per_byte(self, workers: List[GPUDevice]) -> float:
        """Marginal all-reduce cost per gradient byte (no latency term).

        Handy for the :class:`~repro.sim.cost_model.CostModel`, which wants a
        linear per-byte coefficient.
        """
        n = len(workers)
        if n <= 1:
            return 0.0
        bandwidth_gbps = self.effective_bandwidth_gbps(workers)
        if bandwidth_gbps == float("inf"):
            return 0.0
        return 2.0 * (n - 1) / n * 8.0 / (bandwidth_gbps * 1e9)

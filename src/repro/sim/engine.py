"""Discrete-event simulation of training iterations on a cluster.

The closed-form :class:`~repro.sim.cost_model.CostModel` collapses an
iteration into ``forward + backward + max(comm - backward, 0)``.  That is fast
and adequate for a single homogeneous job, but it cannot express the
cluster-level effects the paper's distributed results depend on: stragglers
gating the all-reduce, heterogeneous GPU speeds, per-link serialization of
gradient buckets, or ByteScheduler's overlap of leftover communication with
the *next* iteration's forward pass.

This module provides :class:`EventDrivenEngine`, a discrete-event simulator
over :class:`~repro.sim.cluster.Cluster` resources:

* **per-GPU compute events** — every layer module's forward/backward pass is
  a timed segment on its worker's GPU; each GPU carries a speed factor so
  stragglers and heterogeneous accelerators simply run their segments slower;
* **per-link communication events** — each unfrozen module's gradient bucket
  becomes ready when *all* workers finished that module's backward pass (the
  slowest worker gates the collective), and buckets are serialized on the
  ring whose cost comes from :class:`~repro.sim.allreduce.AllReduceModel`;
* **overlap** — communication naturally overlaps the remaining backward
  compute (buckets are transmitted while earlier layers still run BP,
  ByteScheduler-style front-first priority optionally reorders them), and in
  multi-iteration runs leftover communication can hide behind the next
  iteration's forward pass under the ByteScheduler policies;
* **shared-resource queues** — with ``link_resource`` set, every gradient
  bucket additionally occupies the named shared resource's timeline
  (:mod:`repro.sim.resources`; first-fit FIFO or processor-sharing,
  per-resource ``policy``), so concurrent jobs' buckets genuinely delay
  each other on the fabric instead of being scaled by a fudge factor; the
  same timelines price checkpoint/restore traffic on shared storage targets
  (:meth:`EventDrivenEngine.storage_transfer`).  ``link_resource`` also
  accepts a *sequence* of resource names — the per-ToR topology mode, where
  a bucket reserves capacity on every fabric link its placement crosses
  (its ToR uplinks and, cross-rack, the core) and completes when the
  slowest crossed link delivers it;
* **steady-state fast-forward** — training is thousands of *identical*
  iterations, so the engine memoizes the fully-resolved relative timing of
  every iteration it simulates, keyed by the complete dynamics state
  (cost-model fingerprint, frozen prefix, cached-FP mode, policy, worker
  set, per-worker speed factors, communication pricing and the crossed
  links).  A later call with the same key replays the cached timing in
  O(1) — re-committing the same occupancy windows on the crossed links, so
  byte accounting and cross-job contention stay exact — instead of
  re-running the bucket heap.  Any state transition invalidates the replay:
  a freeze/unfreeze, resize or speed change alters the key, and traffic
  from another job on a crossed link (arrival, departure, cancel/re-flow)
  fails the quiet-link precondition, forcing a full re-simulation.  See
  ``docs/performance.md`` for the key and invalidation rules.

The engine is deterministic: event ties are broken by insertion sequence and
no randomness is used, so two runs with identical inputs produce identical
timelines.  The event loop runs in *relative* time (anchored at 0) and
translates to absolute time only at the edges — shared-resource reservations
and the returned result — which makes a fast-forwarded iteration
bit-identical to the event-by-event simulation it replays.  For single-job
configurations without communication it reproduces the closed-form
:class:`CostModel` totals exactly (see
:meth:`EventDrivenEngine.closed_form_deviation`), which keeps the cheap
closed-form path usable as a validated fast mode.
"""

from __future__ import annotations

import copy
import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union, TYPE_CHECKING

from .allreduce import AllReduceModel
from .cluster import Cluster, GPUDevice
from .cost_model import CostModel
from .resources import BaseResourceTimeline, ResourcePool, SharedResource
from .sanitizer import SimSanitizer, sanitize_from_env
from .timeline import SchedulePolicy

if TYPE_CHECKING:  # pragma: no cover - observers are attached, never imported here
    from .observe.observer import SimObserver

__all__ = ["SimEvent", "EventQueue", "EngineIterationResult", "EventDrivenEngine"]


@dataclass(frozen=True)
class SimEvent:
    """One timestamped occurrence inside the simulation."""

    time: float
    seq: int
    kind: str
    payload: Tuple

    def as_dict(self) -> Dict[str, object]:
        """Plain-data view of the event."""
        return {"time": self.time, "seq": self.seq, "kind": self.kind, "payload": self.payload}


class EventQueue:
    """Min-heap of events ordered by (time, insertion sequence).

    The insertion sequence makes simultaneous events pop in a deterministic
    order, which in turn makes every simulation reproducible bit-for-bit.
    """

    def __init__(self) -> None:
        """Start with an empty heap and a zeroed insertion sequence."""
        self._heap: List[Tuple[float, int, str, Tuple]] = []
        self._seq = 0

    def push(self, time: float, kind: str, payload: Tuple = ()) -> None:
        """Schedule an event at ``time`` (ties break by insertion order)."""
        heapq.heappush(self._heap, (float(time), self._seq, kind, payload))
        self._seq += 1

    def pop(self) -> SimEvent:
        """Remove and return the earliest pending event."""
        time, seq, kind, payload = heapq.heappop(self._heap)
        return SimEvent(time, seq, kind, payload)

    def __len__(self) -> int:
        """Number of pending events."""
        return len(self._heap)

    def __bool__(self) -> bool:
        """Whether any event is still pending."""
        return bool(self._heap)


@dataclass
class EngineIterationResult:
    """Timing decomposition of one simulated iteration.

    ``forward``/``backward`` are the *nominal* (speed-factor-free) compute
    sums, matching the closed-form breakdown; the wall-clock effect of slow
    GPUs shows up in ``end_time`` and ``per_worker_compute_end``.
    """

    forward: float
    backward: float
    communication: float
    exposed_communication: float
    cache_overhead: float
    reference_overhead: float
    start_time: float
    end_time: float
    num_events: int
    per_worker_compute_end: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        """Wall-clock span of the iteration."""
        return self.end_time - self.start_time

    @property
    def compute(self) -> float:
        """Nominal forward + backward compute seconds."""
        return self.forward + self.backward

    def as_dict(self) -> Dict[str, float]:
        """Plain-data timing breakdown (what the trainers record)."""
        return {
            "forward": self.forward,
            "backward": self.backward,
            "communication": self.communication,
            "exposed_communication": self.exposed_communication,
            "cache_overhead": self.cache_overhead,
            "reference_overhead": self.reference_overhead,
            "total": self.total,
        }


@dataclass(frozen=True)
class _FastForwardEntry:
    """Fully-resolved *relative* timing of one simulated iteration.

    Everything is anchored at iteration start = 0, so a replay at any
    ``start_time`` reconstructs the absolute result as ``start_time + rel``
    — the exact arithmetic the live loop performs, hence bit-identical.
    ``reservations`` are the occupancy windows the iteration placed on its
    crossed links: ``(link index, relative request time, duration, bytes)``,
    re-committed on every replay so byte audits and cross-job contention
    stay exact.  ``cacheable`` is False when any reservation was delayed or
    stretched by another job's traffic (a contended iteration is never a
    steady state worth caching).
    """

    forward: float
    backward: float
    communication: float
    exposed_communication: float
    cache_overhead: float
    reference_overhead: float
    rel_end: float
    num_events: int
    worker_rel_end: Tuple[float, ...]
    reservations: Tuple[Tuple[int, float, float, int], ...]
    cacheable: bool


#: A worker handed to the engine: either a topology-aware GPU device or a
#: bare name (single-node simulations that need no cluster graph).
WorkerLike = Union[GPUDevice, str]


class EventDrivenEngine:
    """Discrete-event simulator of training iterations over cluster resources.

    Parameters
    ----------
    cluster:
        Optional topology; required only when communication costs should be
        derived from link bandwidths (multi-worker jobs).
    allreduce:
        Communication model used to price gradient buckets; built from
        ``cluster`` when omitted.
    memoize:
        Enables the steady-state fast-forward cache (on by default).  With
        it off every iteration is simulated event by event — the reference
        path the equality tests and the fast-forward microbenchmark compare
        against.
    sanitize:
        Enables SimSan (:mod:`repro.sim.sanitizer`): runtime invariant
        checks on every event, reservation and cancellation, plus periodic
        fast-forward/live divergence spot checks.  ``None`` (the default)
        defers to the ``REPRO_SIMSAN`` environment variable, which is how
        CI runs the whole tier-1 suite sanitized.  Sanitized runs produce
        bit-identical results and perf counters.
    observe:
        Attaches a SimScope :class:`~repro.sim.observe.observer.SimObserver`
        (:mod:`repro.sim.observe`): sim-time iteration spans (live vs
        fast-forwarded replay) for the tracer, iteration/frozen-fraction
        metrics, and — via the shared :class:`ResourcePool` — per-resource
        queue-depth/wait sampling.  ``None`` (the default) is the null
        sink: every hook site is a single ``is None`` check.  Observed runs
        produce bit-identical results and perf counters.
    """

    def __init__(self, cluster: Optional[Cluster] = None, allreduce: Optional[AllReduceModel] = None,
                 memoize: bool = True, sanitize: Optional[bool] = None,
                 observe: Optional["SimObserver"] = None):
        """Bind the engine to a cluster's topology and shared resources."""
        self.cluster = cluster
        self.allreduce = allreduce or (AllReduceModel(cluster) if cluster is not None else None)
        #: Shared-resource timelines (links + storage); populated from the
        #: cluster's named resources, extendable with :meth:`add_resource`.
        self.resources = ResourcePool(cluster.resources.values() if cluster is not None else None)
        if sanitize is None:
            sanitize = sanitize_from_env()
        #: The attached runtime sanitizer, or ``None`` for a plain run.
        self.sanitizer: Optional[SimSanitizer] = SimSanitizer() if sanitize else None
        self.resources.attach_sanitizer(self.sanitizer)
        #: The attached SimScope observer, or ``None`` for an unobserved run.
        self.observer: Optional["SimObserver"] = observe
        self.resources.attach_observer(self.observer)
        #: Per-GPU relative speed (1.0 = nominal; 0.5 = half speed, i.e. a
        #: straggler whose compute segments take twice as long).
        self.gpu_speed: Dict[str, float] = {}
        #: Steady-state fast-forward switch (see :meth:`simulate_iteration`).
        self.memoize = bool(memoize)
        self._cache: Dict[Tuple, _FastForwardEntry] = {}
        #: Lightweight perf counters: live events processed, iterations
        #: simulated event by event vs fast-forwarded from the cache.
        self.events_processed = 0
        self.iterations_simulated = 0
        self.iterations_fast_forwarded = 0
        #: Batched fast-forward counters: committed batches and the replayed
        #: iterations they covered (a subset of iterations_fast_forwarded).
        self.fast_forward_batches = 0
        self.iterations_batched = 0

    # ------------------------------------------------------------------ #
    # Scenario knobs
    # ------------------------------------------------------------------ #
    def add_resource(self, resource: SharedResource) -> BaseResourceTimeline:
        """Register an extra shared resource (name validated at use time)."""
        return self.resources.add(resource)

    def resource_timeline(self, name: str) -> BaseResourceTimeline:
        """The named resource's timeline, syncing late cluster additions.

        Resources registered on the cluster *after* this engine was built
        (``cluster.add_resource``) are adopted on first use, so the cluster
        stays the single place to declare resources.  Unknown names raise
        ``KeyError`` at call time, like job and GPU names.
        """
        timeline = self.resources.get(name)
        if timeline is None and self.cluster is not None and name in self.cluster.resources:
            timeline = self.resources.add(self.cluster.resources[name])
        if timeline is None:
            return self.resources.require(name)  # raises with the known names
        return timeline

    def set_gpu_speed(self, gpu_name: str, factor: float) -> None:
        """Set a GPU's relative speed (straggler < 1.0 < fast heterogeneous GPU)."""
        if factor <= 0:
            raise ValueError(f"speed factor must be positive, got {factor}")
        self.gpu_speed[str(gpu_name)] = float(factor)

    def speed_factor(self, gpu_name: str) -> float:
        """The GPU's relative speed (1.0 when never overridden)."""
        return self.gpu_speed.get(str(gpu_name), 1.0)

    # ------------------------------------------------------------------ #
    # Fast-forward cache management and counters
    # ------------------------------------------------------------------ #
    def clear_fast_forward_cache(self) -> None:
        """Drop every memoized iteration (e.g. after mutating a cost model)."""
        self._cache.clear()

    def perf_counters(self) -> Dict[str, object]:
        """Deterministic plain-data view of the engine's perf counters.

        ``cache_hit_rate`` is the fraction of simulated iterations served by
        the fast-forward cache; ``events_processed`` counts only the events
        the live loop actually popped (fast-forwarded iterations process
        none — that is the point).
        """
        total = self.iterations_simulated + self.iterations_fast_forwarded
        counters: Dict[str, object] = {
            "events_processed": self.events_processed,
            "iterations_simulated": self.iterations_simulated,
            "iterations_fast_forwarded": self.iterations_fast_forwarded,
            "cache_hit_rate": (self.iterations_fast_forwarded / total) if total else 0.0,
            "cache_entries": len(self._cache),
            "fast_forward_batches": self.fast_forward_batches,
            "iterations_batched": self.iterations_batched,
            "mean_batch_size": ((self.iterations_batched / self.fast_forward_batches)
                                if self.fast_forward_batches else 0.0),
        }
        counters.update(self.resources.perf_counters())
        return counters

    # ------------------------------------------------------------------ #
    # Segment construction
    # ------------------------------------------------------------------ #
    @staticmethod
    def _worker_names(workers: Optional[Sequence[WorkerLike]]) -> List[str]:
        if not workers:
            return ["gpu0"]
        return [w.name if isinstance(w, GPUDevice) else str(w) for w in workers]

    def _segments(self, cost_model: CostModel, frozen_prefix: int, cached_fp: bool,
                  include_reference_overhead: bool) -> Tuple[List[Tuple[str, int, float]], float, float]:
        """Nominal per-module compute segments of one iteration, in execution order.

        Returns ``(segments, cache_overhead, reference_overhead)`` where each
        segment is ``(phase, module_index, seconds)``.  The ordering mirrors
        the closed-form accounting: reference-model overhead and cache
        prefetch run before the forward pass, the backward pass runs last so
        that gradient buckets only become available while BP is in flight.
        """
        modules = cost_model.layer_modules
        frozen_prefix = max(0, min(frozen_prefix, len(modules)))
        segments: List[Tuple[str, int, float]] = []

        reference_overhead = 0.0
        if include_reference_overhead:
            baseline_compute = sum(cost_model.module_forward_time(m) * (1 + cost_model.gpu.bp_fp_ratio)
                                   for m in modules)
            reference_overhead = baseline_compute * cost_model.reference_overhead_fraction
            segments.append(("reference", -1, reference_overhead))

        cache_overhead = 0.0
        if cached_fp and frozen_prefix > 0:
            saved_forward = sum(cost_model.module_forward_time(m) for m in modules[:frozen_prefix])
            cache_overhead = saved_forward * cost_model.cache_overhead_fraction
            segments.append(("cache", -1, cache_overhead))

        for index, module in enumerate(modules):
            if index < frozen_prefix and cached_fp:
                continue  # served from the activation cache
            segments.append(("forward", index, cost_model.module_forward_time(module)))
        for index in range(len(modules) - 1, frozen_prefix - 1, -1):
            segments.append(("backward", index, cost_model.module_backward_time(modules[index])))
        return segments, cache_overhead, reference_overhead

    def _bucket_seconds(self, cost_model: CostModel, module_index: int,
                        workers: Sequence[WorkerLike],
                        comm_seconds_per_byte: Optional[float]) -> float:
        """Transmission time of one module's gradient bucket."""
        num_bytes = cost_model.module_gradient_bytes(cost_model.layer_modules[module_index])
        if comm_seconds_per_byte is not None:
            return num_bytes * comm_seconds_per_byte
        if self.allreduce is None or len(workers) <= 1:
            return 0.0
        devices = [w for w in workers if isinstance(w, GPUDevice)]
        if len(devices) != len(workers):
            return 0.0
        return self.allreduce.allreduce_seconds(num_bytes, list(devices))

    def transfer_seconds(self, num_bytes: int, workers: Optional[Sequence[WorkerLike]] = None,
                         seconds_per_byte: Optional[float] = None) -> float:
        """Uncontended time to move ``num_bytes`` of state over the workers' uplinks.

        Prices checkpoint writes and restore reads the same way gradient
        buckets are priced: as link-bytes.  With an explicit
        ``seconds_per_byte`` the cost is linear (the trainers' hook);
        otherwise the bytes traverse the slowest NIC among the workers'
        machines.  Without a cluster the transfer is free (single-node
        storage is not modelled).  This is a pure pricing helper: it places
        no occupancy on any shared resource — contended storage traffic goes
        through :meth:`storage_transfer` instead.
        """
        if num_bytes <= 0:
            return 0.0
        if seconds_per_byte is not None:
            return num_bytes * float(seconds_per_byte)
        if self.cluster is None or not workers:
            return 0.0
        machines = {w.machine for w in workers if isinstance(w, GPUDevice)}
        if not machines:
            return 0.0
        nic_gbps = min(m.nic_gbps for m in self.cluster.machines if m.name in machines)
        latency = self.allreduce.latency_seconds if self.allreduce is not None else 0.0
        return latency + CostModel.transfer_seconds_at(num_bytes, nic_gbps)

    def _worker_nic_cap_gbps(self, workers: Optional[Sequence[WorkerLike]]) -> Optional[float]:
        """Slowest NIC among the workers' machines (endpoint-side bandwidth cap)."""
        if self.cluster is None or not workers:
            return None
        machines = {w.machine for w in workers if isinstance(w, GPUDevice)}
        if not machines:
            return None
        return min(m.nic_gbps for m in self.cluster.machines if m.name in machines)

    def storage_transfer(self, num_bytes: int, start_time: float, resource: str,
                         workers: Optional[Sequence[WorkerLike]] = None,
                         job: Optional[str] = None, kind: str = "checkpoint",
                         weight: float = 1.0) -> Tuple[float, float]:
        """Queue a checkpoint/restore transfer on a shared storage resource.

        Reserves a window on the named resource's timeline — concurrent
        writers genuinely wait for (or share capacity with) each other — and
        returns ``(start, end)``.  The effective bandwidth is the minimum of
        the resource's capacity and the slowest NIC among the workers'
        machines (a writer cannot outrun its own uplink).  ``weight`` is the
        job's fair-share weight on processor-sharing resources (ignored by
        FIFO ones).  Unknown resource names raise ``KeyError`` at call time,
        like job and GPU names.
        """
        timeline = self.resource_timeline(resource)
        if num_bytes <= 0:
            return float(start_time), float(start_time)
        return timeline.reserve_bytes(start_time, int(num_bytes), job=job, kind=kind,
                                      cap_gbps=self._worker_nic_cap_gbps(workers),
                                      weight=weight)

    # ------------------------------------------------------------------ #
    # Core event loop
    # ------------------------------------------------------------------ #
    def simulate_iteration(self, cost_model: CostModel, workers: Optional[Sequence[WorkerLike]] = None,
                           frozen_prefix: int = 0, cached_fp: bool = False,
                           policy: str = SchedulePolicy.VANILLA,
                           include_reference_overhead: bool = False,
                           comm_seconds_per_byte: Optional[float] = None,
                           start_time: float = 0.0,
                           trace: Optional[List[SimEvent]] = None,
                           link_resource: Optional[Union[str, Sequence[str]]] = None,
                           job_name: Optional[str] = None,
                           job_weight: float = 1.0) -> EngineIterationResult:
        """Simulate one data-parallel iteration and return its timing breakdown.

        Parameters
        ----------
        cost_model:
            Supplies per-module compute times and gradient volumes.  Treated
            as immutable: the fast-forward cache fingerprints its parameters
            once (call :meth:`clear_fast_forward_cache` after mutating one).
        workers:
            GPU devices (or names) running the job; ``None`` means one
            anonymous nominal-speed GPU.
        policy:
            One of :class:`SchedulePolicy`; the ByteScheduler policies send
            front-module buckets first and may hide leftover communication
            behind the next iteration's forward pass (see
            :meth:`simulate_run`).
        comm_seconds_per_byte:
            Linear per-byte cost overriding the all-reduce model — the hook
            the trainers use so the event path and the closed-form path price
            communication identically.
        link_resource:
            Shared link resource(s) to queue buckets on — one name, or a
            sequence of names for topology-aware routing (every fabric link
            the placement crosses: its ToR uplinks plus, cross-rack, the
            core).  Buckets keep their all-reduce transmission time but
            additionally occupy each named resource's timeline (FIFO or
            fair-share per the resource's ``policy``), completing when the
            slowest crossed link delivers them — so buckets from *other*
            jobs simulated on the same engine delay this job's
            communication (and vice versa).  A bucket's occupancy on each
            crossed link is at least the link's own serialization time of
            its bytes, so an *oversubscribed* link (e.g. ``core_gbps``
            below the ToR aggregate) stretches delivery even for a lone
            job — the knob the ``repro sim sweep`` oversubscription
            studies turn.  ``None`` keeps the job's communication private
            — the single-job behaviour, identical to earlier revisions.
        job_name:
            Owner recorded on the shared resource's occupancy windows (byte
            accounting and cancellation on preemption/resize).
        job_weight:
            Fair-share weight of this job's transfers on processor-sharing
            resources (capacity splits proportionally to weight; the default
            1.0 keeps the even split).

        With ``memoize`` on, an iteration whose complete dynamics state
        (cost model, frozen prefix, cached-FP mode, policy, reference
        overhead, communication pricing, worker names and speed factors,
        crossed links) matches a previously simulated one is
        **fast-forwarded**: its cached relative timing is replayed at
        ``start_time`` and its link reservations re-committed, producing a
        bit-identical result without running the event loop.  The replay
        only happens while every crossed link is *quiet* (no occupancy at or
        beyond ``start_time``); any other job's traffic on a crossed link
        forces a live re-simulation.  Tracing (``trace``) always bypasses
        the cache.
        """
        if policy not in SchedulePolicy.ALL:
            raise ValueError(f"unknown policy {policy!r}; expected one of {SchedulePolicy.ALL}")
        names = self._worker_names(workers)
        worker_list = list(workers) if workers else list(names)
        num_modules = len(cost_model.layer_modules)
        frozen_prefix = max(0, min(frozen_prefix, num_modules))
        link_names, link_timelines = self._resolve_links(link_resource)

        key: Optional[Tuple] = None
        if self.memoize and trace is None:
            key = self._cache_key(cost_model, names, worker_list, frozen_prefix, cached_fp,
                                  policy, include_reference_overhead, comm_seconds_per_byte,
                                  link_names, link_timelines)
            entry = self._cache.get(key)
            if entry is not None and all(t.busy_until <= start_time for t in link_timelines):
                if self.sanitizer is not None and self.sanitizer.should_spot_check():
                    self._spot_check(entry, cost_model, worker_list, names, frozen_prefix,
                                     cached_fp, policy, include_reference_overhead,
                                     comm_seconds_per_byte, start_time, link_timelines,
                                     job_name, job_weight)
                result = self._fast_forward(entry, names, start_time, link_timelines,
                                            job_name, job_weight)
                if self.observer is not None:
                    self.observer.note_iteration(job_name, result, "replay",
                                                 frozen_prefix, num_modules)
                return result

        entry = self._simulate_live(cost_model, worker_list, names, frozen_prefix, cached_fp,
                                    policy, include_reference_overhead, comm_seconds_per_byte,
                                    start_time, trace, link_timelines, job_name, job_weight)
        if key is not None and entry.cacheable:
            self._cache[key] = entry
        result = self._materialize(entry, names, start_time)
        if self.observer is not None:
            self.observer.note_iteration(job_name, result, "live", frozen_prefix, num_modules)
        return result

    def _resolve_links(self, link_resource: Optional[Union[str, Sequence[str]]]
                       ) -> Tuple[Tuple[str, ...], List[BaseResourceTimeline]]:
        """Normalize a link spec into (names, timelines) — ``None`` means private."""
        if link_resource is None:
            return (), []
        if isinstance(link_resource, str):
            return (link_resource,), [self.resource_timeline(link_resource)]
        link_names = tuple(link_resource)
        return link_names, [self.resource_timeline(name) for name in link_names]

    def _cache_key(self, cost_model: CostModel, names: List[str],
                   worker_list: List[WorkerLike], frozen_prefix: int, cached_fp: bool,
                   policy: str, include_reference_overhead: bool,
                   comm_seconds_per_byte: Optional[float],
                   link_names: Tuple[str, ...],
                   link_timelines: Sequence[BaseResourceTimeline] = ()) -> Tuple:
        """The complete dynamics state a memoized iteration is keyed on."""
        return (
            cost_model.fingerprint(),
            tuple(names),
            # Bare worker *names* price communication as zero while
            # GPUDevice workers go through the all-reduce model — the
            # same names must not share an entry across the two forms.
            all(isinstance(w, GPUDevice) for w in worker_list),
            tuple(self.gpu_speed.get(name, 1.0) for name in names),
            frozen_prefix,
            cached_fp,
            policy,
            include_reference_overhead,
            comm_seconds_per_byte,
            link_names,
            # Effective link capacities: a mid-run set_capacity (degraded
            # link) must not replay entries priced at the old rate.
            tuple(t.capacity_gbps for t in link_timelines),
        )

    def can_fast_forward(self, cost_model: CostModel,
                         workers: Optional[Sequence[WorkerLike]] = None,
                         frozen_prefix: int = 0, cached_fp: bool = False,
                         policy: str = SchedulePolicy.VANILLA,
                         include_reference_overhead: bool = False,
                         comm_seconds_per_byte: Optional[float] = None,
                         start_time: float = 0.0,
                         link_resource: Optional[Union[str, Sequence[str]]] = None
                         ) -> Optional[_FastForwardEntry]:
        """The cached entry :meth:`simulate_iteration` would replay, or ``None``.

        A non-``None`` return is the exact precondition for a fast-forward at
        ``start_time``: memoization is on, the complete dynamics key has a
        cached (cacheable) entry, and every crossed link is quiet at or after
        ``start_time``.  Pure lookup — commits nothing and counts nothing —
        so a scheduler can use it to plan a multi-iteration batch before
        committing via :meth:`fast_forward_batch`.
        """
        if not self.memoize:
            return None
        names = self._worker_names(workers)
        worker_list = list(workers) if workers else list(names)
        num_modules = len(cost_model.layer_modules)
        frozen_prefix = max(0, min(frozen_prefix, num_modules))
        link_names, link_timelines = self._resolve_links(link_resource)
        key = self._cache_key(cost_model, names, worker_list, frozen_prefix, cached_fp,
                              policy, include_reference_overhead, comm_seconds_per_byte,
                              link_names, link_timelines)
        entry = self._cache.get(key)
        if entry is None or not all(t.busy_until <= start_time for t in link_timelines):
            return None
        return entry

    def fast_forward_batch(self, cost_model: CostModel, count: int,
                           workers: Optional[Sequence[WorkerLike]] = None,
                           frozen_prefix: int = 0, cached_fp: bool = False,
                           policy: str = SchedulePolicy.VANILLA,
                           include_reference_overhead: bool = False,
                           comm_seconds_per_byte: Optional[float] = None,
                           start_time: float = 0.0,
                           link_resource: Optional[Union[str, Sequence[str]]] = None,
                           job_name: Optional[str] = None,
                           job_weight: float = 1.0) -> List[EngineIterationResult]:
        """Replay up to ``count`` consecutive memoized iterations back to back.

        Each iteration goes through exactly the per-iteration fast-forward
        pipeline — quiet-link check, sanitizer spot-check cadence, reservation
        re-commit, observer note, counter bump — at a start time accumulated
        with the same float arithmetic the one-event-per-iteration path uses
        (``next_start = start + ((start + rel_end) - start)``), so results,
        audits and metrics are bit-identical to ``count`` separate
        :meth:`simulate_iteration` calls.  The batch is truncated (possibly
        to empty) at the first iteration whose crossed links are no longer
        quiet — the caller must then fall back to live simulation for the
        remainder.  Returns the committed per-iteration results.
        """
        names = self._worker_names(workers)
        worker_list = list(workers) if workers else list(names)
        num_modules = len(cost_model.layer_modules)
        frozen_prefix = max(0, min(frozen_prefix, num_modules))
        link_names, link_timelines = self._resolve_links(link_resource)
        key = self._cache_key(cost_model, names, worker_list, frozen_prefix, cached_fp,
                              policy, include_reference_overhead, comm_seconds_per_byte,
                              link_names, link_timelines)
        results: List[EngineIterationResult] = []
        start = start_time
        for _ in range(count):
            entry = self._cache.get(key) if self.memoize else None
            if entry is None or not all(t.busy_until <= start for t in link_timelines):
                break
            if self.sanitizer is not None and self.sanitizer.should_spot_check():
                self._spot_check(entry, cost_model, worker_list, names, frozen_prefix,
                                 cached_fp, policy, include_reference_overhead,
                                 comm_seconds_per_byte, start, link_timelines,
                                 job_name, job_weight)
            result = self._fast_forward(entry, names, start, link_timelines,
                                        job_name, job_weight)
            if self.observer is not None:
                self.observer.note_iteration(job_name, result, "replay",
                                             frozen_prefix, num_modules)
            results.append(result)
            start = start + result.total
        if len(results) > 1:
            self.fast_forward_batches += 1
            self.iterations_batched += len(results)
        return results

    def _materialize(self, entry: _FastForwardEntry, names: List[str],
                     start_time: float) -> EngineIterationResult:
        """Translate a relative-time entry into an absolute-time result."""
        return EngineIterationResult(
            forward=entry.forward,
            backward=entry.backward,
            communication=entry.communication,
            exposed_communication=entry.exposed_communication,
            cache_overhead=entry.cache_overhead,
            reference_overhead=entry.reference_overhead,
            start_time=start_time,
            end_time=start_time + entry.rel_end,
            num_events=entry.num_events,
            per_worker_compute_end={name: start_time + rel
                                    for name, rel in zip(names, entry.worker_rel_end)},
        )

    def _fast_forward(self, entry: _FastForwardEntry, names: List[str], start_time: float,
                      link_timelines: List[BaseResourceTimeline], job_name: Optional[str],
                      job_weight: float) -> EngineIterationResult:
        """Replay a memoized iteration at ``start_time`` in O(#reservations).

        The cached link reservations are re-committed at their translated
        absolute times — the same ``start_time + rel`` arithmetic the live
        loop performs, including its anti-self-contention clamp to the
        previous window's committed end — so per-link byte audits and the
        delays later jobs experience are exactly what an event-by-event
        simulation would have produced.
        """
        self.iterations_fast_forwarded += 1
        own_link_ends = [0.0] * len(link_timelines)
        for link_index, rel_request, seconds, num_bytes in entry.reservations:
            request = max(start_time + rel_request, own_link_ends[link_index])
            _start, end = link_timelines[link_index].reserve(request, seconds,
                                                             num_bytes=num_bytes, job=job_name,
                                                             kind="allreduce", weight=job_weight)
            own_link_ends[link_index] = end
        return self._materialize(entry, names, start_time)

    def _spot_check(self, entry: _FastForwardEntry, cost_model: CostModel,
                    worker_list: List[WorkerLike], names: List[str], frozen_prefix: int,
                    cached_fp: bool, policy: str, include_reference_overhead: bool,
                    comm_seconds_per_byte: Optional[float], start_time: float,
                    link_timelines: List[BaseResourceTimeline], job_name: Optional[str],
                    job_weight: float) -> None:
        """Re-simulate a memoized replay live on shadow state and compare.

        The live run uses deep-copied timelines (with the sanitizer and
        observer detached so the shadow reservations feed neither the byte
        ledger nor the metrics) and the perf counters are saved/restored, so
        a sanitized run's results and counters stay bit-identical to a plain
        run's.  Raises :class:`~repro.sim.sanitizer.FastForwardDivergence`
        on any field mismatch between the cached entry and the live
        re-simulation.
        """
        saved_counters = (self.iterations_simulated, self.events_processed)
        shadows: List[BaseResourceTimeline] = []
        for timeline in link_timelines:
            attached, timeline.sanitizer = timeline.sanitizer, None
            watching, timeline.observer = timeline.observer, None
            try:
                shadows.append(copy.deepcopy(timeline))
            finally:
                timeline.sanitizer = attached
                timeline.observer = watching
        live = self._simulate_live(cost_model, worker_list, names, frozen_prefix,
                                   cached_fp, policy, include_reference_overhead,
                                   comm_seconds_per_byte, start_time, None, shadows,
                                   job_name, job_weight)
        self.iterations_simulated, self.events_processed = saved_counters
        self.sanitizer.check_fast_forward(entry, live, job=job_name,
                                          start_time=start_time)

    def _simulate_live(self, cost_model: CostModel, worker_list: List[WorkerLike],
                       names: List[str], frozen_prefix: int, cached_fp: bool, policy: str,
                       include_reference_overhead: bool, comm_seconds_per_byte: Optional[float],
                       start_time: float, trace: Optional[List[SimEvent]],
                       link_timelines: List[BaseResourceTimeline], job_name: Optional[str],
                       job_weight: float) -> _FastForwardEntry:
        """Run the event loop once, in relative time, and record its resolution.

        The loop is anchored at 0; shared-resource reservations are placed at
        ``start_time + rel`` as they happen.  A reservation that comes back
        delayed or stretched (another job's traffic on the link) feeds its
        completion back into the loop and marks the iteration uncacheable.
        """
        segments, cache_overhead, reference_overhead = self._segments(
            cost_model, frozen_prefix, cached_fp, include_reference_overhead)
        bytescheduler = policy in (SchedulePolicy.BYTESCHEDULER, SchedulePolicy.EGERIA_BYTESCHEDULER)

        queue = EventQueue()
        num_events = 0
        compute_end = {name: 0.0 for name in names}
        bucket_done_workers: Dict[int, int] = {}
        pending_buckets: List[Tuple[float, int]] = []  # min-heap of (priority, module_index)
        ready_counter = 0
        link_busy = False
        comm_busy_total = 0.0
        comm_end = 0.0
        reservations: List[Tuple[int, float, float, int]] = []
        #: Per-link end of this iteration's own most recent committed window
        #: (the anti-self-contention clamp in start_next_bucket).
        own_link_ends = [0.0] * len(link_timelines)
        cacheable = True

        def record(event: SimEvent) -> None:
            if trace is not None:
                trace.append(SimEvent(start_time + event.time, event.seq, event.kind,
                                      event.payload))

        sanitizer = self.sanitizer
        if sanitizer is not None:
            # The live loop runs in relative time: each iteration re-anchors
            # the engine's causality clock at 0.
            sanitizer.reset_clock("engine", 0.0)
            sanitizer.note("live_iteration", job=job_name, start_time=start_time)

        def start_segment(worker_pos: int, seg_index: int, now: float) -> None:
            name = names[worker_pos]
            phase, module_index, nominal = segments[seg_index]
            duration = nominal / self.speed_factor(name)
            if sanitizer is not None:
                sanitizer.check_duration(duration, f"{phase} segment of module "
                                                   f"{module_index} on {name}")
            queue.push(now + duration, "segment_done", (worker_pos, seg_index))

        def start_next_bucket(now: float) -> None:
            nonlocal link_busy, cacheable
            if link_busy or not pending_buckets:
                return
            _priority, module_index = heapq.heappop(pending_buckets)
            transmit = self._bucket_seconds(cost_model, module_index, worker_list,
                                            comm_seconds_per_byte)
            end = now + transmit
            if link_timelines and transmit > 0.0:
                # Queue on every crossed shared link: the bucket may wait for
                # (or share capacity with) other jobs' in-flight transfers,
                # and completes when the slowest crossed link delivers it.
                # Occupancy on a link is at least the link's *own*
                # serialization time of the bucket's bytes (bandwidth term
                # only — per-transfer latency stays priced once, by the
                # all-reduce model, not per crossed link), so an
                # oversubscribed link (core_gbps below the ToR aggregate)
                # genuinely stretches delivery even without competing jobs.
                num_bytes = cost_model.module_gradient_bytes(cost_model.layer_modules[module_index])
                abs_request = start_time + now
                for link_index, timeline in enumerate(link_timelines):
                    # Floor at the link's *effective* capacity so a degraded
                    # link (set_capacity) stretches occupancy immediately.
                    link_seconds = max(transmit, CostModel.transfer_seconds_at(
                        num_bytes, timeline.capacity_gbps))
                    # Clamp to this iteration's own previous window on the
                    # link: the loop serializes its buckets, so the link is
                    # genuinely free of our traffic at `now`, but with
                    # start_time != 0 the sum start_time + now can land one
                    # ULP before the committed end of the previous window
                    # ((a + b) + c vs a + (b + c)) and falsely classify the
                    # request as self-contended, leaking absolute-time
                    # rounding into the relative loop.
                    request = max(abs_request, own_link_ends[link_index])
                    link_start, link_end = timeline.reserve(request, link_seconds,
                                                            num_bytes=num_bytes, job=job_name,
                                                            kind="allreduce", weight=job_weight)
                    own_link_ends[link_index] = link_end
                    reservations.append((link_index, now, link_seconds, num_bytes))
                    # simlint: disable=SIM004 -- bit-exact equality is the memoization contract: a window is steady-state (cacheable) only when the timeline reproduced the request verbatim, so tolerance would admit near-miss windows and break bit-identical fast-forward replay
                    if link_start == request and link_end == request + link_seconds:
                        end = max(end, now + link_seconds)
                    else:
                        # Contended: another job's traffic delayed (FIFO) or
                        # stretched (fair-share) this bucket — not a steady
                        # state, so the iteration must not be memoized.
                        cacheable = False
                        end = max(end, link_end - start_time)
            link_busy = True
            queue.push(end, "comm_done", (module_index, transmit))

        for worker_pos in range(len(names)):
            if segments:
                start_segment(worker_pos, 0, 0.0)

        while queue:
            event = queue.pop()
            num_events += 1
            record(event)
            now = event.time
            if sanitizer is not None:
                sanitizer.check_event("engine", now, event.kind, job=job_name)
            if event.kind == "segment_done":
                worker_pos, seg_index = event.payload
                name = names[worker_pos]
                phase, module_index, _nominal = segments[seg_index]
                compute_end[name] = now
                if phase == "backward":
                    done = bucket_done_workers.get(module_index, 0) + 1
                    bucket_done_workers[module_index] = done
                    if done == len(names):
                        queue.push(now, "bucket_ready", (module_index,))
                if seg_index + 1 < len(segments):
                    start_segment(worker_pos, seg_index + 1, now)
            elif event.kind == "bucket_ready":
                (module_index,) = event.payload
                # ByteScheduler transmits front (high-priority) modules first;
                # the vanilla framework sends buckets in readiness order
                # (back-to-front, as their backward passes complete).
                priority = float(module_index) if bytescheduler else float(ready_counter)
                ready_counter += 1
                heapq.heappush(pending_buckets, (priority, module_index))
                start_next_bucket(now)
            elif event.kind == "comm_done":
                _module_index, duration = event.payload
                link_busy = False
                comm_busy_total += duration
                comm_end = max(comm_end, now)
                start_next_bucket(now)

        self.iterations_simulated += 1
        self.events_processed += num_events
        compute_end_max = max(compute_end.values()) if compute_end else 0.0
        rel_end = max(compute_end_max, comm_end)
        forward = sum(sec for phase, _i, sec in segments if phase == "forward")
        backward = sum(sec for phase, _i, sec in segments if phase == "backward")
        exposed = max(comm_end - compute_end_max, 0.0)
        return _FastForwardEntry(
            forward=forward,
            backward=backward,
            communication=comm_busy_total,
            exposed_communication=exposed,
            cache_overhead=cache_overhead,
            reference_overhead=reference_overhead,
            rel_end=rel_end,
            num_events=num_events,
            worker_rel_end=tuple(compute_end[name] for name in names),
            reservations=tuple(reservations),
            cacheable=cacheable,
        )

    # ------------------------------------------------------------------ #
    # Multi-iteration runs and steady-state rates
    # ------------------------------------------------------------------ #
    def simulate_run(self, cost_model: CostModel, iterations: int,
                     workers: Optional[Sequence[WorkerLike]] = None, frozen_prefix: int = 0,
                     cached_fp: bool = False, policy: str = SchedulePolicy.VANILLA,
                     include_reference_overhead: bool = False,
                     comm_seconds_per_byte: Optional[float] = None,
                     start_time: float = 0.0) -> List[EngineIterationResult]:
        """Simulate back-to-back iterations, modelling cross-iteration overlap.

        Under the vanilla policies the next iteration's forward pass starts
        only after all gradients arrived (parameters must be up to date);
        under the ByteScheduler policies leftover communication hides behind
        the next iteration's forward pass, so the next iteration starts as
        soon as compute finishes and only communication still exposed after
        the forward window delays the backward pass.

        With ``memoize`` on, every iteration after the first is a cache hit
        (the dynamics state never changes mid-run), so an N-iteration run
        costs one event-loop execution plus N - 1 O(1) replays.
        """
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        bytescheduler = policy in (SchedulePolicy.BYTESCHEDULER, SchedulePolicy.EGERIA_BYTESCHEDULER)
        results: List[EngineIterationResult] = []
        clock = start_time
        for _ in range(iterations):
            result = self.simulate_iteration(
                cost_model, workers=workers, frozen_prefix=frozen_prefix, cached_fp=cached_fp,
                policy=policy, include_reference_overhead=include_reference_overhead,
                comm_seconds_per_byte=comm_seconds_per_byte, start_time=clock)
            if bytescheduler:
                # Priority scheduling hides this iteration's exposed residual
                # behind the next iteration's forward window; only what spills
                # past that window delays the loop.
                compute_span = (max(result.per_worker_compute_end.values()) - clock
                                if result.per_worker_compute_end else result.total)
                forward_window = result.forward + result.cache_overhead + result.reference_overhead
                residual = max(result.exposed_communication - forward_window, 0.0)
                clock = clock + compute_span + residual
                results.append(EngineIterationResult(
                    forward=result.forward, backward=result.backward,
                    communication=result.communication,
                    exposed_communication=residual,
                    cache_overhead=result.cache_overhead,
                    reference_overhead=result.reference_overhead,
                    start_time=result.start_time, end_time=clock,
                    num_events=result.num_events,
                    per_worker_compute_end=result.per_worker_compute_end,
                ))
            else:
                clock = result.end_time
                results.append(result)
        return results

    def steady_iteration_seconds(self, cost_model: CostModel, workers: Optional[Sequence[WorkerLike]] = None,
                                 frozen_prefix: int = 0, cached_fp: bool = False,
                                 policy: str = SchedulePolicy.VANILLA,
                                 include_reference_overhead: bool = False,
                                 comm_seconds_per_byte: Optional[float] = None,
                                 warmup: int = 1, measured: int = 3) -> float:
        """Steady-state per-iteration time (drops ``warmup`` iterations)."""
        results = self.simulate_run(cost_model, warmup + measured, workers=workers,
                                    frozen_prefix=frozen_prefix, cached_fp=cached_fp, policy=policy,
                                    include_reference_overhead=include_reference_overhead,
                                    comm_seconds_per_byte=comm_seconds_per_byte)
        first = results[warmup - 1].end_time if warmup > 0 else results[0].start_time
        return (results[-1].end_time - first) / measured

    # ------------------------------------------------------------------ #
    # Validation against the closed-form fast path
    # ------------------------------------------------------------------ #
    def closed_form_deviation(self, cost_model: CostModel, frozen_prefix: int = 0,
                              cached_fp: bool = False, include_reference_overhead: bool = True,
                              comm_seconds_per_byte: float = 0.0) -> float:
        """Relative |engine - closed form| / closed form for a single-job iteration.

        This is the contract that keeps the closed-form path usable as a fast
        mode: the benchmarks assert the deviation stays within 5% on the
        Figure 9 configurations.
        """
        closed = cost_model.iteration(frozen_prefix=frozen_prefix, cached_fp=cached_fp,
                                      comm_seconds_per_byte=comm_seconds_per_byte,
                                      include_reference_overhead=include_reference_overhead).total
        event = self.simulate_iteration(cost_model, frozen_prefix=frozen_prefix, cached_fp=cached_fp,
                                        include_reference_overhead=include_reference_overhead,
                                        comm_seconds_per_byte=comm_seconds_per_byte).total
        if closed == 0.0:
            return 0.0 if event == 0.0 else float("inf")
        return abs(event - closed) / closed

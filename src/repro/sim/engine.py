"""Discrete-event simulation of training iterations on a cluster.

The closed-form :class:`~repro.sim.cost_model.CostModel` collapses an
iteration into ``forward + backward + max(comm - backward, 0)``.  That is fast
and adequate for a single homogeneous job, but it cannot express the
cluster-level effects the paper's distributed results depend on: stragglers
gating the all-reduce, heterogeneous GPU speeds, per-link serialization of
gradient buckets, or ByteScheduler's overlap of leftover communication with
the *next* iteration's forward pass.

This module provides :class:`EventDrivenEngine`, a discrete-event simulator
over :class:`~repro.sim.cluster.Cluster` resources:

* **per-GPU compute events** — every layer module's forward/backward pass is
  a timed segment on its worker's GPU; each GPU carries a speed factor so
  stragglers and heterogeneous accelerators simply run their segments slower;
* **per-link communication events** — each unfrozen module's gradient bucket
  becomes ready when *all* workers finished that module's backward pass (the
  slowest worker gates the collective), and buckets are serialized on the
  ring whose cost comes from :class:`~repro.sim.allreduce.AllReduceModel`;
* **overlap** — communication naturally overlaps the remaining backward
  compute (buckets are transmitted while earlier layers still run BP,
  ByteScheduler-style front-first priority optionally reorders them), and in
  multi-iteration runs leftover communication can hide behind the next
  iteration's forward pass under the ByteScheduler policies;
* **shared-resource queues** — with ``link_resource`` set, every gradient
  bucket additionally occupies the named shared resource's timeline
  (:mod:`repro.sim.resources`; first-fit FIFO or processor-sharing,
  per-resource ``policy``), so concurrent jobs' buckets genuinely delay
  each other on the fabric instead of being scaled by a fudge factor; the
  same timelines price checkpoint/restore traffic on shared storage targets
  (:meth:`EventDrivenEngine.storage_transfer`).  ``link_resource`` also
  accepts a *sequence* of resource names — the per-ToR topology mode, where
  a bucket reserves capacity on every fabric link its placement crosses
  (its ToR uplinks and, cross-rack, the core) and completes when the
  slowest crossed link delivers it.

The engine is deterministic: event ties are broken by insertion sequence and
no randomness is used, so two runs with identical inputs produce identical
timelines.  For single-job configurations without communication it reproduces
the closed-form :class:`CostModel` totals exactly (see
:meth:`EventDrivenEngine.closed_form_deviation`), which keeps the cheap
closed-form path usable as a validated fast mode.
"""

from __future__ import annotations

import heapq
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .allreduce import AllReduceModel
from .cluster import Cluster, GPUDevice
from .cost_model import CostModel
from .resources import BaseResourceTimeline, ResourcePool, SharedResource
from .timeline import SchedulePolicy

__all__ = ["SimEvent", "EventQueue", "EngineIterationResult", "EventDrivenEngine"]


@dataclass(frozen=True)
class SimEvent:
    """One timestamped occurrence inside the simulation."""

    time: float
    seq: int
    kind: str
    payload: Tuple

    def as_dict(self) -> Dict[str, object]:
        """Plain-data view of the event."""
        return {"time": self.time, "seq": self.seq, "kind": self.kind, "payload": self.payload}


class EventQueue:
    """Min-heap of events ordered by (time, insertion sequence).

    The insertion sequence makes simultaneous events pop in a deterministic
    order, which in turn makes every simulation reproducible bit-for-bit.
    """

    def __init__(self) -> None:
        """Start with an empty heap and a zeroed insertion sequence."""
        self._heap: List[Tuple[float, int, str, Tuple]] = []
        self._seq = 0

    def push(self, time: float, kind: str, payload: Tuple = ()) -> None:
        """Schedule an event at ``time`` (ties break by insertion order)."""
        heapq.heappush(self._heap, (float(time), self._seq, kind, payload))
        self._seq += 1

    def pop(self) -> SimEvent:
        """Remove and return the earliest pending event."""
        time, seq, kind, payload = heapq.heappop(self._heap)
        return SimEvent(time, seq, kind, payload)

    def __len__(self) -> int:
        """Number of pending events."""
        return len(self._heap)

    def __bool__(self) -> bool:
        """Whether any event is still pending."""
        return bool(self._heap)


@dataclass
class EngineIterationResult:
    """Timing decomposition of one simulated iteration.

    ``forward``/``backward`` are the *nominal* (speed-factor-free) compute
    sums, matching the closed-form breakdown; the wall-clock effect of slow
    GPUs shows up in ``end_time`` and ``per_worker_compute_end``.
    """

    forward: float
    backward: float
    communication: float
    exposed_communication: float
    cache_overhead: float
    reference_overhead: float
    start_time: float
    end_time: float
    num_events: int
    per_worker_compute_end: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        """Wall-clock span of the iteration."""
        return self.end_time - self.start_time

    @property
    def compute(self) -> float:
        """Nominal forward + backward compute seconds."""
        return self.forward + self.backward

    def as_dict(self) -> Dict[str, float]:
        """Plain-data timing breakdown (what the trainers record)."""
        return {
            "forward": self.forward,
            "backward": self.backward,
            "communication": self.communication,
            "exposed_communication": self.exposed_communication,
            "cache_overhead": self.cache_overhead,
            "reference_overhead": self.reference_overhead,
            "total": self.total,
        }


#: A worker handed to the engine: either a topology-aware GPU device or a
#: bare name (single-node simulations that need no cluster graph).
WorkerLike = Union[GPUDevice, str]


class EventDrivenEngine:
    """Discrete-event simulator of training iterations over cluster resources.

    Parameters
    ----------
    cluster:
        Optional topology; required only when communication costs should be
        derived from link bandwidths (multi-worker jobs).
    allreduce:
        Communication model used to price gradient buckets; built from
        ``cluster`` when omitted.
    comm_scale:
        **Deprecated.** Flat multiplier on every bucket's transmission time,
        formerly used to fake bandwidth sharing between concurrent
        multi-machine jobs.  A scale of ``k`` is kept as an exact shim for an
        equivalent shared link running at ``bandwidth / k`` — but real
        contention should be modelled with named shared resources
        (``link_resource``/:meth:`storage_transfer`) instead.
    """

    def __init__(self, cluster: Optional[Cluster] = None, allreduce: Optional[AllReduceModel] = None,
                 comm_scale: float = 1.0):
        """Bind the engine to a cluster's topology and shared resources."""
        self.cluster = cluster
        self.allreduce = allreduce or (AllReduceModel(cluster) if cluster is not None else None)
        #: Shared-resource timelines (links + storage); populated from the
        #: cluster's named resources, extendable with :meth:`add_resource`.
        self.resources = ResourcePool(cluster.resources.values() if cluster is not None else None)
        self._comm_scale = 1.0
        if comm_scale != 1.0:
            self.comm_scale = comm_scale  # route through the deprecation shim
        #: Per-GPU relative speed (1.0 = nominal; 0.5 = half speed, i.e. a
        #: straggler whose compute segments take twice as long).
        self.gpu_speed: Dict[str, float] = {}

    # ------------------------------------------------------------------ #
    # Deprecated comm_scale shim
    # ------------------------------------------------------------------ #
    @property
    def comm_scale(self) -> float:
        """Deprecated flat multiplier on every transfer (1.0 = off)."""
        return self._comm_scale

    @comm_scale.setter
    def comm_scale(self, value: float) -> None:
        """Accept-and-warn shim: scale ``k`` == a link at ``bandwidth/k``."""
        value = float(value)
        if value <= 0:
            raise ValueError("comm_scale must be positive")
        if value != 1.0:
            warnings.warn(
                "comm_scale is deprecated: model cross-job contention with shared "
                "resources (Cluster resources + link_resource / storage_transfer) "
                f"instead. The scale {value} is applied as the exact equivalent of a "
                f"shared link running at bandwidth/{value}.",
                DeprecationWarning, stacklevel=2)
        self._comm_scale = value

    # ------------------------------------------------------------------ #
    # Scenario knobs
    # ------------------------------------------------------------------ #
    def add_resource(self, resource: SharedResource) -> BaseResourceTimeline:
        """Register an extra shared resource (name validated at use time)."""
        return self.resources.add(resource)

    def resource_timeline(self, name: str) -> BaseResourceTimeline:
        """The named resource's timeline, syncing late cluster additions.

        Resources registered on the cluster *after* this engine was built
        (``cluster.add_resource``) are adopted on first use, so the cluster
        stays the single place to declare resources.  Unknown names raise
        ``KeyError`` at call time, like job and GPU names.
        """
        timeline = self.resources.get(name)
        if timeline is None and self.cluster is not None and name in self.cluster.resources:
            timeline = self.resources.add(self.cluster.resources[name])
        if timeline is None:
            return self.resources.require(name)  # raises with the known names
        return timeline

    def set_gpu_speed(self, gpu_name: str, factor: float) -> None:
        """Set a GPU's relative speed (straggler < 1.0 < fast heterogeneous GPU)."""
        if factor <= 0:
            raise ValueError(f"speed factor must be positive, got {factor}")
        self.gpu_speed[str(gpu_name)] = float(factor)

    def speed_factor(self, gpu_name: str) -> float:
        """The GPU's relative speed (1.0 when never overridden)."""
        return self.gpu_speed.get(str(gpu_name), 1.0)

    # ------------------------------------------------------------------ #
    # Segment construction
    # ------------------------------------------------------------------ #
    @staticmethod
    def _worker_names(workers: Optional[Sequence[WorkerLike]]) -> List[str]:
        if not workers:
            return ["gpu0"]
        return [w.name if isinstance(w, GPUDevice) else str(w) for w in workers]

    def _segments(self, cost_model: CostModel, frozen_prefix: int, cached_fp: bool,
                  include_reference_overhead: bool) -> Tuple[List[Tuple[str, int, float]], float, float]:
        """Nominal per-module compute segments of one iteration, in execution order.

        Returns ``(segments, cache_overhead, reference_overhead)`` where each
        segment is ``(phase, module_index, seconds)``.  The ordering mirrors
        the closed-form accounting: reference-model overhead and cache
        prefetch run before the forward pass, the backward pass runs last so
        that gradient buckets only become available while BP is in flight.
        """
        modules = cost_model.layer_modules
        frozen_prefix = max(0, min(frozen_prefix, len(modules)))
        segments: List[Tuple[str, int, float]] = []

        reference_overhead = 0.0
        if include_reference_overhead:
            baseline_compute = sum(cost_model.module_forward_time(m) * (1 + cost_model.gpu.bp_fp_ratio)
                                   for m in modules)
            reference_overhead = baseline_compute * cost_model.reference_overhead_fraction
            segments.append(("reference", -1, reference_overhead))

        cache_overhead = 0.0
        if cached_fp and frozen_prefix > 0:
            saved_forward = sum(cost_model.module_forward_time(m) for m in modules[:frozen_prefix])
            cache_overhead = saved_forward * cost_model.cache_overhead_fraction
            segments.append(("cache", -1, cache_overhead))

        for index, module in enumerate(modules):
            if index < frozen_prefix and cached_fp:
                continue  # served from the activation cache
            segments.append(("forward", index, cost_model.module_forward_time(module)))
        for index in range(len(modules) - 1, frozen_prefix - 1, -1):
            segments.append(("backward", index, cost_model.module_backward_time(modules[index])))
        return segments, cache_overhead, reference_overhead

    def _bucket_seconds(self, cost_model: CostModel, module_index: int,
                        workers: Sequence[WorkerLike],
                        comm_seconds_per_byte: Optional[float]) -> float:
        """Transmission time of one module's gradient bucket."""
        num_bytes = cost_model.module_gradient_bytes(cost_model.layer_modules[module_index])
        if comm_seconds_per_byte is not None:
            return num_bytes * comm_seconds_per_byte * self.comm_scale
        if self.allreduce is None or len(workers) <= 1:
            return 0.0
        devices = [w for w in workers if isinstance(w, GPUDevice)]
        if len(devices) != len(workers):
            return 0.0
        return self.allreduce.allreduce_seconds(num_bytes, list(devices)) * self.comm_scale

    def transfer_seconds(self, num_bytes: int, workers: Optional[Sequence[WorkerLike]] = None,
                         seconds_per_byte: Optional[float] = None) -> float:
        """Uncontended time to move ``num_bytes`` of state over the workers' uplinks.

        Prices checkpoint writes and restore reads the same way gradient
        buckets are priced: as link-bytes.  With an explicit
        ``seconds_per_byte`` the cost is linear (the trainers' hook);
        otherwise the bytes traverse the slowest NIC among the workers'
        machines.  Without a cluster the transfer is free (single-node
        storage is not modelled).  This is a pure pricing helper: it places
        no occupancy on any shared resource — contended storage traffic goes
        through :meth:`storage_transfer` instead.
        """
        if num_bytes <= 0:
            return 0.0
        if seconds_per_byte is not None:
            return num_bytes * float(seconds_per_byte) * self.comm_scale
        if self.cluster is None or not workers:
            return 0.0
        machines = {w.machine for w in workers if isinstance(w, GPUDevice)}
        if not machines:
            return 0.0
        nic_gbps = min(m.nic_gbps for m in self.cluster.machines if m.name in machines)
        latency = self.allreduce.latency_seconds if self.allreduce is not None else 0.0
        return latency + CostModel.transfer_seconds_at(num_bytes, nic_gbps) * self.comm_scale

    def _worker_nic_cap_gbps(self, workers: Optional[Sequence[WorkerLike]]) -> Optional[float]:
        """Slowest NIC among the workers' machines (endpoint-side bandwidth cap)."""
        if self.cluster is None or not workers:
            return None
        machines = {w.machine for w in workers if isinstance(w, GPUDevice)}
        if not machines:
            return None
        return min(m.nic_gbps for m in self.cluster.machines if m.name in machines)

    def storage_transfer(self, num_bytes: int, start_time: float, resource: str,
                         workers: Optional[Sequence[WorkerLike]] = None,
                         job: Optional[str] = None, kind: str = "checkpoint") -> Tuple[float, float]:
        """Queue a checkpoint/restore transfer on a shared storage resource.

        Reserves a FIFO window on the named resource's timeline — concurrent
        writers genuinely wait for each other — and returns ``(start, end)``.
        The effective bandwidth is the minimum of the resource's capacity and
        the slowest NIC among the workers' machines (a writer cannot outrun
        its own uplink).  Unknown resource names raise ``KeyError`` at call
        time, like job and GPU names.
        """
        timeline = self.resource_timeline(resource)
        if num_bytes <= 0:
            return float(start_time), float(start_time)
        return timeline.reserve_bytes(start_time, int(num_bytes), job=job, kind=kind,
                                      cap_gbps=self._worker_nic_cap_gbps(workers))

    # ------------------------------------------------------------------ #
    # Core event loop
    # ------------------------------------------------------------------ #
    def simulate_iteration(self, cost_model: CostModel, workers: Optional[Sequence[WorkerLike]] = None,
                           frozen_prefix: int = 0, cached_fp: bool = False,
                           policy: str = SchedulePolicy.VANILLA,
                           include_reference_overhead: bool = False,
                           comm_seconds_per_byte: Optional[float] = None,
                           start_time: float = 0.0,
                           trace: Optional[List[SimEvent]] = None,
                           link_resource: Optional[Union[str, Sequence[str]]] = None,
                           job_name: Optional[str] = None) -> EngineIterationResult:
        """Simulate one data-parallel iteration and return its timing breakdown.

        Parameters
        ----------
        cost_model:
            Supplies per-module compute times and gradient volumes.
        workers:
            GPU devices (or names) running the job; ``None`` means one
            anonymous nominal-speed GPU.
        policy:
            One of :class:`SchedulePolicy`; the ByteScheduler policies send
            front-module buckets first and may hide leftover communication
            behind the next iteration's forward pass (see
            :meth:`simulate_run`).
        comm_seconds_per_byte:
            Linear per-byte cost overriding the all-reduce model — the hook
            the trainers use so the event path and the closed-form path price
            communication identically.
        link_resource:
            Shared link resource(s) to queue buckets on — one name, or a
            sequence of names for topology-aware routing (every fabric link
            the placement crosses: its ToR uplinks plus, cross-rack, the
            core).  Buckets keep their all-reduce transmission time but
            additionally occupy each named resource's timeline (FIFO or
            fair-share per the resource's ``policy``), completing when the
            slowest crossed link delivers them — so buckets from *other*
            jobs simulated on the same engine delay this job's
            communication (and vice versa).  ``None`` keeps the job's
            communication private — the single-job behaviour, identical to
            earlier revisions.
        job_name:
            Owner recorded on the shared resource's occupancy windows (byte
            accounting and cancellation on preemption/resize).
        """
        if policy not in SchedulePolicy.ALL:
            raise ValueError(f"unknown policy {policy!r}; expected one of {SchedulePolicy.ALL}")
        names = self._worker_names(workers)
        worker_list = list(workers) if workers else list(names)
        segments, cache_overhead, reference_overhead = self._segments(
            cost_model, frozen_prefix, cached_fp, include_reference_overhead)
        num_modules = len(cost_model.layer_modules)
        frozen_prefix = max(0, min(frozen_prefix, num_modules))
        bytescheduler = policy in (SchedulePolicy.BYTESCHEDULER, SchedulePolicy.EGERIA_BYTESCHEDULER)
        if link_resource is None:
            link_timelines: List[BaseResourceTimeline] = []
        elif isinstance(link_resource, str):
            link_timelines = [self.resource_timeline(link_resource)]
        else:
            link_timelines = [self.resource_timeline(name) for name in link_resource]

        queue = EventQueue()
        num_events = 0
        compute_end = {name: start_time for name in names}
        bucket_done_workers: Dict[int, int] = {}
        pending_buckets: List[Tuple[float, int]] = []  # min-heap of (priority, module_index)
        ready_counter = 0
        link_busy = False
        comm_busy_total = 0.0
        comm_end = start_time
        last_backward_end = start_time

        def record(event: SimEvent) -> None:
            if trace is not None:
                trace.append(event)

        def start_segment(worker_pos: int, seg_index: int, now: float) -> None:
            name = names[worker_pos]
            phase, module_index, nominal = segments[seg_index]
            duration = nominal / self.speed_factor(name)
            queue.push(now + duration, "segment_done", (worker_pos, seg_index))

        def start_next_bucket(now: float) -> None:
            nonlocal link_busy
            if link_busy or not pending_buckets:
                return
            _priority, module_index = heapq.heappop(pending_buckets)
            transmit = self._bucket_seconds(cost_model, module_index, worker_list, comm_seconds_per_byte)
            end = now + transmit
            if link_timelines and transmit > 0.0:
                # Queue on every crossed shared link: the bucket may wait for
                # (or share capacity with) other jobs' in-flight transfers,
                # and completes when the slowest crossed link delivers it.
                num_bytes = cost_model.module_gradient_bytes(cost_model.layer_modules[module_index])
                for timeline in link_timelines:
                    _start, link_end = timeline.reserve(now, transmit, num_bytes=num_bytes,
                                                        job=job_name, kind="allreduce")
                    end = max(end, link_end)
            link_busy = True
            queue.push(end, "comm_done", (module_index, transmit))

        for worker_pos in range(len(names)):
            if segments:
                start_segment(worker_pos, 0, start_time)

        while queue:
            event = queue.pop()
            num_events += 1
            record(event)
            now = event.time
            if event.kind == "segment_done":
                worker_pos, seg_index = event.payload
                name = names[worker_pos]
                phase, module_index, _nominal = segments[seg_index]
                compute_end[name] = now
                if phase == "backward":
                    last_backward_end = max(last_backward_end, now)
                    done = bucket_done_workers.get(module_index, 0) + 1
                    bucket_done_workers[module_index] = done
                    if done == len(names):
                        queue.push(now, "bucket_ready", (module_index,))
                if seg_index + 1 < len(segments):
                    start_segment(worker_pos, seg_index + 1, now)
            elif event.kind == "bucket_ready":
                (module_index,) = event.payload
                # ByteScheduler transmits front (high-priority) modules first;
                # the vanilla framework sends buckets in readiness order
                # (back-to-front, as their backward passes complete).
                priority = float(module_index) if bytescheduler else float(ready_counter)
                ready_counter += 1
                heapq.heappush(pending_buckets, (priority, module_index))
                start_next_bucket(now)
            elif event.kind == "comm_done":
                _module_index, duration = event.payload
                link_busy = False
                comm_busy_total += duration
                comm_end = max(comm_end, now)
                start_next_bucket(now)

        compute_end_max = max(compute_end.values()) if compute_end else start_time
        end_time = max(compute_end_max, comm_end)
        forward = sum(sec for phase, _i, sec in segments if phase == "forward")
        backward = sum(sec for phase, _i, sec in segments if phase == "backward")
        exposed = max(comm_end - compute_end_max, 0.0)
        return EngineIterationResult(
            forward=forward,
            backward=backward,
            communication=comm_busy_total,
            exposed_communication=exposed,
            cache_overhead=cache_overhead,
            reference_overhead=reference_overhead,
            start_time=start_time,
            end_time=end_time,
            num_events=num_events,
            per_worker_compute_end=dict(compute_end),
        )

    # ------------------------------------------------------------------ #
    # Multi-iteration runs and steady-state rates
    # ------------------------------------------------------------------ #
    def simulate_run(self, cost_model: CostModel, iterations: int,
                     workers: Optional[Sequence[WorkerLike]] = None, frozen_prefix: int = 0,
                     cached_fp: bool = False, policy: str = SchedulePolicy.VANILLA,
                     include_reference_overhead: bool = False,
                     comm_seconds_per_byte: Optional[float] = None,
                     start_time: float = 0.0) -> List[EngineIterationResult]:
        """Simulate back-to-back iterations, modelling cross-iteration overlap.

        Under the vanilla policies the next iteration's forward pass starts
        only after all gradients arrived (parameters must be up to date);
        under the ByteScheduler policies leftover communication hides behind
        the next iteration's forward pass, so the next iteration starts as
        soon as compute finishes and only communication still exposed after
        the forward window delays the backward pass.
        """
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        bytescheduler = policy in (SchedulePolicy.BYTESCHEDULER, SchedulePolicy.EGERIA_BYTESCHEDULER)
        results: List[EngineIterationResult] = []
        clock = start_time
        for _ in range(iterations):
            result = self.simulate_iteration(
                cost_model, workers=workers, frozen_prefix=frozen_prefix, cached_fp=cached_fp,
                policy=policy, include_reference_overhead=include_reference_overhead,
                comm_seconds_per_byte=comm_seconds_per_byte, start_time=clock)
            if bytescheduler:
                # Priority scheduling hides this iteration's exposed residual
                # behind the next iteration's forward window; only what spills
                # past that window delays the loop.
                compute_span = (max(result.per_worker_compute_end.values()) - clock
                                if result.per_worker_compute_end else result.total)
                forward_window = result.forward + result.cache_overhead + result.reference_overhead
                residual = max(result.exposed_communication - forward_window, 0.0)
                clock = clock + compute_span + residual
                results.append(EngineIterationResult(
                    forward=result.forward, backward=result.backward,
                    communication=result.communication,
                    exposed_communication=residual,
                    cache_overhead=result.cache_overhead,
                    reference_overhead=result.reference_overhead,
                    start_time=result.start_time, end_time=clock,
                    num_events=result.num_events,
                    per_worker_compute_end=result.per_worker_compute_end,
                ))
            else:
                clock = result.end_time
                results.append(result)
        return results

    def steady_iteration_seconds(self, cost_model: CostModel, workers: Optional[Sequence[WorkerLike]] = None,
                                 frozen_prefix: int = 0, cached_fp: bool = False,
                                 policy: str = SchedulePolicy.VANILLA,
                                 include_reference_overhead: bool = False,
                                 comm_seconds_per_byte: Optional[float] = None,
                                 warmup: int = 1, measured: int = 3) -> float:
        """Steady-state per-iteration time (drops ``warmup`` iterations)."""
        results = self.simulate_run(cost_model, warmup + measured, workers=workers,
                                    frozen_prefix=frozen_prefix, cached_fp=cached_fp, policy=policy,
                                    include_reference_overhead=include_reference_overhead,
                                    comm_seconds_per_byte=comm_seconds_per_byte)
        first = results[warmup - 1].end_time if warmup > 0 else results[0].start_time
        return (results[-1].end_time - first) / measured

    # ------------------------------------------------------------------ #
    # Validation against the closed-form fast path
    # ------------------------------------------------------------------ #
    def closed_form_deviation(self, cost_model: CostModel, frozen_prefix: int = 0,
                              cached_fp: bool = False, include_reference_overhead: bool = True,
                              comm_seconds_per_byte: float = 0.0) -> float:
        """Relative |engine - closed form| / closed form for a single-job iteration.

        This is the contract that keeps the closed-form path usable as a fast
        mode: the benchmarks assert the deviation stays within 5% on the
        Figure 9 configurations.
        """
        closed = cost_model.iteration(frozen_prefix=frozen_prefix, cached_fp=cached_fp,
                                      comm_seconds_per_byte=comm_seconds_per_byte,
                                      include_reference_overhead=include_reference_overhead).total
        event = self.simulate_iteration(cost_model, frozen_prefix=frozen_prefix, cached_fp=cached_fp,
                                        include_reference_overhead=include_reference_overhead,
                                        comm_seconds_per_byte=comm_seconds_per_byte).total
        if closed == 0.0:
            return 0.0 if event == 0.0 else float("inf")
        return abs(event - closed) / closed

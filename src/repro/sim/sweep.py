"""Parallel scenario sweeps: a parameter grid fanned across worker processes.

The cluster simulator answers *what-if* questions — what happens to makespan
when the core fabric is oversubscribed, when the discipline flips to fair
share, when a job's placement changes?  Answering them well means running the
same scenario many times with one knob turned, which is embarrassingly
parallel.  This module makes that a first-class, reproducible artifact: a
*sweep* is a plain-JSON description of a base scenario plus a parameter grid,
and :func:`run_sweep` (the ``repro sim sweep`` CLI subcommand) expands the
grid into independent *cells*, runs each cell's scenario through
:func:`~repro.sim.scenario.run_scenario` — serially or across a
``multiprocessing`` pool — and merges the per-cell reports into one
deterministic result table.

Sweep schema::

    {
      "scenario":      { ... },            # inline base scenario ...
      "scenario_file": "scenario.json",    # ... or a path relative to the sweep file
      "grid": {
        "cluster.core_gbps": [0.5, 1.0, 2.0, 4.0],   # dotted path -> values
        "placement": ["tor_pack", "round_robin"],
        "jobs.0.num_workers": [2, 4]
      },
      "workers": 2,                        # default pool size (CLI --workers wins)
      "seed": 0                            # base seed; cell i runs at seed + i
    }

Grid keys are dotted paths into the scenario dict; integer components index
into lists (``jobs.0.num_workers``).  Cells are the cartesian product of the
grid values in *key insertion order* (the last key varies fastest), each with
a deterministic per-cell seed (``seed + cell index``) — so the cell list, the
per-cell results and the merged table are identical no matter how many
workers ran them or in which order they finished.  The parallel and serial
paths produce byte-identical output (asserted by the sweep test suite and
CI's ``sweep-smoke`` step); workers only buy wall-clock time.
"""

from __future__ import annotations

import atexit
import copy
import itertools
import json
import multiprocessing
import os
from typing import Dict, List, Optional, Tuple, Union

from .scenario import _check_keys, run_scenario

__all__ = ["expand_grid", "build_cells", "run_sweep", "shutdown_pool"]

_SWEEP_KEYS = {"scenario", "scenario_file", "grid", "workers", "seed"}

#: Keys of the full per-cell scenario report kept in the merged table.  The
#: cluster description and trace sizes are identical across cells (or
#: implied by the overrides) and would bloat the merged JSON.
_CELL_RESULT_KEYS = ("makespan", "jobs", "utilization", "resources", "perf")


def _apply_override(spec: Dict, dotted_path: str, value: object) -> None:
    """Set ``dotted_path`` (e.g. ``cluster.core_gbps``, ``jobs.0.policy``) in place.

    Intermediate dict levels are created on demand (overriding
    ``cluster.core_gbps`` must work even when the base scenario omits the
    ``cluster`` section entirely); list indices must already exist — a sweep
    cannot invent a job that is not in the base scenario.
    """
    parts = dotted_path.split(".")
    node: object = spec
    for position, part in enumerate(parts[:-1]):
        if isinstance(node, list):
            node = node[int(part)]
        else:
            if part not in node:
                node[part] = {}
            node = node[part]
        if not isinstance(node, (dict, list)):
            prefix = ".".join(parts[: position + 2])
            raise ValueError(f"grid path {dotted_path!r}: {prefix!r} is not a dict or list")
    leaf = parts[-1]
    if isinstance(node, list):
        node[int(leaf)] = value
    else:
        node[leaf] = value


def expand_grid(grid: Dict[str, List]) -> List[Dict[str, object]]:
    """Cartesian product of the grid, one ``{dotted path: value}`` per cell.

    Cells come in row-major order over the grid's *insertion* order (the
    last listed key varies fastest) — the deterministic cell indexing the
    per-cell seeds and the merged table rely on.
    """
    if not grid:
        raise ValueError("sweep grid is empty")
    keys = list(grid)
    value_lists = []
    for key in keys:
        values = grid[key]
        if not isinstance(values, (list, tuple)) or not values:
            raise ValueError(f"grid key {key!r} needs a non-empty list of values")
        value_lists.append(list(values))
    return [dict(zip(keys, combo)) for combo in itertools.product(*value_lists)]


def _resolve_base(sweep: Dict, base_dir: Optional[str] = None) -> Tuple[Dict, int]:
    """The sweep's base scenario (inline or loaded) and its base seed."""
    _check_keys(sweep, _SWEEP_KEYS, "sweep")
    has_inline = sweep.get("scenario") is not None
    has_file = sweep.get("scenario_file") is not None
    if has_inline == has_file:
        raise ValueError("give exactly one of 'scenario' or 'scenario_file'")
    if has_file:
        path = str(sweep["scenario_file"])
        if base_dir is not None and not os.path.isabs(path):
            path = os.path.join(base_dir, path)
        with open(path, "r", encoding="utf-8") as handle:
            base_scenario = json.load(handle)
    else:
        base_scenario = sweep["scenario"]
    base_seed = int(sweep.get("seed", base_scenario.get("seed", 0)))
    return base_scenario, base_seed


def _cell_scenario(base_scenario: Dict, params: Dict[str, object], seed: int) -> Dict:
    """A cell's full scenario: deep-copied base + overrides + per-cell seed.

    The single materialization path — the serial runner, the parent-side
    :func:`build_cells` and the persistent pool workers all call it, so a
    cell's scenario is byte-identical no matter where it is built.
    """
    scenario = copy.deepcopy(base_scenario)
    for dotted_path, value in params.items():
        _apply_override(scenario, dotted_path, value)
    scenario["seed"] = seed
    return scenario


def build_cells(sweep: Dict, base_dir: Optional[str] = None) -> List[Dict[str, object]]:
    """Expand a sweep spec into fully-resolved cells, ready to run.

    Each cell is ``{"index", "params", "seed", "scenario"}`` where
    ``scenario`` is a deep copy of the base scenario with the cell's
    overrides and per-cell seed (``base seed + cell index``) applied.
    ``base_dir`` anchors a relative ``scenario_file`` (the sweep file's own
    directory in the CLI).
    """
    base_scenario, base_seed = _resolve_base(sweep, base_dir)
    cells: List[Dict[str, object]] = []
    for index, params in enumerate(expand_grid(dict(sweep.get("grid") or {}))):
        cells.append({"index": index, "params": params, "seed": base_seed + index,
                      "scenario": _cell_scenario(base_scenario, params, base_seed + index)})
    return cells


def _run_cell(cell: Dict[str, object]) -> Dict[str, object]:
    """Run one cell's scenario to its merged-table row (must stay picklable).

    When the base scenario (or a grid override) enables ``observe``, the
    cell's SimScope metrics *summary* rides along as a ``"metrics"`` key —
    compact per-metric statistics, not the full time-series, so the merged
    table stays small.  Metrics are sim-time-derived and therefore identical
    no matter how many workers ran the sweep.
    """
    report = run_scenario(cell["scenario"])
    row: Dict[str, object] = {"index": cell["index"], "params": cell["params"],
                              "seed": cell["seed"]}
    for key in _CELL_RESULT_KEYS:
        row[key] = report[key]
    if "metrics" in report:
        row["metrics"] = report["metrics"]
    return row


# --------------------------------------------------------------------- #
# Persistent worker pool
# --------------------------------------------------------------------- #
#: The live pool and the configuration it was built for:
#: ``(pool, start method, size, serialized base scenario)``.  A sweep whose
#: configuration matches reuses the pool as-is; any mismatch tears it down
#: and builds a fresh one, so reuse can never leak state across bases.
_POOL_STATE: Optional[Tuple[object, str, int, str]] = None

#: Per-worker read-only base scenario, installed once by :func:`_init_worker`
#: when the worker process starts; cells then travel as (index, params, seed)
#: deltas instead of full scenario dicts.
_WORKER_BASE: Optional[Dict] = None


def _init_worker(base_scenario: Dict) -> None:
    """Pool initializer: cache the shared read-only base scenario."""
    global _WORKER_BASE
    _WORKER_BASE = base_scenario


def _run_delta(delta: Tuple[int, Dict[str, object], int]) -> Dict[str, object]:
    """Materialize and run one cell from its (index, params, seed) delta."""
    index, params, seed = delta
    if _WORKER_BASE is None:
        raise RuntimeError("sweep worker used before _init_worker installed the base scenario")
    return _run_cell({"index": index, "params": params, "seed": seed,
                      "scenario": _cell_scenario(_WORKER_BASE, params, seed)})


def shutdown_pool() -> None:
    """Tear down the persistent sweep pool (no-op when none is live).

    Registered via :mod:`atexit` so normal interpreter shutdown reaps the
    workers; call it explicitly to reclaim the processes earlier (tests, long
    sessions that are done sweeping).
    """
    global _POOL_STATE
    if _POOL_STATE is None:
        return
    pool = _POOL_STATE[0]
    _POOL_STATE = None
    pool.close()
    pool.join()


atexit.register(shutdown_pool)


def _ensure_pool(size: int, base_scenario: Dict):
    """The persistent pool for ``(size, base scenario)``, (re)built on miss."""
    global _POOL_STATE
    # fork shares the already-imported interpreter state (cheap start,
    # identical module versions); spawn is the fallback where fork does
    # not exist.
    method = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    base_key = json.dumps(base_scenario, sort_keys=True)
    if _POOL_STATE is not None:
        pool, live_method, live_size, live_key = _POOL_STATE
        if (live_method, live_size, live_key) == (method, size, base_key):
            return pool
        shutdown_pool()
    pool = multiprocessing.get_context(method).Pool(
        size, initializer=_init_worker, initargs=(base_scenario,))
    _POOL_STATE = (pool, method, size, base_key)
    return pool


def run_sweep(sweep: Union[str, Dict], workers: Optional[int] = None) -> Dict[str, object]:
    """Run every cell of a sweep (dict or path to a JSON file); merge results.

    ``workers`` overrides the spec's pool size (1 = serial, in-process).
    The merged output is **independent of the worker count** (it is not even
    recorded in it): cells are deterministic, carry their own seeds, and are
    merged in cell order no matter which process finished first.  Returns::

        {"grid": ..., "num_cells": N, "cells": [row, ...]}

    where each row holds the cell's ``params``, ``seed``, ``makespan``,
    per-job records, utilization, per-resource occupancy and engine perf
    counters.

    Parallel sweeps run on a **persistent** worker pool: the first parallel
    sweep pays the process spawns and ships the base scenario once (pool
    initializer), subsequent sweeps with the same worker count and base
    scenario reuse the live workers and dispatch each cell as a tiny
    ``(index, params, seed)`` delta.  A different base or pool size rebuilds
    the pool transparently; :func:`shutdown_pool` (also registered atexit)
    reaps it.
    """
    base_dir = None
    if isinstance(sweep, str):
        base_dir = os.path.dirname(os.path.abspath(sweep))
        with open(sweep, "r", encoding="utf-8") as handle:
            spec = json.load(handle)
    else:
        spec = dict(sweep)
    base_scenario, base_seed = _resolve_base(spec, base_dir)
    deltas = [(index, params, base_seed + index)
              for index, params in enumerate(expand_grid(dict(spec.get("grid") or {})))]
    pool_size = int(workers if workers is not None else spec.get("workers", 1))
    if pool_size < 1:
        raise ValueError("workers must be at least 1")
    pool_size = min(pool_size, len(deltas))

    if pool_size == 1:
        rows = [_run_cell({"index": index, "params": params, "seed": seed,
                           "scenario": _cell_scenario(base_scenario, params, seed)})
                for index, params, seed in deltas]
    else:
        # pool.map returns results in cell order regardless of completion
        # order, which keeps the merged table deterministic.
        pool = _ensure_pool(pool_size, base_scenario)
        rows = pool.map(_run_delta, deltas)

    return {
        "grid": dict(spec.get("grid") or {}),
        "num_cells": len(deltas),
        "cells": rows,
    }

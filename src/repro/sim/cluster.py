"""Cluster and network topology model for distributed-training simulation.

The paper's multi-node experiments (Figure 10) run on a 5-machine cluster with
2 V100 GPUs per machine, 40 Gbps NICs, and a leaf–spine topology with two ToR
and two core switches (§6.1).  This module reproduces that setup as a
networkx graph so the all-reduce cost model can derive the bottleneck
bandwidth between any pair of workers, and so tests can verify topology
properties (paths traverse ToR/core switches, intra-machine traffic stays
local, etc.).

Besides the graph, every cluster registers **named shared resources** — the
finite-bandwidth links and storage targets that concurrent jobs queue on
(:mod:`repro.sim.resources`).  Two granularities of fabric exist:

* the default flat :data:`Cluster.FABRIC` link, one queue for every
  multi-machine all-reduce, and
* with ``ClusterSpec(per_tor_fabric=True)``, **per-ToR uplinks plus a core
  fabric**: each machine maps to a ToR switch, rack-local traffic queues
  only on its own ToR's uplink, and cross-rack traffic additionally crosses
  the shared core — so *where* the scheduler places a job changes which
  resources it contends on (see :meth:`Cluster.links_crossed`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import networkx as nx

from .resources import SharedResource

__all__ = ["GPUDevice", "Machine", "ClusterSpec", "Cluster", "paper_testbed_cluster", "single_node_cluster"]


@dataclass(frozen=True)
class GPUDevice:
    """One GPU identified by ``(machine, local index)``."""

    machine: str
    index: int

    @property
    def name(self) -> str:
        """Canonical ``machine:gpuN`` identifier used across the stack."""
        return f"{self.machine}:gpu{self.index}"


@dataclass
class Machine:
    """One server: GPUs, CPU cores and NIC bandwidth."""

    name: str
    num_gpus: int = 2
    cpu_cores: int = 40
    usable_cpu_cores: int = 12
    nic_gbps: float = 40.0
    pcie_gbps: float = 128.0

    def gpus(self) -> List[GPUDevice]:
        """The machine's GPUs in local-index order."""
        return [GPUDevice(self.name, i) for i in range(self.num_gpus)]


@dataclass
class ClusterSpec:
    """Counts, link speeds and resource disciplines describing a cluster.

    ``fabric_gbps``/``storage_gbps`` size the two default shared resources
    (the leaf–spine fabric crossed by multi-machine all-reduce and the
    checkpoint storage target); ``None`` derives them from the ToR uplink
    and NIC speeds respectively.  ``fabric_policy``/``storage_policy``
    select each resource's scheduling discipline (``"fifo"`` first-fit
    serialization or ``"fair"`` processor sharing, see
    :mod:`repro.sim.resources`).

    ``per_tor_fabric=True`` declares topology-aware fabric resources: one
    uplink per ToR switch (at ``tor_uplink_gbps`` each, under
    ``fabric_policy``) plus a shared core fabric (``core_gbps``; default
    ``tor_uplink_gbps * num_core_switches``).  The scheduler then routes
    each job's all-reduce through the links its placement actually crosses
    instead of the flat default fabric.
    """

    num_machines: int = 5
    gpus_per_machine: int = 2
    nic_gbps: float = 40.0
    tor_uplink_gbps: float = 100.0
    num_tor_switches: int = 2
    num_core_switches: int = 2
    fabric_gbps: Optional[float] = None
    storage_gbps: Optional[float] = None
    fabric_policy: str = "fifo"
    storage_policy: str = "fifo"
    per_tor_fabric: bool = False
    core_gbps: Optional[float] = None


class Cluster:
    """Leaf–spine cluster graph with bandwidth-annotated links.

    Besides the topology graph, the cluster registers **named shared
    resources** — finite-bandwidth links and storage targets that concurrent
    jobs queue on (see :mod:`repro.sim.resources`).  Two defaults exist on
    every cluster: :data:`Cluster.FABRIC` (the leaf–spine fabric every
    multi-machine all-reduce crosses) and :data:`Cluster.CKPT_STORAGE` (the
    checkpoint target all jobs write snapshots to).  With
    ``ClusterSpec(per_tor_fabric=True)`` the fabric is additionally broken
    into per-ToR uplinks plus a core resource, and
    :meth:`links_crossed` reports which of them a worker set's all-reduce
    traverses — rack-local jobs never touch the core.
    """

    #: Default shared-link resource name (the flat leaf–spine fabric).
    FABRIC = "fabric"
    #: Default shared-storage resource name (the checkpoint target).
    CKPT_STORAGE = "ckpt-store"
    #: Shared core-fabric resource name (per-ToR topology mode only).
    CORE = "core"

    def __init__(self, spec: Optional[ClusterSpec] = None):
        """Build the topology graph and register the default shared resources."""
        self.spec = spec or ClusterSpec()
        self.machines: List[Machine] = [
            Machine(name=f"node{i}", num_gpus=self.spec.gpus_per_machine, nic_gbps=self.spec.nic_gbps)
            for i in range(self.spec.num_machines)
        ]
        self.graph = nx.Graph()
        #: Machine name -> index of the ToR switch its NIC uplinks to.
        self._machine_tor: Dict[str, int] = {}
        self._build_topology()
        self.resources: Dict[str, SharedResource] = {}
        self._build_default_resources()

    @staticmethod
    def tor_link_name(tor_index: int) -> str:
        """Resource name of one ToR switch's uplink (per-ToR topology mode)."""
        return f"tor{tor_index}-uplink"

    def _build_default_resources(self) -> None:
        """Register the default fabric/storage (and per-ToR) resources."""
        spec = self.spec
        self.add_resource(SharedResource(
            name=self.FABRIC,
            bandwidth_gbps=spec.fabric_gbps if spec.fabric_gbps is not None else spec.tor_uplink_gbps,
            kind="link",
            latency_seconds=50e-6,
            policy=spec.fabric_policy,
        ))
        self.add_resource(SharedResource(
            name=self.CKPT_STORAGE,
            bandwidth_gbps=spec.storage_gbps if spec.storage_gbps is not None else spec.nic_gbps,
            kind="storage",
            latency_seconds=100e-6,
            policy=spec.storage_policy,
        ))
        if spec.per_tor_fabric:
            for tor_index in range(spec.num_tor_switches):
                self.add_resource(SharedResource(
                    name=self.tor_link_name(tor_index),
                    bandwidth_gbps=spec.tor_uplink_gbps,
                    kind="link",
                    latency_seconds=50e-6,
                    policy=spec.fabric_policy,
                ))
            core_gbps = (spec.core_gbps if spec.core_gbps is not None
                         else spec.tor_uplink_gbps * spec.num_core_switches)
            self.add_resource(SharedResource(
                name=self.CORE,
                bandwidth_gbps=core_gbps,
                kind="link",
                latency_seconds=50e-6,
                policy=spec.fabric_policy,
            ))

    def add_resource(self, resource: SharedResource) -> SharedResource:
        """Register a named shared resource (duplicate names are rejected)."""
        if resource.name in self.resources:
            raise ValueError(f"duplicate resource name {resource.name!r}")
        self.resources[resource.name] = resource
        return resource

    def _build_topology(self) -> None:
        """Wire machines, ToR and core switches into the bandwidth graph."""
        spec = self.spec
        core_switches = [f"core{i}" for i in range(spec.num_core_switches)]
        tor_switches = [f"tor{i}" for i in range(spec.num_tor_switches)]
        for switch in core_switches + tor_switches:
            self.graph.add_node(switch, kind="switch")
        for tor in tor_switches:
            for core in core_switches:
                self.graph.add_edge(tor, core, gbps=spec.tor_uplink_gbps)
        for index, machine in enumerate(self.machines):
            self.graph.add_node(machine.name, kind="machine")
            tor_index = index % len(tor_switches)
            self._machine_tor[machine.name] = tor_index
            self.graph.add_edge(machine.name, tor_switches[tor_index], gbps=machine.nic_gbps)
            for gpu in machine.gpus():
                self.graph.add_node(gpu.name, kind="gpu")
                self.graph.add_edge(gpu.name, machine.name, gbps=machine.pcie_gbps)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def has_per_tor_fabric(self) -> bool:
        """Whether this cluster declares per-ToR fabric resources."""
        return self.spec.per_tor_fabric

    def tor_index(self, machine: str) -> int:
        """Index of the ToR switch ``machine`` uplinks to (``KeyError`` if unknown)."""
        machine = str(machine)
        if machine not in self._machine_tor:
            raise KeyError(f"unknown machine {machine!r}; known: {sorted(self._machine_tor)}")
        return self._machine_tor[machine]

    def machines_on_tor(self, tor_index: int) -> List[Machine]:
        """Machines uplinked to ToR switch ``tor_index``, in machine order.

        The rack is the correlated failure domain the fault model takes down
        atomically — a rack failure hits every GPU on these machines plus
        the ToR's uplink resource.  ``KeyError`` for an out-of-range index,
        matching :meth:`tor_index`'s contract.
        """
        tor_index = int(tor_index)
        if not 0 <= tor_index < self.spec.num_tor_switches:
            raise KeyError(f"unknown ToR index {tor_index!r}; cluster has "
                           f"{self.spec.num_tor_switches} ToR switches")
        return [machine for machine in self.machines
                if self._machine_tor[machine.name] == tor_index]

    def gpus_on_machine(self, machine: str) -> List[GPUDevice]:
        """GPUs resident on ``machine`` in local-index order (``KeyError`` if unknown)."""
        machine = str(machine)
        for candidate in self.machines:
            if candidate.name == machine:
                return candidate.gpus()
        raise KeyError(f"unknown machine {machine!r}; known: "
                       f"{sorted(m.name for m in self.machines)}")

    def links_crossed(self, workers: List[GPUDevice]) -> List[str]:
        """Per-ToR fabric resources a worker set's all-reduce traverses.

        Empty when the cluster has no per-ToR fabric or the workers share a
        single machine (intra-machine rings never touch the fabric).  A
        rack-local multi-machine ring crosses only its own ToR's uplink; a
        cross-rack ring crosses every involved ToR's uplink **plus** the
        shared core — so placement locality directly decides which queues a
        job's buckets wait in.
        """
        if not self.has_per_tor_fabric:
            return []
        machines = {w.machine for w in workers if isinstance(w, GPUDevice)}
        if len(machines) <= 1:
            return []
        tors = sorted({self.tor_index(machine) for machine in sorted(machines)})
        links = [self.tor_link_name(tor) for tor in tors]
        if len(tors) > 1:
            links.append(self.CORE)
        return links

    def all_gpus(self) -> List[GPUDevice]:
        """Every GPU in the cluster, in machine order."""
        return [gpu for machine in self.machines for gpu in machine.gpus()]

    def workers(self, num_machines: Optional[int] = None, gpus_per_machine: Optional[int] = None) -> List[GPUDevice]:
        """First ``num_machines x gpus_per_machine`` GPUs in placement order."""
        machines = self.machines[: num_machines or len(self.machines)]
        per_machine = gpus_per_machine or self.spec.gpus_per_machine
        return [gpu for machine in machines for gpu in machine.gpus()[:per_machine]]

    def path_bandwidth_gbps(self, a: str, b: str) -> float:
        """Bottleneck bandwidth along the shortest path between two nodes."""
        if a == b:
            return float("inf")
        path = nx.shortest_path(self.graph, a, b)
        bandwidths = [self.graph.edges[u, v]["gbps"] for u, v in zip(path, path[1:])]
        return min(bandwidths)

    def worker_bottleneck_gbps(self, workers: List[GPUDevice]) -> float:
        """Bottleneck bandwidth across all pairs of the given workers.

        For ring all-reduce the slowest link on the ring bounds throughput;
        with a leaf–spine fabric that is the NIC (or the ToR uplink when
        oversubscribed).
        """
        if len(workers) <= 1:
            return float("inf")
        names = [w.name for w in workers]
        bandwidth = float("inf")
        for a, b in zip(names, names[1:] + names[:1]):
            bandwidth = min(bandwidth, self.path_bandwidth_gbps(a, b))
        return bandwidth

    def is_single_machine(self, workers: List[GPUDevice]) -> bool:
        """Whether every worker sits on the same machine."""
        return len({w.machine for w in workers}) <= 1

    def describe(self) -> Dict[str, object]:
        """Plain-data cluster summary (shape, links, registered resources)."""
        return {
            "machines": len(self.machines),
            "gpus": len(self.all_gpus()),
            "nic_gbps": self.spec.nic_gbps,
            "tor_uplink_gbps": self.spec.tor_uplink_gbps,
            "per_tor_fabric": self.spec.per_tor_fabric,
            "nodes": self.graph.number_of_nodes(),
            "links": self.graph.number_of_edges(),
            "resources": {name: res.as_dict() for name, res in sorted(self.resources.items())},
        }


def paper_testbed_cluster() -> Cluster:
    """The 5-node, 2xV100-per-node, 40 Gbps leaf–spine testbed of §6.1."""
    return Cluster(ClusterSpec(num_machines=5, gpus_per_machine=2, nic_gbps=40.0,
                               tor_uplink_gbps=100.0, num_tor_switches=2, num_core_switches=2))


def single_node_cluster(num_gpus: int = 8) -> Cluster:
    """The single 8x2080Ti machine used for Transformer-Tiny."""
    return Cluster(ClusterSpec(num_machines=1, gpus_per_machine=num_gpus, nic_gbps=40.0))

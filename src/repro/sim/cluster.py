"""Cluster and network topology model for distributed-training simulation.

The paper's multi-node experiments (Figure 10) run on a 5-machine cluster with
2 V100 GPUs per machine, 40 Gbps NICs, and a leaf–spine topology with two ToR
and two core switches (§6.1).  This module reproduces that setup as a
networkx graph so the all-reduce cost model can derive the bottleneck
bandwidth between any pair of workers, and so tests can verify topology
properties (paths traverse ToR/core switches, intra-machine traffic stays
local, etc.).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx as nx

from .resources import SharedResource

__all__ = ["GPUDevice", "Machine", "ClusterSpec", "Cluster", "paper_testbed_cluster", "single_node_cluster"]


@dataclass(frozen=True)
class GPUDevice:
    """One GPU identified by ``(machine, local index)``."""

    machine: str
    index: int

    @property
    def name(self) -> str:
        return f"{self.machine}:gpu{self.index}"


@dataclass
class Machine:
    """One server: GPUs, CPU cores and NIC bandwidth."""

    name: str
    num_gpus: int = 2
    cpu_cores: int = 40
    usable_cpu_cores: int = 12
    nic_gbps: float = 40.0
    pcie_gbps: float = 128.0

    def gpus(self) -> List[GPUDevice]:
        return [GPUDevice(self.name, i) for i in range(self.num_gpus)]


@dataclass
class ClusterSpec:
    """Counts and link speeds describing a cluster.

    ``fabric_gbps``/``storage_gbps`` size the two default shared resources
    (the leaf–spine fabric crossed by multi-machine all-reduce and the
    checkpoint storage target); ``None`` derives them from the ToR uplink
    and NIC speeds respectively.
    """

    num_machines: int = 5
    gpus_per_machine: int = 2
    nic_gbps: float = 40.0
    tor_uplink_gbps: float = 100.0
    num_tor_switches: int = 2
    num_core_switches: int = 2
    fabric_gbps: Optional[float] = None
    storage_gbps: Optional[float] = None


class Cluster:
    """Leaf–spine cluster graph with bandwidth-annotated links.

    Besides the topology graph, the cluster registers **named shared
    resources** — finite-bandwidth links and storage targets that concurrent
    jobs queue on (see :mod:`repro.sim.resources`).  Two defaults exist on
    every cluster: :data:`Cluster.FABRIC` (the leaf–spine fabric every
    multi-machine all-reduce crosses) and :data:`Cluster.CKPT_STORAGE` (the
    checkpoint target all jobs write snapshots to).
    """

    #: Default shared-link resource name (the leaf–spine fabric).
    FABRIC = "fabric"
    #: Default shared-storage resource name (the checkpoint target).
    CKPT_STORAGE = "ckpt-store"

    def __init__(self, spec: Optional[ClusterSpec] = None):
        self.spec = spec or ClusterSpec()
        self.machines: List[Machine] = [
            Machine(name=f"node{i}", num_gpus=self.spec.gpus_per_machine, nic_gbps=self.spec.nic_gbps)
            for i in range(self.spec.num_machines)
        ]
        self.graph = nx.Graph()
        self._build_topology()
        self.resources: Dict[str, SharedResource] = {}
        self._build_default_resources()

    def _build_default_resources(self) -> None:
        spec = self.spec
        self.add_resource(SharedResource(
            name=self.FABRIC,
            bandwidth_gbps=spec.fabric_gbps if spec.fabric_gbps is not None else spec.tor_uplink_gbps,
            kind="link",
            latency_seconds=50e-6,
        ))
        self.add_resource(SharedResource(
            name=self.CKPT_STORAGE,
            bandwidth_gbps=spec.storage_gbps if spec.storage_gbps is not None else spec.nic_gbps,
            kind="storage",
            latency_seconds=100e-6,
        ))

    def add_resource(self, resource: SharedResource) -> SharedResource:
        """Register a named shared resource (duplicate names are rejected)."""
        if resource.name in self.resources:
            raise ValueError(f"duplicate resource name {resource.name!r}")
        self.resources[resource.name] = resource
        return resource

    def _build_topology(self) -> None:
        spec = self.spec
        core_switches = [f"core{i}" for i in range(spec.num_core_switches)]
        tor_switches = [f"tor{i}" for i in range(spec.num_tor_switches)]
        for switch in core_switches + tor_switches:
            self.graph.add_node(switch, kind="switch")
        for tor in tor_switches:
            for core in core_switches:
                self.graph.add_edge(tor, core, gbps=spec.tor_uplink_gbps)
        for index, machine in enumerate(self.machines):
            self.graph.add_node(machine.name, kind="machine")
            tor = tor_switches[index % len(tor_switches)]
            self.graph.add_edge(machine.name, tor, gbps=machine.nic_gbps)
            for gpu in machine.gpus():
                self.graph.add_node(gpu.name, kind="gpu")
                self.graph.add_edge(gpu.name, machine.name, gbps=machine.pcie_gbps)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def all_gpus(self) -> List[GPUDevice]:
        return [gpu for machine in self.machines for gpu in machine.gpus()]

    def workers(self, num_machines: Optional[int] = None, gpus_per_machine: Optional[int] = None) -> List[GPUDevice]:
        """First ``num_machines x gpus_per_machine`` GPUs in placement order."""
        machines = self.machines[: num_machines or len(self.machines)]
        per_machine = gpus_per_machine or self.spec.gpus_per_machine
        return [gpu for machine in machines for gpu in machine.gpus()[:per_machine]]

    def path_bandwidth_gbps(self, a: str, b: str) -> float:
        """Bottleneck bandwidth along the shortest path between two nodes."""
        if a == b:
            return float("inf")
        path = nx.shortest_path(self.graph, a, b)
        bandwidths = [self.graph.edges[u, v]["gbps"] for u, v in zip(path, path[1:])]
        return min(bandwidths)

    def worker_bottleneck_gbps(self, workers: List[GPUDevice]) -> float:
        """Bottleneck bandwidth across all pairs of the given workers.

        For ring all-reduce the slowest link on the ring bounds throughput;
        with a leaf–spine fabric that is the NIC (or the ToR uplink when
        oversubscribed).
        """
        if len(workers) <= 1:
            return float("inf")
        names = [w.name for w in workers]
        bandwidth = float("inf")
        for a, b in zip(names, names[1:] + names[:1]):
            bandwidth = min(bandwidth, self.path_bandwidth_gbps(a, b))
        return bandwidth

    def is_single_machine(self, workers: List[GPUDevice]) -> bool:
        return len({w.machine for w in workers}) <= 1

    def describe(self) -> Dict[str, object]:
        return {
            "machines": len(self.machines),
            "gpus": len(self.all_gpus()),
            "nic_gbps": self.spec.nic_gbps,
            "tor_uplink_gbps": self.spec.tor_uplink_gbps,
            "nodes": self.graph.number_of_nodes(),
            "links": self.graph.number_of_edges(),
            "resources": {name: res.as_dict() for name, res in sorted(self.resources.items())},
        }


def paper_testbed_cluster() -> Cluster:
    """The 5-node, 2xV100-per-node, 40 Gbps leaf–spine testbed of §6.1."""
    return Cluster(ClusterSpec(num_machines=5, gpus_per_machine=2, nic_gbps=40.0,
                               tor_uplink_gbps=100.0, num_tor_switches=2, num_core_switches=2))


def single_node_cluster(num_gpus: int = 8) -> Cluster:
    """The single 8x2080Ti machine used for Transformer-Tiny."""
    return Cluster(ClusterSpec(num_machines=1, gpus_per_machine=num_gpus, nic_gbps=40.0))

"""Analytical per-iteration cost model for DNN training.

The paper reports *time* speedups measured on V100/2080 Ti testbeds.  Those
GPUs are unavailable here, so this module provides the substitution described
in DESIGN.md: an analytical cost model that derives forward/backward/
synchronization times from the model's layer-module structure — the same
structure Egeria freezes — so relative speedups (who wins, by roughly what
factor) are preserved even though absolute times are synthetic.

Model
-----
For a layer module with ``p`` parameters processing batch size ``b``:

* forward compute time  = ``fp_seconds_per_param * p * b``
* backward compute time = ``bp_fp_ratio`` x forward time (weight + input
  gradients roughly double the work of the forward pass)
* gradient volume       = ``4 p`` bytes (fp32 gradients)

The default ``fp_fraction`` of an unfrozen iteration is ~0.35, matching the
paper's observation that "the forward pass still takes up to 35% of the time
of an iteration".  Frozen modules drop their backward time and gradient
volume; modules served from the activation cache also drop their forward
time (plus a small prefetch overhead).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # type-only: a runtime import would cycle through repro.core
    from ..core.modules import LayerModule

__all__ = ["GPUSpec", "IterationBreakdown", "CostModel"]


@dataclass(frozen=True)
class GPUSpec:
    """Throughput description of one accelerator.

    ``fp_seconds_per_param`` is the forward-pass time contributed by one
    parameter for one sample; defaults are arbitrary but consistent, since
    only ratios matter for speedups.
    """

    name: str = "V100"
    fp_seconds_per_param: float = 2.0e-9
    bp_fp_ratio: float = 2.0
    memory_gb: float = 32.0


@dataclass
class IterationBreakdown:
    """Per-iteration time decomposition (seconds)."""

    forward: float
    backward: float
    communication: float
    cache_overhead: float = 0.0
    reference_overhead: float = 0.0

    @property
    def compute(self) -> float:
        """Forward + backward compute seconds (communication excluded)."""
        return self.forward + self.backward

    @property
    def total(self) -> float:
        """Total iteration time assuming communication overlapped with backward.

        The exposed communication is whatever could not be hidden behind the
        backward pass (baseline frameworks already overlap per-layer gradient
        transmission with earlier layers' BP).
        """
        exposed_comm = max(self.communication - self.backward, 0.0)
        return self.forward + self.backward + exposed_comm + self.cache_overhead + self.reference_overhead

    def as_dict(self) -> Dict[str, float]:
        """Plain-data view of the breakdown."""
        return {
            "forward": self.forward,
            "backward": self.backward,
            "communication": self.communication,
            "cache_overhead": self.cache_overhead,
            "reference_overhead": self.reference_overhead,
            "total": self.total,
        }


class CostModel:
    """Maps a model's layer modules and freezing state to iteration time.

    Parameters
    ----------
    layer_modules:
        The front-to-back module decomposition of the training model.
    batch_size:
        Mini-batch size per worker.
    gpu:
        Accelerator throughput description.
    cache_overhead_fraction:
        Prefetching/caching overhead as a fraction of the *saved* forward
        time (loading a cached activation is much cheaper than recomputing it
        but not free).
    reference_overhead_fraction:
        CPU reference-model overhead as a fraction of baseline iteration time
        (the paper measures "up to 1.5%", §6.5).
    """

    def __init__(self, layer_modules: Sequence[LayerModule], batch_size: int = 32,
                 gpu: Optional[GPUSpec] = None, cache_overhead_fraction: float = 0.15,
                 reference_overhead_fraction: float = 0.015):
        """Capture the module decomposition and accelerator description."""
        self.layer_modules = list(layer_modules)
        self.batch_size = batch_size
        self.gpu = gpu or GPUSpec()
        self.cache_overhead_fraction = cache_overhead_fraction
        self.reference_overhead_fraction = reference_overhead_fraction
        self._module_params_key: Optional[Tuple[int, ...]] = None
        self._module_params_src: Optional[List[LayerModule]] = None

    def fingerprint(self) -> Tuple:
        """Hashable digest of every parameter that shapes iteration timing.

        The steady-state fast-forward cache
        (:meth:`~repro.sim.engine.EventDrivenEngine.simulate_iteration`) keys
        memoized iterations on this digest, so two cost models with identical
        structure share cache entries and a *different* model can never alias
        one.  The per-module parameter counts are captured once — a cost
        model is treated as immutable after construction (swap the module
        list and the digest is recomputed; mutate it in place and the engine
        must be told via ``clear_fast_forward_cache``).
        """
        if self._module_params_src is not self.layer_modules:
            self._module_params_key = tuple(m.num_params for m in self.layer_modules)
            self._module_params_src = self.layer_modules
        return (
            self._module_params_key,
            self.batch_size,
            self.gpu.fp_seconds_per_param,
            self.gpu.bp_fp_ratio,
            self.cache_overhead_fraction,
            self.reference_overhead_fraction,
        )

    # ------------------------------------------------------------------ #
    # Per-module primitives
    # ------------------------------------------------------------------ #
    def module_forward_time(self, module: LayerModule) -> float:
        """Seconds of forward compute one module costs per iteration."""
        return self.gpu.fp_seconds_per_param * module.num_params * self.batch_size

    def module_backward_time(self, module: LayerModule) -> float:
        """Seconds of backward compute one module costs per iteration."""
        return self.module_forward_time(module) * self.gpu.bp_fp_ratio

    def module_gradient_bytes(self, module: LayerModule) -> int:
        """Gradient payload of one module (fp32 parameters)."""
        return module.num_params * 4

    @staticmethod
    def transfer_seconds_at(num_bytes: int, bandwidth_gbps: float) -> float:
        """Occupancy seconds of ``num_bytes`` on a ``bandwidth_gbps`` resource.

        The single pricing rule every shared link and storage resource uses
        (see :mod:`repro.sim.resources`), so per-resource occupancy and the
        closed-form communication terms stay dimensionally consistent.
        """
        if num_bytes <= 0:
            return 0.0
        if bandwidth_gbps <= 0:
            raise ValueError("bandwidth_gbps must be positive")
        return num_bytes * 8.0 / (bandwidth_gbps * 1e9)

    # ------------------------------------------------------------------ #
    # Checkpoint volume
    # ------------------------------------------------------------------ #
    #: Optimizer state written alongside the fp32 weights: weights plus two
    #: Adam-style moment buffers (SGD's single velocity buffer writes less,
    #: but the ratio only shifts the absolute cost, not the freezing trend).
    CKPT_STATE_MULTIPLIER = 3.0

    def checkpoint_bytes(self, frozen_prefix: int = 0, incremental: bool = True,
                         state_multiplier: Optional[float] = None) -> int:
        """Bytes persisted by one training-state checkpoint.

        With ``incremental`` (the freezing-aware layout) the immutable frozen
        prefix is content-addressed and written once, so only the active
        suffix counts — checkpoint volume falls as the prefix advances, just
        like iteration time.  A full (non-incremental) snapshot — what a
        restore has to read back — always covers every module.
        """
        frozen_prefix = max(0, min(frozen_prefix, len(self.layer_modules)))
        modules = self.layer_modules[frozen_prefix:] if incremental else self.layer_modules
        multiplier = self.CKPT_STATE_MULTIPLIER if state_multiplier is None else state_multiplier
        return int(4 * sum(m.num_params for m in modules) * multiplier)

    # ------------------------------------------------------------------ #
    # Iteration-level accounting
    # ------------------------------------------------------------------ #
    def baseline_iteration(self, include_reference_overhead: bool = False) -> IterationBreakdown:
        """Breakdown for a fully-unfrozen single-GPU iteration."""
        return self.iteration(frozen_prefix=0, cached_fp=False,
                              include_reference_overhead=include_reference_overhead)

    def iteration(self, frozen_prefix: int = 0, cached_fp: bool = False,
                  comm_seconds_per_byte: float = 0.0, include_reference_overhead: bool = True) -> IterationBreakdown:
        """Breakdown for an iteration with the first ``frozen_prefix`` modules frozen.

        Parameters
        ----------
        frozen_prefix:
            Number of consecutive front modules whose backward pass (and
            gradient synchronization) is skipped.
        cached_fp:
            Whether the frozen prefix's forward pass is served from the
            activation cache (skipping its compute, paying a small prefetch
            overhead instead).
        comm_seconds_per_byte:
            Per-byte all-reduce cost; zero for single-GPU training.
        """
        frozen_prefix = max(0, min(frozen_prefix, len(self.layer_modules)))
        forward = 0.0
        backward = 0.0
        comm_bytes = 0
        saved_forward = 0.0
        for index, module in enumerate(self.layer_modules):
            fp = self.module_forward_time(module)
            if index < frozen_prefix:
                if cached_fp:
                    saved_forward += fp
                else:
                    forward += fp
                continue
            forward += fp
            backward += self.module_backward_time(module)
            comm_bytes += self.module_gradient_bytes(module)

        cache_overhead = saved_forward * self.cache_overhead_fraction if cached_fp else 0.0
        communication = comm_bytes * comm_seconds_per_byte
        reference_overhead = 0.0
        if include_reference_overhead:
            baseline_compute = sum(self.module_forward_time(m) * (1 + self.gpu.bp_fp_ratio)
                                   for m in self.layer_modules)
            reference_overhead = baseline_compute * self.reference_overhead_fraction
        return IterationBreakdown(
            forward=forward,
            backward=backward,
            communication=communication,
            cache_overhead=cache_overhead,
            reference_overhead=reference_overhead,
        )

    def epoch_time(self, iterations: int, frozen_prefix: int = 0, cached_fp: bool = False,
                   comm_seconds_per_byte: float = 0.0, include_reference_overhead: bool = True) -> float:
        """Total time of ``iterations`` identical iterations."""
        return self.iteration(frozen_prefix, cached_fp, comm_seconds_per_byte,
                              include_reference_overhead).total * iterations

    # ------------------------------------------------------------------ #
    # Helpers used by the figure benches
    # ------------------------------------------------------------------ #
    def fp_fraction(self) -> float:
        """Forward-pass share of the unfrozen iteration (paper: up to ~35%)."""
        breakdown = self.baseline_iteration()
        return breakdown.forward / breakdown.compute if breakdown.compute else 0.0

    def potential_backward_saving(self, frozen_prefix: int) -> float:
        """Fraction of compute saved by freezing the prefix's backward pass."""
        baseline = self.baseline_iteration().compute
        frozen = self.iteration(frozen_prefix, cached_fp=False, include_reference_overhead=False).compute
        return (baseline - frozen) / baseline if baseline else 0.0

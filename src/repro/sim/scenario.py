"""Replayable cluster scenarios: JSON spec in, timeline/makespan JSON out.

A *scenario* is a plain-JSON description of one cluster-simulation run —
cluster shape, extra shared resources, jobs and fault/elasticity knobs.  The
``repro sim run`` CLI subcommand feeds a scenario file through
:func:`run_scenario` and prints the resulting makespan, per-job records and
per-resource occupancy as JSON, so cluster experiments are reproducible
artifacts rather than ad hoc scripts.

Scenario schema (all keys optional unless noted)::

    {
      "cluster":   {"num_machines": 5, "gpus_per_machine": 2, "nic_gbps": 40.0,
                    "tor_uplink_gbps": 100.0, "fabric_gbps": null, "storage_gbps": null,
                    "fabric_policy": "fifo", "storage_policy": "fifo",
                    "per_tor_fabric": false, "core_gbps": null},
      "resources": [{"name": "scratch", "bandwidth_gbps": 10.0, "kind": "storage",
                     "latency_seconds": 0.0001, "policy": "fifo"}],
      "placement": "fifo",
      "seed": 0,
      "memoize": true,
      "observe": false,                     # or {"trace": true, "metrics": true}
      "jobs": [
        {"name": "a",                       # required, unique
         "workload": "resnet50_imagenet",   # cost model source ...
         "scale": "tiny",
         "modules": [1000, 2000, ...],      # ... or explicit per-module params
         "batch_size": 32,
         "num_workers": 4, "iterations": 10,
         "policy": "vanilla", "frozen_prefix": 0, "cached_fp": false,
         "include_reference_overhead": false, "arrival_time": 0.0,
         "checkpoint_every": 5, "storage": "ckpt-store",
         "async_checkpoint": false, "link": null, "weight": 1.0}
      ],
      "gpu_speeds":  [{"gpu": "node0:gpu0", "factor": 0.5, "at_time": 0.0}],
      "failures":    [{"gpu": "node0:gpu0", "at_time": 1.0, "recover_at": null}],
      "resizes":     [{"job": "a", "delta": -2, "at_time": 1.0}],
      "preemptions": [{"job": "a", "at_time": 1.0}],
      "resumes":     [{"job": "a", "at_time": 2.0}],
      "faults":      {"events": [...], "spot": {...}, "backoff": {...},
                      "seed": 7, "mttf_seconds": 5.0, ...}
    }

The ``faults`` key drives the structured fault model — correlated failure
domains (machine/rack/ToR), degraded links and spot eviction with proactive
checkpoints — via explicit event lists and/or a seeded stochastic stream;
see :mod:`repro.sim.faults` and ``docs/faults.md`` for the full schema.
Every fault-event reference (GPU/machine/resource names, recovery ordering)
is validated here at build time with a pointed error, as is
resume-before-preempt ordering in the ``resumes`` list.

Jobs take their cost model either from a named experiment workload
(``workload``/``scale``) or from an explicit ``modules`` list of per-module
parameter counts; exactly one of the two must be given.  Unknown keys raise
``ValueError`` so typos fail loudly instead of silently changing the run.

Resource scheduling disciplines (``"fifo"`` first-fit serialization vs
``"fair"`` processor sharing — see :mod:`repro.sim.resources` and
``docs/resources.md``) are set per resource: cluster-default resources via
``fabric_policy``/``storage_policy``, extra resources via their own
``policy`` key.  ``run_scenario(..., default_policy=...)`` (the CLI's
``--policy`` flag) overrides the discipline of every resource the scenario
does not pin explicitly.  ``placement`` accepts ``"fifo"``,
``"round_robin"`` and ``"tor_pack"`` (rack packing; pair it with
``"per_tor_fabric": true`` so placement locality decides which fabric links
a job contends on).

Per-job ``weight`` sets the job's fair-share weight on processor-sharing
resources (capacity split ∝ weight; default 1.0).  The top-level
``memoize`` flag (default ``true``) toggles the engine's steady-state
fast-forward cache — results are bit-identical either way (the equality the
fast-forward test suite asserts); turning it off only makes the run slower.
The top-level ``sanitize`` flag attaches SimSan, the runtime invariant
sanitizer (:mod:`repro.sim.sanitizer`); omitted, it defers to the
``REPRO_SIMSAN`` environment variable.  Sanitized results are bit-identical
to plain ones.

The top-level ``observe`` key attaches SimScope (:mod:`repro.sim.observe`):
``true`` enables the sim-time tracer and metrics registry, an object
(``{"trace": ..., "metrics": ...}``) selects pillars individually.  Observed
runs add a ``"metrics"`` summary to the report and are otherwise
bit-identical to plain runs; ``repro sim run --trace-out/--metrics-out``
export the full trace and time-series (see ``docs/observability.md``).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Union, TYPE_CHECKING

from .cluster import Cluster, ClusterSpec
from .cost_model import CostModel
from .engine import EventDrivenEngine
from .faults import apply_fault_plan, parse_faults
from .resources import SharedResource
from .scheduler import ClusterScheduler, SimJob

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from .observe import SimObserver

__all__ = ["build_scenario", "run_scenario", "preview_faults"]

_CLUSTER_KEYS = {"num_machines", "gpus_per_machine", "nic_gbps", "tor_uplink_gbps",
                 "num_tor_switches", "num_core_switches", "fabric_gbps", "storage_gbps",
                 "fabric_policy", "storage_policy", "per_tor_fabric", "core_gbps"}
_RESOURCE_KEYS = {"name", "bandwidth_gbps", "kind", "latency_seconds", "policy"}
_JOB_KEYS = {"name", "workload", "scale", "modules", "batch_size", "num_workers",
             "iterations", "policy", "frozen_prefix", "cached_fp",
             "include_reference_overhead", "arrival_time", "checkpoint_every",
             "storage", "link", "async_checkpoint", "weight"}
_SCENARIO_KEYS = {"cluster", "resources", "placement", "seed", "jobs",
                  "gpu_speeds", "failures", "resizes", "preemptions", "resumes",
                  "faults", "memoize", "sanitize", "observe", "batch_fast_forward"}
_OBSERVE_KEYS = {"trace", "metrics"}


def _build_observer(value: object) -> Optional["SimObserver"]:
    """SimScope observer from the scenario's ``observe`` key.

    ``None``/``false`` (the default) attaches nothing — the zero-overhead
    plain run.  ``true`` attaches a full observer (tracer + metrics);
    a ``{"trace": bool, "metrics": bool}`` object selects pillars
    individually.  Observed runs are bit-identical to plain runs.
    """
    if value is None or value is False:
        return None
    from .observe import SimObserver  # lazy: only observed runs pay the import

    if value is True:
        return SimObserver()
    if isinstance(value, dict):
        _check_keys(value, _OBSERVE_KEYS, "observe")
        return SimObserver(trace=bool(value.get("trace", True)),
                           metrics=bool(value.get("metrics", True)))
    raise ValueError(f"scenario 'observe' must be a bool or an object, got {value!r}")


def _check_keys(mapping: Dict, allowed: set, where: str) -> None:
    unknown = sorted(set(mapping) - allowed)
    if unknown:
        raise ValueError(f"unknown {where} keys {unknown}; allowed: {sorted(allowed)}")


def _job_cost_model(spec: Dict) -> CostModel:
    """Cost model from a named workload or an explicit module list."""
    has_workload = spec.get("workload") is not None
    has_modules = spec.get("modules") is not None
    if has_workload == has_modules:
        raise ValueError(f"job {spec.get('name')!r}: give exactly one of 'workload' or 'modules'")
    batch_size = int(spec.get("batch_size", 32))
    if has_modules:
        # Imported lazily: repro.core imports repro.sim at module load time,
        # so a top-level import here would be circular.
        from ..core.modules import LayerModule

        counts = [int(c) for c in spec["modules"]]
        if not counts or any(c <= 0 for c in counts):
            raise ValueError(f"job {spec.get('name')!r}: 'modules' must be positive param counts")
        modules = [LayerModule(name=f"m{i}", paths=[], blocks=[], num_params=c, index=i)
                   for i, c in enumerate(counts)]
        return CostModel(modules, batch_size=batch_size)
    from ..core.modules import parse_layer_modules
    from ..experiments.workloads import build_workload  # lazy: experiments -> sim

    workload = build_workload(str(spec["workload"]), scale=str(spec.get("scale", "tiny")))
    modules = parse_layer_modules(workload.make_model())
    return CostModel(modules, batch_size=int(spec.get("batch_size", workload.batch_size)))


def build_scenario(spec: Dict, default_policy: Optional[str] = None) -> ClusterScheduler:
    """Construct a fully-wired :class:`ClusterScheduler` from a scenario dict.

    ``default_policy`` (``"fifo"``/``"fair"``) applies to every resource the
    scenario does not pin explicitly — the cluster defaults' policies when
    ``fabric_policy``/``storage_policy`` are absent, and each extra
    resource's discipline when its ``policy`` key is absent.
    """
    _check_keys(spec, _SCENARIO_KEYS, "scenario")
    if default_policy is not None and default_policy not in SharedResource.POLICIES:
        raise ValueError(f"unknown default policy {default_policy!r}; "
                         f"expected one of {SharedResource.POLICIES}")
    cluster_spec = dict(spec.get("cluster") or {})
    _check_keys(cluster_spec, _CLUSTER_KEYS, "cluster")
    if default_policy is not None:
        cluster_spec.setdefault("fabric_policy", default_policy)
        cluster_spec.setdefault("storage_policy", default_policy)
    cluster = Cluster(ClusterSpec(**cluster_spec))
    for resource_spec in spec.get("resources") or []:
        resource_spec = dict(resource_spec)
        _check_keys(resource_spec, _RESOURCE_KEYS, "resource")
        if default_policy is not None:
            resource_spec.setdefault("policy", default_policy)
        cluster.add_resource(SharedResource(**resource_spec))

    sanitize = spec.get("sanitize")
    engine = EventDrivenEngine(cluster, memoize=bool(spec.get("memoize", True)),
                               sanitize=None if sanitize is None else bool(sanitize),
                               observe=_build_observer(spec.get("observe")))
    scheduler = ClusterScheduler(cluster, engine=engine,
                                 placement=str(spec.get("placement", "fifo")),
                                 seed=int(spec.get("seed", 0)),
                                 batch_fast_forward=bool(spec.get("batch_fast_forward", True)))
    jobs = spec.get("jobs") or []
    if not jobs:
        raise ValueError("scenario has no jobs")
    for job_spec in jobs:
        _check_keys(job_spec, _JOB_KEYS, "job")
        if "name" not in job_spec:
            raise ValueError("every job needs a 'name'")
        scheduler.submit(SimJob(
            name=str(job_spec["name"]),
            cost_model=_job_cost_model(job_spec),
            num_workers=int(job_spec.get("num_workers", 1)),
            iterations=int(job_spec.get("iterations", 1)),
            policy=str(job_spec.get("policy", "vanilla")),
            frozen_prefix=int(job_spec.get("frozen_prefix", 0)),
            cached_fp=bool(job_spec.get("cached_fp", False)),
            include_reference_overhead=bool(job_spec.get("include_reference_overhead", False)),
            arrival_time=float(job_spec.get("arrival_time", 0.0)),
            checkpoint_every=(None if job_spec.get("checkpoint_every") is None
                              else int(job_spec["checkpoint_every"])),
            storage=job_spec.get("storage"),
            link=job_spec.get("link"),
            async_checkpoint=bool(job_spec.get("async_checkpoint", False)),
            weight=float(job_spec.get("weight", 1.0)),
        ))

    for knob in spec.get("gpu_speeds") or []:
        scheduler.set_gpu_speed(knob["gpu"], float(knob["factor"]),
                                at_time=float(knob.get("at_time", 0.0)))
    for knob in spec.get("failures") or []:
        recover_at = knob.get("recover_at")
        scheduler.inject_failure(knob["gpu"], at_time=float(knob["at_time"]),
                                 recover_at=None if recover_at is None else float(recover_at))
    for knob in spec.get("resizes") or []:
        scheduler.resize_job(knob["job"], int(knob["delta"]), at_time=float(knob["at_time"]))
    first_preempt: Dict[str, float] = {}
    for knob in spec.get("preemptions") or []:
        at_time = float(knob["at_time"])
        job_name = str(knob["job"])
        if job_name not in first_preempt or at_time < first_preempt[job_name]:
            first_preempt[job_name] = at_time
        scheduler.preempt_job(job_name, at_time=at_time)
    for knob in spec.get("resumes") or []:
        at_time = float(knob["at_time"])
        job_name = str(knob["job"])
        # Resume-before-preempt is a scenario bug: the event would pop first
        # and be ignored, silently leaving the job paused forever.
        if job_name not in first_preempt:
            raise ValueError(f"resume of job {job_name!r} at {at_time} has no "
                             f"matching entry in 'preemptions'")
        if at_time <= first_preempt[job_name]:
            raise ValueError(f"resume of job {job_name!r} at {at_time} must come "
                             f"after its first preemption at {first_preempt[job_name]}")
        scheduler.resume_job(job_name, at_time=at_time)
    faults_spec = spec.get("faults")
    if faults_spec is not None:
        apply_fault_plan(scheduler, parse_faults(dict(faults_spec), cluster))
    return scheduler


def preview_faults(scenario: Union[str, Dict],
                   default_policy: Optional[str] = None) -> Dict[str, object]:
    """Resolve a scenario's fault plan without running it (``repro sim faults``).

    Builds the cluster, parses/validates the ``"faults"`` key — expanding
    the seeded stochastic stream into its concrete events — and returns the
    plan as plain data, so a fault storm can be inspected (or diffed across
    seeds) before committing to a full run.
    """
    if isinstance(scenario, str):
        with open(scenario, "r", encoding="utf-8") as handle:
            spec = json.load(handle)
    else:
        spec = dict(scenario)
    _check_keys(spec, _SCENARIO_KEYS, "scenario")
    cluster_spec = dict(spec.get("cluster") or {})
    _check_keys(cluster_spec, _CLUSTER_KEYS, "cluster")
    if default_policy is not None:
        cluster_spec.setdefault("fabric_policy", default_policy)
        cluster_spec.setdefault("storage_policy", default_policy)
    cluster = Cluster(ClusterSpec(**cluster_spec))
    for resource_spec in spec.get("resources") or []:
        resource_spec = dict(resource_spec)
        _check_keys(resource_spec, _RESOURCE_KEYS, "resource")
        cluster.add_resource(SharedResource(**resource_spec))
    plan = parse_faults(dict(spec.get("faults") or {}), cluster)
    return {"cluster": {"machines": len(cluster.machines),
                        "gpus": len(cluster.all_gpus()),
                        "per_tor_fabric": cluster.has_per_tor_fabric},
            "num_events": len(plan.events),
            **plan.as_dict()}


def run_scenario(scenario: Union[str, Dict], include_trace: bool = False,
                 default_policy: Optional[str] = None, observe: Optional[bool] = None,
                 trace_out: Optional[str] = None,
                 metrics_out: Optional[str] = None) -> Dict[str, object]:
    """Replay a scenario (dict or path to a JSON file) to plain-data results.

    The output is deterministic for a fixed scenario: makespan, per-job
    records, GPU utilization and per-resource occupancy — plus the full
    scheduler trace when ``include_trace`` is set.  ``default_policy``
    forwards to :func:`build_scenario` (the CLI's ``--policy`` flag): it
    sets the scheduling discipline of every resource the scenario does not
    pin explicitly.

    SimScope (:mod:`repro.sim.observe`): ``observe=True`` — or a truthy
    scenario ``"observe"`` key — attaches an observer, adding a ``"metrics"``
    summary to the output without changing any other field (observed runs
    are bit-identical to plain runs).  ``trace_out`` writes the Chrome
    ``trace_event`` JSON (view at https://ui.perfetto.dev) and
    ``metrics_out`` the full metric time-series (JSON, or CSV when the path
    ends in ``.csv``); either implies ``observe=True``.
    """
    if isinstance(scenario, str):
        with open(scenario, "r", encoding="utf-8") as handle:
            spec = json.load(handle)
    else:
        spec = dict(scenario)
    if observe or trace_out is not None or metrics_out is not None:
        if not spec.get("observe"):
            spec["observe"] = True
    scheduler = build_scenario(spec, default_policy=default_policy)
    result = scheduler.run()
    output: Dict[str, object] = {
        "cluster": scheduler.cluster.describe(),
        "placement": scheduler.placement,
        "num_jobs": len(result.jobs),
        "num_trace_events": len(result.trace),
        **result.as_dict(),
    }
    if include_trace:
        output["trace"] = list(result.trace)
    observer = scheduler.engine.observer
    if observer is not None:
        observer.finalize(scheduler.engine.resources)  # idempotent (run() finalized)
        if observer.metrics is not None:
            output["metrics"] = observer.metrics.summary()
        if trace_out is not None and observer.tracer is not None:
            observer.tracer.write(trace_out)
        if metrics_out is not None and observer.metrics is not None:
            observer.metrics.write(metrics_out)
    return output

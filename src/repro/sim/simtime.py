"""Tolerance helpers for comparing simulated timestamps.

Simulated times are floats accumulated through long chains of additions
(event times, bucket ends, fair-share sweeps), so two quantities that are
*semantically* equal can differ in the last ulp.  Exact ``==`` on such
values is a latent heisenbug — SimLint's SIM004 rule forbids it inside the
simulator core and points here instead.

The one sanctioned exception is the fast-forward replay check in
``engine.py``, where *bit-exact* equality is the memoization contract: a
cached iteration may only be replayed when it reproduces the live run
exactly, so tolerance would be wrong there (and the ``==`` carries a
justified inline suppression).
"""

from __future__ import annotations

import math

__all__ = ["TIME_EPS", "times_close", "time_leq", "time_geq"]

#: Default absolute tolerance for simulated-time comparison, in simulated
#: seconds.  Sim times in this repo are O(1e0..1e5) seconds built from
#: O(1e-6..1e0) increments; 1e-9 s is far below any modeled duration yet far
#: above accumulated double rounding error for those magnitudes.
TIME_EPS: float = 1e-9

#: Relative tolerance guard for very large timestamps (abs tol alone would
#: be too strict once times exceed ~1e7 seconds).
TIME_REL: float = 1e-12


def times_close(a: float, b: float, *, eps: float = TIME_EPS) -> bool:
    """Whether two simulated timestamps are equal up to tolerance."""
    return math.isclose(a, b, rel_tol=TIME_REL, abs_tol=eps)


def time_leq(a: float, b: float, *, eps: float = TIME_EPS) -> bool:
    """Tolerant ``a <= b`` for simulated timestamps."""
    return a <= b or times_close(a, b, eps=eps)


def time_geq(a: float, b: float, *, eps: float = TIME_EPS) -> bool:
    """Tolerant ``a >= b`` for simulated timestamps."""
    return a >= b or times_close(a, b, eps=eps)

"""Shared cluster resources: named links and storage targets with finite bandwidth.

The paper's cluster-level claims (shrinking gradient traffic, tolerance to
communication bottlenecks) are about *shared* resources: several training
jobs' all-reduce buckets cross the same leaf–spine fabric, and concurrent
checkpointers write to the same storage target.  Earlier revisions modelled
that sharing with a flat ``comm_scale`` fair-share multiplier; this module
makes it a first-class system concept instead:

* :class:`SharedResource` — a named link or storage target with a finite
  bandwidth and a fixed per-transfer latency;
* :class:`ResourceTimeline` — the per-resource event queue.  Transfers are
  serialized on the resource with first-fit (gap-filling) placement: a
  transfer requested with ``earliest_start = t`` begins at the start of the
  first idle window of sufficient length at or after ``t``.  Two jobs whose
  transfers actually overlap in simulated time genuinely delay each other,
  while a transfer requested while the resource is idle proceeds
  immediately — even when another job already holds a window further in the
  future (the scheduler reserves checkpoint windows ahead of time);
* :class:`ResourcePool` — the engine-side registry of timelines, validated
  by name at call time like job and GPU names.

The discipline is deterministic (placement depends only on the request
sequence, which the scheduler's event heap already makes deterministic) and
conserves bytes (every reserved transfer is recorded with its payload size
and owner).  For request streams issued in non-decreasing
``earliest_start`` order it is also monotone: scaling every transfer
duration down (a faster resource) moves every start and end earlier, so
makespans never grow when bandwidth grows.  Those invariants are what the
hypothesis property suite asserts.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from .cost_model import CostModel

__all__ = ["SharedResource", "ResourceOccupancy", "ResourceTimeline", "ResourcePool"]


@dataclass(frozen=True)
class SharedResource:
    """One named, finite-bandwidth resource shared between jobs.

    Parameters
    ----------
    name:
        Identifier the scheduler and jobs reference (validated at call time).
    bandwidth_gbps:
        Capacity of the resource in gigabits per second.
    kind:
        ``"link"`` (network fabric) or ``"storage"`` (checkpoint target);
        informational — both kinds share the same queueing discipline.
    latency_seconds:
        Fixed per-transfer setup cost (ring launch, storage round trip).
    """

    name: str
    bandwidth_gbps: float
    kind: str = "link"
    latency_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ValueError(f"resource {self.name!r}: bandwidth must be positive")
        if self.kind not in ("link", "storage"):
            raise ValueError(f"resource {self.name!r}: kind must be 'link' or 'storage'")
        if self.latency_seconds < 0:
            raise ValueError(f"resource {self.name!r}: latency must be non-negative")

    def transfer_seconds(self, num_bytes: int, cap_gbps: Optional[float] = None) -> float:
        """Uncontended time to move ``num_bytes`` through this resource.

        ``cap_gbps`` bounds the effective bandwidth from the endpoint side —
        e.g. a checkpoint write cannot outrun the writing machine's NIC even
        when the storage target itself is faster.
        """
        if num_bytes <= 0:
            return 0.0
        bandwidth = self.bandwidth_gbps
        if cap_gbps is not None:
            bandwidth = min(bandwidth, float(cap_gbps))
        return self.latency_seconds + CostModel.transfer_seconds_at(num_bytes, bandwidth)

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "bandwidth_gbps": self.bandwidth_gbps,
            "kind": self.kind,
            "latency_seconds": self.latency_seconds,
        }


@dataclass(frozen=True)
class ResourceOccupancy:
    """One reserved transfer window on a shared resource."""

    start: float
    end: float
    num_bytes: int
    job: Optional[str]
    kind: str

    @property
    def seconds(self) -> float:
        return self.end - self.start

    def as_dict(self) -> Dict[str, object]:
        return {"start": self.start, "end": self.end, "num_bytes": self.num_bytes,
                "job": self.job, "kind": self.kind}


class ResourceTimeline:
    """Occupancy queue of one shared resource (first-fit placement).

    A transfer requested with ``earliest_start = t`` begins at the start of
    the first idle window of sufficient length at or after ``t`` — transfers
    that overlap in simulated time serialize, while an idle resource serves a
    request immediately even when other windows are already reserved further
    in the future.  Every reservation is recorded with its byte payload and
    owning job, so per-resource traffic can be audited afterwards
    (:meth:`total_bytes`, :meth:`bytes_by_job`) and reservations made for a
    later-invalidated iteration can be cancelled (:meth:`cancel`).
    """

    def __init__(self, resource: SharedResource):
        self.resource = resource
        #: Reserved windows, kept sorted by start time (they never overlap).
        self._records: List[ResourceOccupancy] = []
        self._busy_until = 0.0

    @property
    def busy_until(self) -> float:
        return self._busy_until

    @property
    def records(self) -> Tuple[ResourceOccupancy, ...]:
        return tuple(self._records)

    def _first_fit(self, earliest_start: float, seconds: float) -> float:
        """Start of the first idle window of length ``seconds`` at/after
        ``earliest_start`` (records are sorted and disjoint: one pass)."""
        candidate = earliest_start
        for window in self._records:
            if window.start >= candidate + seconds:
                break  # the gap before this window fits
            if window.end > candidate:
                candidate = window.end
        return candidate

    def reserve(self, earliest_start: float, seconds: float, num_bytes: int = 0,
                job: Optional[str] = None, kind: str = "transfer") -> Tuple[float, float]:
        """Reserve ``seconds`` of occupancy; returns the ``(start, end)`` window."""
        if seconds < 0:
            raise ValueError("cannot reserve a negative duration")
        start = self._first_fit(float(earliest_start), seconds)
        end = start + seconds
        record = ResourceOccupancy(start, end, int(num_bytes), job, kind)
        position = bisect.bisect_left([r.start for r in self._records], start)
        self._records.insert(position, record)
        self._busy_until = max(self._busy_until, end)
        return start, end

    def reserve_bytes(self, earliest_start: float, num_bytes: int, job: Optional[str] = None,
                      kind: str = "transfer", cap_gbps: Optional[float] = None) -> Tuple[float, float]:
        """Reserve a transfer priced by the resource's own bandwidth (and ``cap_gbps``)."""
        seconds = self.resource.transfer_seconds(num_bytes, cap_gbps=cap_gbps)
        return self.reserve(earliest_start, seconds, num_bytes=num_bytes, job=job, kind=kind)

    def cancel(self, job: str, after_time: float) -> int:
        """Drop ``job``'s reservations starting at or after ``after_time``.

        Called when a resize/failure/preemption invalidates an in-flight
        iteration whose transfers were already placed on the timeline; windows
        that started before ``after_time`` stay (the bytes were on the wire).
        Returns the number of cancelled reservations.

        Known approximation: transfers that were already placed *behind* a
        now-cancelled window keep their committed start times (their
        completion events are already on the scheduler heap), so contention
        is over-estimated right after a cancellation.  New requests do reuse
        the freed gaps.
        """
        kept = [r for r in self._records
                if not (r.job == job and r.start >= after_time)]
        cancelled = len(self._records) - len(kept)
        if cancelled:
            self._records = kept
            self._busy_until = max((r.end for r in kept), default=0.0)
        return cancelled

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #
    def busy_seconds(self) -> float:
        return sum(r.seconds for r in self._records)

    def total_bytes(self) -> int:
        return sum(r.num_bytes for r in self._records)

    def bytes_by_job(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for record in self._records:
            key = record.job if record.job is not None else "<anonymous>"
            totals[key] = totals.get(key, 0) + record.num_bytes
        return totals

    def bytes_by_kind(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for record in self._records:
            totals[record.kind] = totals.get(record.kind, 0) + record.num_bytes
        return totals

    def as_dict(self) -> Dict[str, object]:
        return {
            "resource": self.resource.as_dict(),
            "busy_seconds": self.busy_seconds(),
            "busy_until": self.busy_until,
            "num_transfers": len(self._records),
            "total_bytes": self.total_bytes(),
            "bytes_by_job": dict(sorted(self.bytes_by_job().items())),
            "bytes_by_kind": dict(sorted(self.bytes_by_kind().items())),
        }


class ResourcePool:
    """Named registry of :class:`ResourceTimeline` s held by the engine."""

    def __init__(self, resources: Optional[Iterable[SharedResource]] = None):
        self._timelines: Dict[str, ResourceTimeline] = {}
        for resource in resources or ():
            self.add(resource)

    def add(self, resource: SharedResource) -> ResourceTimeline:
        if resource.name in self._timelines:
            raise ValueError(f"duplicate resource name {resource.name!r}")
        timeline = ResourceTimeline(resource)
        self._timelines[resource.name] = timeline
        return timeline

    def names(self) -> List[str]:
        return sorted(self._timelines)

    def __contains__(self, name: object) -> bool:
        return name in self._timelines

    def __len__(self) -> int:
        return len(self._timelines)

    def get(self, name: str) -> Optional[ResourceTimeline]:
        return self._timelines.get(str(name))

    def require(self, name: str) -> ResourceTimeline:
        """Validate a resource name at call time (like job/GPU names)."""
        timeline = self._timelines.get(str(name))
        if timeline is None:
            raise KeyError(f"unknown resource {name!r}; known: {self.names()}")
        return timeline

    def cancel_job(self, job: str, after_time: float) -> int:
        return sum(timeline.cancel(job, after_time) for timeline in self._timelines.values())

    def summary(self) -> Dict[str, Dict[str, object]]:
        return {name: timeline.as_dict() for name, timeline in sorted(self._timelines.items())}

"""Shared cluster resources: named links and storage targets with finite bandwidth.

The paper's cluster-level claims (shrinking gradient traffic, tolerance to
communication bottlenecks) are about *shared* resources: several training
jobs' all-reduce buckets cross the same leaf–spine fabric, and concurrent
checkpointers write to the same storage target.  Earlier revisions modelled
that sharing with a flat ``comm_scale`` fair-share multiplier; this module
makes it a first-class system concept instead:

* :class:`SharedResource` — a named link or storage target with a finite
  bandwidth, a fixed per-transfer latency and a **scheduling discipline**
  (``policy="fifo"`` or ``policy="fair"``);
* :class:`ResourceTimeline` — the FIFO (first-fit, gap-filling) per-resource
  event queue.  Transfers are serialized on the resource: a transfer
  requested with ``earliest_start = t`` begins at the start of the first
  idle window of sufficient length at or after ``t``.  Two jobs whose
  transfers actually overlap in simulated time genuinely delay each other,
  while a transfer requested while the resource is idle proceeds
  immediately — even when another job already holds a window further in the
  future (the scheduler reserves checkpoint windows ahead of time).
  Cancelling a window **re-flows** the transfers queued behind it: they are
  re-placed at their earliest feasible start instead of keeping their
  committed slots;
* :class:`FairShareTimeline` — the processor-sharing alternative: instead of
  serializing, the resource splits its capacity evenly among all transfers
  active at each instant (piecewise-constant rates integrated between
  arrival/completion breakpoints), the classic fluid model of a multiplexed
  fabric;
* :class:`ResourcePool` — the engine-side registry of timelines, validated
  by name at call time like job and GPU names.

Both disciplines are deterministic (placement depends only on the request
sequence, which the scheduler's event heap already makes deterministic) and
conserve bytes (every reserved transfer is recorded with its payload size
and owner).  The FIFO discipline is also monotone for request streams issued
in non-decreasing ``earliest_start`` order: scaling every transfer duration
down (a faster resource) moves every start and end earlier, so makespans
never grow when bandwidth grows.  Processor sharing is work-conserving, so
its makespan never exceeds the FIFO makespan on the same request stream.
Those invariants are what the hypothesis property suite asserts; see
``docs/resources.md`` for the full semantics.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, TYPE_CHECKING

from .cost_model import CostModel
from .sanitizer import SimSanitizer

if TYPE_CHECKING:  # pragma: no cover - observers are attached, never imported here
    from .observe.observer import SimObserver

__all__ = [
    "SharedResource",
    "ResourceOccupancy",
    "BaseResourceTimeline",
    "ResourceTimeline",
    "FairShareTimeline",
    "FAIR_INCREMENTAL_DEFAULT",
    "reference_fair_schedule",
    "ResourcePool",
    "build_timeline",
]


@dataclass(frozen=True)
class SharedResource:
    """One named, finite-bandwidth resource shared between jobs.

    Parameters
    ----------
    name:
        Identifier the scheduler and jobs reference (validated at call time).
    bandwidth_gbps:
        Capacity of the resource in gigabits per second.
    kind:
        ``"link"`` (network fabric) or ``"storage"`` (checkpoint target);
        informational — both kinds share the same queueing disciplines.
    latency_seconds:
        Fixed per-transfer setup cost (ring launch, storage round trip).
    policy:
        Scheduling discipline of the resource's timeline: ``"fifo"``
        (first-fit serialization, :class:`ResourceTimeline`) or ``"fair"``
        (processor sharing, :class:`FairShareTimeline`).
    """

    #: Valid scheduling disciplines for a shared resource.
    POLICIES = ("fifo", "fair")

    name: str
    bandwidth_gbps: float
    kind: str = "link"
    latency_seconds: float = 0.0
    policy: str = "fifo"

    def __post_init__(self) -> None:
        """Validate bandwidth, kind, latency and policy eagerly."""
        if self.bandwidth_gbps <= 0:
            raise ValueError(f"resource {self.name!r}: bandwidth must be positive")
        if self.kind not in ("link", "storage"):
            raise ValueError(f"resource {self.name!r}: kind must be 'link' or 'storage'")
        if self.latency_seconds < 0:
            raise ValueError(f"resource {self.name!r}: latency must be non-negative")
        if self.policy not in self.POLICIES:
            raise ValueError(f"resource {self.name!r}: policy must be one of {self.POLICIES}")

    def transfer_seconds(self, num_bytes: int, cap_gbps: Optional[float] = None) -> float:
        """Uncontended time to move ``num_bytes`` through this resource.

        ``cap_gbps`` bounds the effective bandwidth from the endpoint side —
        e.g. a checkpoint write cannot outrun the writing machine's NIC even
        when the storage target itself is faster.
        """
        if num_bytes <= 0:
            return 0.0
        bandwidth = self.bandwidth_gbps
        if cap_gbps is not None:
            bandwidth = min(bandwidth, float(cap_gbps))
        return self.latency_seconds + CostModel.transfer_seconds_at(num_bytes, bandwidth)

    def as_dict(self) -> Dict[str, object]:
        """Plain-data view of the resource (used in scheduler summaries)."""
        return {
            "name": self.name,
            "bandwidth_gbps": self.bandwidth_gbps,
            "kind": self.kind,
            "latency_seconds": self.latency_seconds,
            "policy": self.policy,
        }


@dataclass(frozen=True)
class ResourceOccupancy:
    """One reserved transfer window on a shared resource.

    ``earliest_start`` preserves the caller's requested start (what the
    window can be re-flowed back to after a cancellation) and ``seq`` the
    reservation order (what re-flow replays), distinct from the committed
    ``start``/``end`` the discipline assigned.
    """

    start: float
    end: float
    num_bytes: int
    job: Optional[str]
    kind: str
    earliest_start: float = 0.0
    seq: int = -1

    @property
    def seconds(self) -> float:
        """Committed duration of the window."""
        return self.end - self.start

    def as_dict(self) -> Dict[str, object]:
        """Plain-data view of the window."""
        return {"start": self.start, "end": self.end, "num_bytes": self.num_bytes,
                "job": self.job, "kind": self.kind}


class BaseResourceTimeline:
    """Shared bookkeeping for the per-resource scheduling disciplines.

    Subclasses implement :meth:`reserve` and :meth:`cancel`; everything else
    (byte-priced reservations, per-job/per-kind accounting, plain-data
    summaries) is discipline-independent.
    """

    def __init__(self, resource: SharedResource):
        """Wrap ``resource`` with an initially empty occupancy record."""
        self.resource = resource
        #: Committed windows; FIFO keeps them disjoint, fair-share windows
        #: may overlap (capacity is split, not serialized).
        self._records: List[ResourceOccupancy] = []
        self._busy_until = 0.0
        self._seq = 0
        # Effective capacity, mutable mid-run by set_capacity() (degraded
        # links).  While it equals the nominal bandwidth the timeline is
        # bit-identical to earlier revisions; the change log is kept in
        # absolute sim time so piecewise integration stays exact.
        self._capacity_gbps = resource.bandwidth_gbps
        self._cap_changes: List[Tuple[float, float]] = []
        self._cap_times: List[float] = []
        #: Optional :class:`~repro.sim.sanitizer.SimSanitizer` notified on
        #: every reserve/cancel (attached by the pool; ``None`` = plain run).
        self.sanitizer: Optional[SimSanitizer] = None
        #: Optional :class:`~repro.sim.observe.observer.SimObserver` sampling
        #: request-time queue depth and wait (attached by the pool; ``None``
        #: = unobserved run, the zero-overhead default).
        self.observer: Optional["SimObserver"] = None

    @property
    def busy_until(self) -> float:
        """Latest committed window end (0.0 while the timeline is empty)."""
        return self._busy_until

    @property
    def capacity_gbps(self) -> float:
        """Current effective capacity (nominal until :meth:`set_capacity`)."""
        return self._capacity_gbps

    def capacity_profile(self) -> Tuple[Tuple[float, float], ...]:
        """``(at_time, factor)`` capacity change points, factor of nominal.

        Empty while the capacity never changed — the common case callers use
        to short-circuit profile-aware arithmetic back to the exact legacy
        expressions.
        """
        nominal = self.resource.bandwidth_gbps
        return tuple((at_time, gbps / nominal) for at_time, gbps in self._cap_changes)

    def set_capacity(self, at_time: float, gbps: float) -> None:
        """Change the effective capacity at ``at_time``, resweeping the open
        busy period (transfers in flight or queued re-quote byte-conservingly
        from the change instant).  Discipline-specific."""
        raise NotImplementedError

    def _note_capacity_change(self, at_time: float, gbps: float) -> Tuple[float, float]:
        """Validate and log a capacity change; returns ``(old, new)`` gbps.

        Changes must be time-ordered (the scheduler applies them from its
        event heap, which guarantees it) and strictly positive — a dead link
        is modelled as a tiny positive floor, never zero, so every quote
        stays finite.
        """
        at_time = float(at_time)
        gbps = float(gbps)
        name = self.resource.name
        if gbps <= 0:
            raise ValueError(f"resource {name!r}: capacity must be positive, got {gbps}")
        if at_time < 0:
            raise ValueError(f"resource {name!r}: capacity change time must be >= 0")
        if self._cap_times and at_time < self._cap_times[-1]:
            raise ValueError(
                f"resource {name!r}: capacity changes must be applied in time order "
                f"(got {at_time} after {self._cap_times[-1]})")
        old = self._capacity_gbps
        self._capacity_gbps = gbps
        self._cap_changes.append((at_time, gbps))
        self._cap_times.append(at_time)
        return old, gbps

    def transfer_seconds(self, num_bytes: int, cap_gbps: Optional[float] = None) -> float:
        """Uncontended time to move ``num_bytes`` at the *current* capacity.

        Matches :meth:`SharedResource.transfer_seconds` bit-for-bit while the
        capacity equals the nominal bandwidth; after a :meth:`set_capacity`
        new quotes price at the degraded (or restored) rate.  ``cap_gbps``
        bounds the effective bandwidth from the endpoint side, as before.
        """
        if num_bytes <= 0:
            return 0.0
        bandwidth = self._quote_gbps()
        if cap_gbps is not None:
            bandwidth = min(bandwidth, float(cap_gbps))
        return self.resource.latency_seconds + CostModel.transfer_seconds_at(num_bytes, bandwidth)

    def _quote_gbps(self) -> float:
        """Bandwidth new reservations are priced at (discipline-specific)."""
        return self._capacity_gbps

    @property
    def records(self) -> Tuple[ResourceOccupancy, ...]:
        """Snapshot of the committed occupancy windows."""
        return tuple(self._records)

    def reserve(self, earliest_start: float, seconds: float, num_bytes: int = 0,
                job: Optional[str] = None, kind: str = "transfer",
                weight: float = 1.0) -> Tuple[float, float]:
        """Reserve ``seconds`` of occupancy; returns the ``(start, end)`` window.

        ``weight`` is the transfer's fair-share weight — processor-sharing
        timelines split capacity proportionally to it; FIFO serialization
        ignores it (a queue has no notion of rate shares).
        """
        raise NotImplementedError

    def cancel(self, job: str, after_time: float) -> int:
        """Drop ``job``'s not-yet-started reservations; returns how many."""
        raise NotImplementedError

    def reserve_bytes(self, earliest_start: float, num_bytes: int, job: Optional[str] = None,
                      kind: str = "transfer", cap_gbps: Optional[float] = None,
                      weight: float = 1.0) -> Tuple[float, float]:
        """Reserve a transfer priced by the timeline's current capacity (and ``cap_gbps``)."""
        seconds = self.transfer_seconds(num_bytes, cap_gbps=cap_gbps)
        return self.reserve(earliest_start, seconds, num_bytes=num_bytes, job=job, kind=kind,
                            weight=weight)

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #
    def busy_seconds(self) -> float:
        """Total capacity-seconds of work committed to the resource."""
        return sum(r.seconds for r in self._records)

    def total_bytes(self) -> int:
        """Total payload bytes across every committed window."""
        return sum(r.num_bytes for r in self._records)

    def bytes_by_job(self) -> Dict[str, int]:
        """Payload bytes grouped by owning job (``<anonymous>`` if unowned)."""
        totals: Dict[str, int] = {}
        for record in self._records:
            key = record.job if record.job is not None else "<anonymous>"
            totals[key] = totals.get(key, 0) + record.num_bytes
        return totals

    def bytes_by_kind(self) -> Dict[str, int]:
        """Payload bytes grouped by transfer kind (allreduce, checkpoint, ...)."""
        totals: Dict[str, int] = {}
        for record in self._records:
            totals[record.kind] = totals.get(record.kind, 0) + record.num_bytes
        return totals

    def as_dict(self) -> Dict[str, object]:
        """Deterministic plain-data summary of the timeline's occupancy."""
        return {
            "resource": self.resource.as_dict(),
            "busy_seconds": self.busy_seconds(),
            "busy_until": self.busy_until,
            "num_transfers": len(self._records),
            "total_bytes": self.total_bytes(),
            "bytes_by_job": dict(sorted(self.bytes_by_job().items())),
            "bytes_by_kind": dict(sorted(self.bytes_by_kind().items())),
        }


class ResourceTimeline(BaseResourceTimeline):
    """Occupancy queue of one shared resource (first-fit FIFO placement).

    A transfer requested with ``earliest_start = t`` begins at the start of
    the first idle window of sufficient length at or after ``t`` — transfers
    that overlap in simulated time serialize, while an idle resource serves a
    request immediately even when other windows are already reserved further
    in the future.  Every reservation is recorded with its byte payload and
    owning job, so per-resource traffic can be audited afterwards
    (:meth:`total_bytes`, :meth:`bytes_by_job`) and reservations made for a
    later-invalidated iteration can be cancelled (:meth:`cancel`) — which
    re-flows the transfers queued behind the freed windows.
    """

    def _first_fit(self, earliest_start: float, seconds: float) -> float:
        """Start of the first idle window of length ``seconds`` at/after
        ``earliest_start`` (records are sorted and disjoint: one pass).

        Windows that end before ``earliest_start`` cannot constrain the
        placement, and being disjoint and start-sorted, every window before
        the last one starting at or before ``earliest_start`` does — so the
        scan starts there instead of at the head of the queue.
        """
        candidate = earliest_start
        if candidate >= self._busy_until:
            return candidate  # past every committed window
        index = max(bisect.bisect_right(self._starts, candidate) - 1, 0)
        for position in range(index, len(self._records)):
            window = self._records[position]
            if window.start >= candidate + seconds:
                break  # the gap before this window fits
            if window.end > candidate:
                candidate = window.end
        return candidate

    def __init__(self, resource: SharedResource):
        """Wrap ``resource`` with an empty first-fit occupancy queue."""
        super().__init__(resource)
        #: Window start times, kept parallel to ``_records`` so insertion
        #: points come from one bisect instead of rebuilding a key list.
        self._starts: List[float] = []

    def _insert(self, record: ResourceOccupancy) -> None:
        """Insert a committed window, keeping records sorted by start time."""
        position = bisect.bisect_left(self._starts, record.start)
        self._records.insert(position, record)
        self._starts.insert(position, record.start)
        self._busy_until = max(self._busy_until, record.end)

    def reserve(self, earliest_start: float, seconds: float, num_bytes: int = 0,
                job: Optional[str] = None, kind: str = "transfer",
                weight: float = 1.0) -> Tuple[float, float]:
        """Reserve ``seconds`` of occupancy; returns the ``(start, end)`` window.

        ``weight`` is accepted for interface parity with the fair-share
        discipline and ignored: FIFO windows serialize, they never share
        capacity.
        """
        if seconds < 0:
            raise ValueError("cannot reserve a negative duration")
        earliest_start = float(earliest_start)
        depth = 0
        if self.observer is not None:
            # Queue depth as seen by this request: committed windows that had
            # not started by the requested time (sampled before insertion).
            depth = len(self._records) - bisect.bisect_left(self._starts, earliest_start)
        start = self._first_fit(earliest_start, seconds)
        end = start + seconds
        self._insert(ResourceOccupancy(start, end, int(num_bytes), job, kind,
                                       earliest_start=earliest_start, seq=self._seq))
        self._seq += 1
        if self.sanitizer is not None:
            self.sanitizer.note_reserve(self, earliest_start, start, end, seconds,
                                        num_bytes, job, kind)
        if self.observer is not None:
            self.observer.note_reserve(self, earliest_start, start, end,
                                       int(num_bytes), job, kind, depth)
        return start, end

    def cancel(self, job: str, after_time: float) -> int:
        """Drop ``job``'s reservations starting at or after ``after_time``.

        Called when a resize/failure/preemption invalidates an in-flight
        iteration whose transfers were already placed on the timeline; windows
        that started before ``after_time`` stay (the bytes were on the wire).
        Returns the number of cancelled reservations.

        Transfers that were queued *behind* a cancelled window are
        **re-flowed**: every window that had not started by ``after_time`` is
        re-placed, in committed on-wire order (start, then reservation
        sequence), at its earliest feasible start —
        ``max(earliest_start, after_time)`` first-fit against the surviving
        windows — so the freed capacity benefits the transfers that were
        actually waiting for it, not just future requests.  Replaying in
        committed-start order makes re-flow provably never move a window
        later: when a window is re-placed, every window previously committed
        left of it has only moved further left, so its old slot is still
        free.  Completion events other components already derived from the
        old quotes keep their committed times (the scheduler's event heap is
        not rewritten); the timeline is the audit of when the resource
        actually carried the bytes.
        """
        kept: List[ResourceOccupancy] = []
        cancelled = 0
        for record in self._records:
            if record.job == job and record.start >= after_time:
                cancelled += 1
            else:
                kept.append(record)
        if not cancelled:
            return 0
        if self.sanitizer is not None:
            self.sanitizer.note_cancel(self, job, after_time)
        started = [r for r in kept if r.start < after_time]
        queued = sorted((r for r in kept if r.start >= after_time),
                        key=lambda r: (r.start, r.seq))
        self._records = sorted(started, key=lambda r: (r.start, r.seq))
        self._starts = [r.start for r in self._records]
        self._busy_until = max((r.end for r in self._records), default=0.0)
        for record in queued:
            # Re-place at the earliest feasible start: never before the
            # original request, never before the cancellation instant (the
            # transfer was demonstrably not on the wire by then).
            earliest = max(record.earliest_start, after_time)
            start = self._first_fit(earliest, record.seconds)
            self._insert(ResourceOccupancy(start, start + record.seconds, record.num_bytes,
                                           record.job, record.kind,
                                           earliest_start=record.earliest_start,
                                           seq=record.seq))
        if self.sanitizer is not None:
            self.sanitizer.note_cancelled(self)
        return cancelled

    def set_capacity(self, at_time: float, gbps: float) -> None:
        """Change the link's effective capacity at ``at_time``.

        The open busy period is resweeped byte-conservingly from the change
        instant:

        * windows fully closed by ``at_time`` keep their committed slots (the
          bytes were on the wire at the old rate);
        * the (at most one — FIFO windows are disjoint) window straddling
          ``at_time`` keeps its start, and its **remaining** span re-quotes
          at the new rate: ``new_end = at_time + (end - at_time) * old/new``
          — exact piecewise integration of the bytes still to move;
        * windows that had not started by ``at_time`` re-quote their full
          duration by the same ratio and re-flow first-fit in committed
          ``(start, seq)`` order at ``max(earliest_start, at_time)``, the
          same replay the cancellation path uses.

        The fixed per-transfer latency share of a window scales with the
        ratio too — a documented approximation (see ``docs/faults.md``) that
        keeps the resweep a single exact multiply.  New quotes after the
        change price at the new rate via :meth:`transfer_seconds`.  Payload
        bytes are untouched, so the sanitizer's byte ledger still balances.
        """
        old, new = self._note_capacity_change(at_time, gbps)
        ratio = old / new
        closed: List[ResourceOccupancy] = []
        queued: List[ResourceOccupancy] = []
        for record in self._records:
            if record.end <= at_time:
                closed.append(record)
            elif record.start < at_time:
                new_end = at_time + (record.end - at_time) * ratio
                closed.append(ResourceOccupancy(record.start, new_end, record.num_bytes,
                                                record.job, record.kind,
                                                earliest_start=record.earliest_start,
                                                seq=record.seq))
            else:
                queued.append(record)
        queued.sort(key=lambda r: (r.start, r.seq))
        self._records = sorted(closed, key=lambda r: (r.start, r.seq))
        self._starts = [r.start for r in self._records]
        self._busy_until = max((r.end for r in self._records), default=0.0)
        for record in queued:
            seconds = record.seconds * ratio
            earliest = max(record.earliest_start, at_time)
            start = self._first_fit(earliest, seconds)
            self._insert(ResourceOccupancy(start, start + seconds, record.num_bytes,
                                           record.job, record.kind,
                                           earliest_start=record.earliest_start,
                                           seq=record.seq))
        if self.sanitizer is not None:
            self.sanitizer.note_capacity(self, at_time, old, new)


@dataclass
class _FairTransfer:
    """One transfer in a processor-sharing timeline (demand in capacity-seconds).

    ``weight`` scales the transfer's share of the capacity: at any instant an
    active transfer progresses at ``weight / sum(active weights)`` of the
    line rate (all weights 1.0 recovers the classic even split).
    """

    arrival: float
    demand: float
    num_bytes: int
    job: Optional[str]
    kind: str
    seq: int
    weight: float = 1.0


#: Process-wide default for :class:`FairShareTimeline`'s integration mode.
#: ``True`` (the production setting) advances the schedule incrementally from
#: the last arrival breakpoint; ``False`` re-integrates the whole admitted
#: history on every arrival — the pre-incremental reference behaviour, kept
#: selectable because results are bit-identical either way and the contended
#: benchmark measures exactly this before/after.
FAIR_INCREMENTAL_DEFAULT = True


def reference_fair_schedule(transfers: Iterable[_FairTransfer]) -> Dict[int, float]:
    """Completion times of a processor-sharing schedule, swept from scratch.

    The standalone reference integrator the incremental
    :class:`FairShareTimeline` is tested against (the hypothesis equivalence
    suite feeds both random arrival/cancel streams): one chronological sweep
    over arrival/completion breakpoints, each active transfer draining at
    ``weight / sum(active weights)`` of the line rate between breakpoints.
    Returns ``{seq: completion time}`` for every transfer.
    """
    order = sorted(transfers, key=lambda t: (t.arrival, t.seq))
    ends: Dict[int, float] = {}
    remaining: Dict[int, float] = {}
    weights: Dict[int, float] = {}
    index, now = 0, 0.0
    total = len(order)
    while index < total or remaining:
        if not remaining:
            now = order[index].arrival
        while index < total and order[index].arrival <= now:
            remaining[order[index].seq] = order[index].demand
            weights[order[index].seq] = order[index].weight
            index += 1
        if not remaining:
            continue  # jump to the next arrival
        next_arrival = order[index].arrival if index < total else float("inf")
        if len(remaining) == 1:
            # Sole active transfer: full line rate regardless of weight
            # (work conservation), and exact arithmetic — the quiet-link
            # case the engine's fast-forward replay relies on.
            (solo_seq,) = remaining
            finish = now + remaining[solo_seq]
            if finish <= next_arrival:
                del remaining[solo_seq]
                ends[solo_seq] = finish
                now = finish
            else:
                remaining[solo_seq] -= next_arrival - now
                now = next_arrival
            continue
        total_weight = sum(weights[seq] for seq in remaining)
        ratios = {seq: left / weights[seq] for seq, left in remaining.items()}
        min_ratio = min(ratios.values())
        finish = now + min_ratio * total_weight
        if finish <= next_arrival:
            done = [seq for seq, ratio in ratios.items() if ratio == min_ratio]
            for seq in list(remaining):
                remaining[seq] -= min_ratio * weights[seq]
            for seq in done:
                del remaining[seq]
                ends[seq] = finish
            now = finish
        else:
            elapsed = next_arrival - now
            for seq in list(remaining):
                remaining[seq] -= elapsed * weights[seq] / total_weight
            now = next_arrival
    return ends


class FairShareTimeline(BaseResourceTimeline):
    """Processor-sharing occupancy of one shared resource.

    The fluid model of a multiplexed fabric: at every instant the resource's
    capacity is split **evenly** among the transfers active at that instant
    (arrived, not yet complete), so ``k`` concurrent transfers each progress
    at ``1/k`` of the line rate.  Completion times are computed by
    integrating the piecewise-constant rates between breakpoints (arrivals
    and completions) — byte-conserving by construction, deterministic, and
    work-conserving: the resource is never idle while work is pending, so
    the fair-share makespan never exceeds the FIFO makespan on the same
    request stream (a property the hypothesis suite asserts).

    Service begins at the transfer's ``earliest_start`` (there is no queueing
    delay under processor sharing, only a reduced rate), so a committed
    window's ``start`` equals the request time and its ``end`` is the
    integrated completion.  A transfer arriving later **revises** the
    recorded ends of transfers still in flight (they now share capacity);
    the ``(start, end)`` returned by :meth:`reserve` reflects everything
    known at quote time and is the commitment earlier callers keep, while
    :attr:`records` always shows the fully re-flowed schedule.

    The integration is **incremental**: the sweep state (per-transfer
    remaining demand and weight of every transfer still in service) is kept
    frozen at the most recent arrival breakpoint — the *frontier* — so an
    in-order arrival only advances the schedule from the breakpoint it
    perturbs (~O(active²) decrement steps) instead of re-integrating the
    whole busy period.  Advancing the frontier performs exactly the
    breakpoint arithmetic a from-scratch resweep performs, so the schedule
    is bit-identical to :func:`reference_fair_schedule` — the hypothesis
    equivalence suite and SimSan's rate-feasibility audit both assert this.

    An *out-of-order* arrival (behind the frontier — routine when several
    jobs' live iterations interleave their bucket streams) **rewinds**
    instead of resweeping: a post-admission state snapshot is kept per
    transfer, so the schedule restores the snapshot just before the
    insertion point and replays only the admissions behind it
    (:attr:`rewind_reserves` counts these, and the work is proportional to
    how far behind the frontier the arrival lands).  Only cancellations —
    and every arrival in the ``incremental=False`` reference mode — pay a
    full re-integration (:attr:`full_resweeps`, versus
    :attr:`incremental_reserves`).
    """

    def __init__(self, resource: SharedResource, incremental: Optional[bool] = None):
        """Wrap ``resource`` with an empty processor-sharing schedule.

        ``incremental`` selects the integration mode (``None``: the
        module-level :data:`FAIR_INCREMENTAL_DEFAULT`); ``False`` is the
        reference mode that re-integrates the whole history on every
        arrival — bit-identical results, pre-incremental cost.
        """
        super().__init__(resource)
        self._transfers: List[_FairTransfer] = []
        #: seq -> completion time for every admitted transfer.
        self._ends: Dict[int, float] = {}
        # Incremental integration state, frozen at the most recent admitted
        # arrival (the *frontier*): remaining demand and weight of every
        # transfer still in service there.  reserve() advances this state to
        # the new arrival (finalizing the completions it crosses), admits the
        # transfer, then *projects* the active set's completions on a scratch
        # copy — the saved state is untouched, so the next arrival re-derives
        # exactly the projected values on its way forward (bit-identity).
        self._frontier = 0.0
        self._remaining: Dict[int, float] = {}
        self._weights: Dict[int, float] = {}
        #: Max end among *finalized* completions (immutable history); the
        #: busy watermark is this folded with the live projection's max, so
        #: it is an exact function of the current schedule in both modes.
        self._done_max_end = 0.0
        # Rewind support: admitted transfers in canonical (arrival, seq)
        # order, their sort keys (for bisect), and one state snapshot per
        # admission — (frontier, remaining, weights, done_max_end) captured
        # right after the transfer was admitted.  An out-of-order arrival
        # restores the snapshot preceding its insertion point and replays
        # only the admissions behind it.
        self._order: List[_FairTransfer] = []
        self._order_keys: List[Tuple[float, int]] = []
        self._snaps: List[Tuple[float, Dict[int, float], Dict[int, float], float]] = []
        self._incremental = (FAIR_INCREMENTAL_DEFAULT if incremental is None
                             else bool(incremental))
        #: Perf counter: in-order arrivals integrated from the frontier.
        self.incremental_reserves = 0
        #: Perf counter: out-of-order arrivals served by a snapshot rewind.
        self.rewind_reserves = 0
        #: Perf counter: full from-scratch re-integrations (cancels, and
        #: every arrival in the reference mode).
        self.full_resweeps = 0

    @property
    def records(self) -> Tuple[ResourceOccupancy, ...]:
        """The fully re-flowed schedule, sorted by (start, admission order)."""
        return tuple(sorted(
            (ResourceOccupancy(t.arrival, self._ends[t.seq], t.num_bytes, t.job, t.kind,
                               earliest_start=t.arrival, seq=t.seq)
             for t in self._transfers),
            key=lambda r: (r.start, r.seq)))

    def reserve(self, earliest_start: float, seconds: float, num_bytes: int = 0,
                job: Optional[str] = None, kind: str = "transfer",
                weight: float = 1.0) -> Tuple[float, float]:
        """Admit a transfer of ``seconds`` capacity-seconds; returns ``(start, end)``.

        ``start`` is ``earliest_start`` itself (processor sharing serves
        immediately at a shared rate); ``end`` is the completion under the
        recomputed fair-share schedule.  ``weight`` sets the transfer's
        capacity share relative to the other active transfers (default 1.0:
        the classic even split); a transfer running alone always gets the
        full capacity regardless of its weight (work conservation).
        """
        if seconds < 0:
            raise ValueError("cannot reserve a negative duration")
        if weight <= 0:
            raise ValueError("fair-share weight must be positive")
        transfer = _FairTransfer(float(earliest_start), float(seconds), int(num_bytes),
                                 job, kind, self._seq, weight=float(weight))
        self._seq += 1
        self._transfers.append(transfer)
        active_depth: Optional[int] = None
        if not self._incremental:
            # Reference mode: rebuild the whole schedule from scratch.
            self._replay_all()
        elif transfer.arrival < self._frontier:
            # Out-of-order arrival behind the frontier (interleaved jobs):
            # rewind to the snapshot before its slot and replay the suffix.
            self._rewind_insert(transfer)
            self.rewind_reserves += 1
        else:
            self._advance(transfer.arrival)
            self._admit(transfer)
            self._project()
            self.incremental_reserves += 1
            active_depth = len(self._remaining) - 1
        end = self._ends[transfer.seq]
        if self.sanitizer is not None:
            self.sanitizer.note_reserve(self, transfer.arrival, transfer.arrival, end,
                                        seconds, num_bytes, job, kind)
        if self.observer is not None:
            # Queue depth under processor sharing: transfers this arrival
            # shares capacity with (still draining at its arrival instant).
            if active_depth is None:
                active_depth = sum(1 for other in self._transfers
                                   if other.seq != transfer.seq
                                   and other.arrival <= transfer.arrival
                                   and self._ends[other.seq] > transfer.arrival)
            self.observer.note_reserve(self, transfer.arrival, transfer.arrival, end,
                                       int(num_bytes), job, kind, active_depth)
        return transfer.arrival, end

    def cancel(self, job: str, after_time: float) -> int:
        """Drop ``job``'s transfers arriving at or after ``after_time``.

        Transfers that arrived before ``after_time`` have been in (shared)
        service since their arrival, so they stay in full — the conservative
        analogue of FIFO's "bytes on the wire" rule.  The surviving schedule
        is recomputed, which re-flows every affected transfer automatically:
        completions move earlier the moment the cancelled demand disappears.
        Returns the number of cancelled transfers.
        """
        kept = [t for t in self._transfers
                if not (t.job == job and t.arrival >= after_time)]
        cancelled = len(self._transfers) - len(kept)
        if cancelled:
            if self.sanitizer is not None:
                self.sanitizer.note_cancel(self, job, after_time)
            self._transfers = kept
            self._replay_all()
            if self.sanitizer is not None:
                self.sanitizer.note_cancelled(self)
        return cancelled

    def busy_seconds(self) -> float:
        """Total capacity-seconds of admitted demand (not wall-clock spans).

        Overlapping fair-share windows each get a fraction of the capacity,
        so summing wall-clock window lengths would double-count; the demand
        sum equals what the FIFO discipline would report for the same
        request stream.
        """
        return sum(t.demand for t in self._transfers)

    def total_bytes(self) -> int:
        """Total payload bytes across every admitted transfer."""
        return sum(t.num_bytes for t in self._transfers)

    def bytes_by_job(self) -> Dict[str, int]:
        """Payload bytes grouped by owning job (``<anonymous>`` if unowned)."""
        totals: Dict[str, int] = {}
        for transfer in self._transfers:
            key = transfer.job if transfer.job is not None else "<anonymous>"
            totals[key] = totals.get(key, 0) + transfer.num_bytes
        return totals

    def bytes_by_kind(self) -> Dict[str, int]:
        """Payload bytes grouped by transfer kind (allreduce, checkpoint, ...)."""
        totals: Dict[str, int] = {}
        for transfer in self._transfers:
            totals[transfer.kind] = totals.get(transfer.kind, 0) + transfer.num_bytes
        return totals

    def as_dict(self) -> Dict[str, object]:
        """Deterministic plain-data summary of the timeline's occupancy."""
        return {
            "resource": self.resource.as_dict(),
            "busy_seconds": self.busy_seconds(),
            "busy_until": self.busy_until,
            "num_transfers": len(self._transfers),
            "total_bytes": self.total_bytes(),
            "bytes_by_job": dict(sorted(self.bytes_by_job().items())),
            "bytes_by_kind": dict(sorted(self.bytes_by_kind().items())),
        }

    def _quote_gbps(self) -> float:
        """Fair-share demand is priced at the *nominal* bandwidth.

        Under processor sharing a capacity change degrades the service rate
        of every active transfer over time — the integrator applies the
        factor (see :meth:`_end_time`), so pricing demand at the effective
        rate too would double-count the degradation.
        """
        return self.resource.bandwidth_gbps

    def set_capacity(self, at_time: float, gbps: float) -> None:
        """Change the effective capacity at ``at_time``.

        The processor-sharing fluid model handles this exactly: demand is
        stored in nominal capacity-seconds and the integrator drains it at
        ``factor(t)`` (effective/nominal) nominal-units per second, so a
        capacity change is one more breakpoint in the piecewise-constant
        rate.  The whole admitted history is re-integrated against the new
        profile (an out-of-order admission behind a change point replays
        correctly afterwards because the profile is indexed by absolute sim
        time); service already rendered before ``at_time`` is untouched
        because the factors before the change point are unchanged.  The
        transfers' sharing fractions (``weight / sum(weights)``) are
        capacity-independent, so relative fairness is preserved.
        """
        old, new = self._note_capacity_change(at_time, gbps)
        self._replay_all()
        if self.sanitizer is not None:
            self.sanitizer.note_capacity(self, at_time, old, new)

    def _end_time(self, now: float, work: float) -> float:
        """Absolute completion time of ``work`` nominal capacity-seconds
        served from ``now`` under the capacity profile.

        With no capacity changes this is exactly ``now + work`` — the legacy
        expression, bit-for-bit — otherwise the piecewise-constant factor is
        integrated segment by segment.
        """
        if not self._cap_changes:
            return now + work
        if work <= 0.0:
            return now
        nominal = self.resource.bandwidth_gbps
        index = bisect.bisect_right(self._cap_times, now)
        time = now
        left = work
        while True:
            factor = (self._cap_changes[index - 1][1] / nominal) if index > 0 else 1.0
            if index >= len(self._cap_times):
                return time + left / factor
            boundary = self._cap_times[index]
            segment_work = (boundary - time) * factor
            if segment_work >= left:
                return time + left / factor
            left -= segment_work
            time = boundary
            index += 1

    def _work(self, now: float, target: float) -> float:
        """Nominal capacity-seconds the resource serves over ``[now, target]``.

        The inverse of :meth:`_end_time`: with no capacity changes exactly
        ``target - now`` (the legacy expression), otherwise the integral of
        the piecewise-constant factor over the interval.
        """
        if not self._cap_changes:
            return target - now
        if target <= now:
            return 0.0
        nominal = self.resource.bandwidth_gbps
        index = bisect.bisect_right(self._cap_times, now)
        time = now
        served = 0.0
        while time < target:
            factor = (self._cap_changes[index - 1][1] / nominal) if index > 0 else 1.0
            boundary = self._cap_times[index] if index < len(self._cap_times) else target
            upto = min(boundary, target)
            served += (upto - time) * factor
            time = upto
            index += 1
        return served

    def transfer_schedule(self) -> Tuple[Tuple[float, float, float, float], ...]:
        """``(arrival, end, demand, weight)`` rows of the current schedule.

        The sanitizer's rate-conservation audit consumes this: demand is in
        capacity-seconds, so a feasible processor-sharing schedule never
        completes more demand inside a window than the window's length.
        """
        return tuple(sorted(
            (t.arrival, self._ends[t.seq], t.demand, t.weight)
            for t in self._transfers))

    def _advance(self, target: float) -> None:
        """Integrate the frontier state forward to ``target`` (the next arrival).

        Completions crossed on the way become final and land in the end
        cache; a partial interval at the end positions the state exactly at
        ``target``.  The arithmetic per breakpoint is exactly the reference
        sweep's with ``target`` as its next-arrival bound — between
        breakpoints each active transfer drains at ``weight / sum(weights)``
        of the line rate (all weights 1.0: the classic ``1/len(active)``
        even split, bit-for-bit); ties (simultaneous completions) resolve
        exactly because tied transfers carry identical remaining-to-weight
        ratios; a transfer running alone drains at exactly the full rate, so
        its completion is ``now + remaining`` with no weight arithmetic —
        the quiet-link case the engine's fast-forward replay relies on.
        """
        remaining, weights = self._remaining, self._weights
        now = self._frontier
        while remaining:
            if len(remaining) == 1:
                # Sole active transfer: full line rate regardless of weight
                # (work conservation), and exact arithmetic.
                (solo_seq,) = remaining
                finish = self._end_time(now, remaining[solo_seq])
                if finish <= target:
                    del remaining[solo_seq]
                    del weights[solo_seq]
                    self._ends[solo_seq] = finish
                    self._done_max_end = max(self._done_max_end, finish)
                    now = finish
                    continue
                remaining[solo_seq] -= self._work(now, target)
                break
            total_weight = sum(weights[seq] for seq in remaining)
            ratios = {seq: left / weights[seq] for seq, left in remaining.items()}
            min_ratio = min(ratios.values())
            finish = self._end_time(now, min_ratio * total_weight)
            if finish <= target:
                done = [seq for seq, ratio in ratios.items() if ratio == min_ratio]
                for seq in list(remaining):
                    remaining[seq] -= min_ratio * weights[seq]
                for seq in done:
                    del remaining[seq]
                    del weights[seq]
                    self._ends[seq] = finish
                self._done_max_end = max(self._done_max_end, finish)
                now = finish
            else:
                served = self._work(now, target)
                for seq in list(remaining):
                    remaining[seq] -= served * weights[seq] / total_weight
                break
        # Drained before target (idle gap) or stopped exactly at it: either
        # way the frontier now sits at the arrival about to be admitted.
        self._frontier = target

    def _admit(self, transfer: _FairTransfer) -> None:
        """Enter an arrival (the frontier already sits at it) into the state,
        appending its canonical-order slot and post-admission snapshot."""
        self._remaining[transfer.seq] = transfer.demand
        self._weights[transfer.seq] = transfer.weight
        self._order.append(transfer)
        self._order_keys.append((transfer.arrival, transfer.seq))
        self._snaps.append((self._frontier, dict(self._remaining),
                            dict(self._weights), self._done_max_end))

    def _rewind_insert(self, transfer: _FairTransfer) -> None:
        """Insert an arrival behind the frontier by snapshot rewind + replay.

        Restores the state captured right after the admission preceding the
        new transfer's canonical slot, then replays the later admissions
        through the same :meth:`_advance`/:meth:`_admit` steps a fully
        in-order stream would take — so the rebuilt schedule (dict iteration
        order included) is bit-identical to a from-scratch resweep of the
        reordered stream, at a cost proportional to the rewind distance.
        Ends finalized past the rewind point are recomputed on the way
        forward; ends finalized before it are untouched.
        """
        position = bisect.bisect(self._order_keys, (transfer.arrival, transfer.seq))
        if position == 0:
            self._frontier = 0.0
            self._remaining = {}
            self._weights = {}
            self._done_max_end = 0.0
        else:
            frontier, remaining, weights, done_max_end = self._snaps[position - 1]
            self._frontier = frontier
            self._remaining = dict(remaining)
            self._weights = dict(weights)
            self._done_max_end = done_max_end
        replay = self._order[position:]
        del self._order[position:]
        del self._order_keys[position:]
        del self._snaps[position:]
        self._advance(transfer.arrival)
        self._admit(transfer)
        for later in replay:
            self._advance(later.arrival)
            self._admit(later)
        self._project()

    def _project(self) -> None:
        """Quote completions for the active set by draining a scratch copy.

        Writes (revised) ends for every transfer active at the frontier into
        the end cache; the saved frontier state is untouched, so the next
        arrival's :meth:`_advance` re-derives exactly these values on its
        way forward.  Completions within one busy period are chronological,
        so the last projected finish is the period's max end — what
        ``busy_until`` folds in.
        """
        remaining = dict(self._remaining)
        weights = self._weights
        now = self._frontier
        max_end = 0.0
        while remaining:
            if len(remaining) == 1:
                (solo_seq,) = remaining
                finish = self._end_time(now, remaining[solo_seq])
                del remaining[solo_seq]
                self._ends[solo_seq] = finish
                max_end = finish
                now = finish
                continue
            total_weight = sum(weights[seq] for seq in remaining)
            ratios = {seq: left / weights[seq] for seq, left in remaining.items()}
            min_ratio = min(ratios.values())
            finish = self._end_time(now, min_ratio * total_weight)
            done = [seq for seq, ratio in ratios.items() if ratio == min_ratio]
            for seq in list(remaining):
                remaining[seq] -= min_ratio * weights[seq]
            for seq in done:
                del remaining[seq]
                self._ends[seq] = finish
            max_end = finish
            now = finish
        self._busy_until = max(self._done_max_end, max_end)

    def _replay_all(self) -> None:
        """Re-integrate the whole admitted history from scratch.

        Used on cancellation (and on every arrival in the
        ``incremental=False`` reference mode): transfers replay
        chronologically through the same :meth:`_advance`/admit steps an
        in-order arrival stream takes, followed by one final projection —
        so the rebuilt schedule is bit-identical to the incrementally
        maintained one (and to :func:`reference_fair_schedule`).
        """
        self._ends = {}
        self._remaining = {}
        self._weights = {}
        self._frontier = 0.0
        self._busy_until = 0.0
        self._done_max_end = 0.0
        self._order = []
        self._order_keys = []
        self._snaps = []
        self.full_resweeps += 1
        for transfer in sorted(self._transfers, key=lambda t: (t.arrival, t.seq)):
            self._advance(transfer.arrival)
            if self._incremental:
                self._admit(transfer)
            else:
                # Reference mode resweeps on every arrival; skip the
                # canonical-order/snapshot bookkeeping it never reads.
                self._remaining[transfer.seq] = transfer.demand
                self._weights[transfer.seq] = transfer.weight
        self._project()


def build_timeline(resource: SharedResource) -> BaseResourceTimeline:
    """Construct the timeline class matching the resource's ``policy``."""
    if resource.policy == "fair":
        return FairShareTimeline(resource)
    return ResourceTimeline(resource)


class ResourcePool:
    """Named registry of per-resource timelines held by the engine."""

    def __init__(self, resources: Optional[Iterable[SharedResource]] = None):
        """Build timelines for ``resources`` (policy-dispatched per resource)."""
        self._timelines: Dict[str, BaseResourceTimeline] = {}
        self._sanitizer: Optional[SimSanitizer] = None
        self._observer: Optional["SimObserver"] = None
        for resource in resources or ():
            self.add(resource)

    def attach_sanitizer(self, sanitizer: Optional[SimSanitizer]) -> None:
        """Attach a sanitizer to every current and future timeline.

        ``None`` detaches — the hook-free plain-run configuration.
        """
        self._sanitizer = sanitizer
        for timeline in self._timelines.values():
            timeline.sanitizer = sanitizer

    def attach_observer(self, observer: Optional["SimObserver"]) -> None:
        """Attach an observer to every current and future timeline.

        ``None`` detaches — the hook-free unobserved configuration.
        """
        self._observer = observer
        for timeline in self._timelines.values():
            timeline.observer = observer

    def add(self, resource: SharedResource) -> BaseResourceTimeline:
        """Register a resource under its (unique) name; returns its timeline."""
        if resource.name in self._timelines:
            raise ValueError(f"duplicate resource name {resource.name!r}")
        timeline = build_timeline(resource)
        timeline.sanitizer = self._sanitizer
        timeline.observer = self._observer
        self._timelines[resource.name] = timeline
        return timeline

    def names(self) -> List[str]:
        """Sorted names of every registered resource."""
        return sorted(self._timelines)

    def __contains__(self, name: object) -> bool:
        """Whether a resource of that name is registered."""
        return name in self._timelines

    def __len__(self) -> int:
        """Number of registered resources."""
        return len(self._timelines)

    def get(self, name: str) -> Optional[BaseResourceTimeline]:
        """The named timeline, or ``None`` when unknown."""
        return self._timelines.get(str(name))

    def require(self, name: str) -> BaseResourceTimeline:
        """Validate a resource name at call time (like job/GPU names)."""
        timeline = self._timelines.get(str(name))
        if timeline is None:
            raise KeyError(f"unknown resource {name!r}; known: {self.names()}")
        return timeline

    def cancel_job(self, job: str, after_time: float) -> int:
        """Cancel (and re-flow) the job's pending transfers on every timeline."""
        return sum(timeline.cancel(job, after_time) for timeline in self._timelines.values())

    def perf_counters(self) -> Dict[str, int]:
        """Aggregated host-side work counters across the pool's timelines.

        ``fair_incremental_reserves`` counts fair-share arrivals integrated
        incrementally from the frontier; ``fair_rewind_reserves`` counts
        out-of-order arrivals served by a snapshot rewind;
        ``fair_full_resweeps`` counts full from-scratch re-integrations
        (cancels, and every arrival when a timeline runs in the reference
        mode) — the incremental-vs-resweep savings readout.  Pure
        observability: the counters never influence scheduling.
        """
        incremental = rewinds = resweeps = 0
        for timeline in self._timelines.values():
            if isinstance(timeline, FairShareTimeline):
                incremental += timeline.incremental_reserves
                rewinds += timeline.rewind_reserves
                resweeps += timeline.full_resweeps
        return {"fair_incremental_reserves": incremental,
                "fair_rewind_reserves": rewinds,
                "fair_full_resweeps": resweeps}

    def summary(self) -> Dict[str, Dict[str, object]]:
        """Deterministic name-sorted plain-data summary of every timeline."""
        return {name: timeline.as_dict() for name, timeline in sorted(self._timelines.items())}

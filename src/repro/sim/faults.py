"""Seeded, deterministic fault model for the cluster scheduler.

The scheduler exposes raw fault *knobs* — single-GPU failures, correlated
domain failures (machine/rack/ToR), mid-run link degradation and spot
eviction with notices (:mod:`repro.sim.scheduler`).  This module turns them
into a declarative, reproducible *fault model*:

* :class:`FaultEvent` / :class:`FaultPlan` — plain-data descriptions of a
  run's fault stream, validated eagerly against the cluster topology with
  pointed errors (unknown GPU/machine/resource names, recovery before
  failure, spot eviction of an unmarked GPU) so a bad scenario fails at
  build time, never mid-run.
* :func:`parse_faults` — builds a plan from the ``"faults"`` scenario key:
  explicit event lists, spot-capacity and backoff policy, and/or a seeded
  stochastic stream.
* :func:`generate_fault_events` — the stochastic generator: one
  ``random.Random(seed)`` instance drives exponential inter-arrival times
  (``mttf_seconds``) and repair times (``mttr_seconds``) over ordered,
  topology-derived target lists, so the emitted stream is bit-identical
  across processes and ``PYTHONHASHSEED`` values.
* :func:`apply_fault_plan` — arms a :class:`ClusterScheduler` with the plan
  before ``run()``; every fault becomes ordinary heap events, keeping the
  whole run deterministic and sanitizer-clean.

Scenario schema (the ``"faults"`` top-level key, see ``docs/faults.md``)::

    "faults": {
        "events": [
            {"kind": "fail_rack", "at_time": 2.0, "target": 0, "recover_at": 6.0},
            {"kind": "degrade_link", "at_time": 1.0, "target": "core",
             "gbps": 20.0, "recover_at": 4.0},
            {"kind": "spot_evict", "at_time": 3.0, "target": "node1:gpu0",
             "recover_at": 8.0}
        ],
        "spot": {"gpus": ["node1:gpu0"], "notice_seconds": 0.5},
        "backoff": {"base_seconds": 0.25, "cap_seconds": 4.0},
        "seed": 7, "horizon_seconds": 30.0, "mttf_seconds": 5.0,
        "mttr_seconds": 10.0, "domains": ["gpu", "machine", "rack"],
        "link_gbps_factor": 0.5
    }
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .cluster import Cluster
from .scheduler import ClusterScheduler

__all__ = ["FaultEvent", "FaultPlan", "parse_faults", "generate_fault_events",
           "apply_fault_plan"]

#: Every fault-event kind the model understands, in dispatch order.
EVENT_KINDS = ("fail_gpu", "fail_machine", "fail_rack", "fail_tor",
               "degrade_link", "spot_evict")

#: Stochastic-generator domain names and the event kind each emits.
GENERATOR_DOMAINS = {"gpu": "fail_gpu", "machine": "fail_machine",
                     "rack": "fail_rack", "tor": "fail_tor",
                     "link": "degrade_link", "spot": "spot_evict"}

_FAULTS_KEYS = ("events", "spot", "backoff", "seed", "horizon_seconds",
                "mttf_seconds", "mttf_hours", "mttr_seconds", "domains",
                "link_gbps_factor")
_EVENT_KEYS = ("kind", "at_time", "target", "recover_at", "gbps")
_SPOT_KEYS = ("gpus", "notice_seconds")
_BACKOFF_KEYS = ("base_seconds", "cap_seconds")


@dataclass(frozen=True)
class FaultEvent:
    """One structured fault: what fails, when, and (optionally) when it heals.

    ``target`` is the GPU name (``fail_gpu``/``spot_evict``), machine name
    (``fail_machine``), ToR index as a string (``fail_rack``/``fail_tor``)
    or shared-resource name (``degrade_link``).  ``recover_at`` doubles as
    the spot rejoin time and the link restore time; ``gbps`` is the degraded
    capacity (``degrade_link`` only).
    """

    kind: str
    at_time: float
    target: str
    recover_at: Optional[float] = None
    gbps: Optional[float] = None

    def as_dict(self) -> Dict[str, object]:
        """Deterministic plain-data view (what ``repro sim faults`` prints)."""
        view: Dict[str, object] = {"kind": self.kind, "at_time": self.at_time,
                                   "target": self.target}
        if self.recover_at is not None:
            view["recover_at"] = self.recover_at
        if self.gbps is not None:
            view["gbps"] = self.gbps
        return view


@dataclass(frozen=True)
class FaultPlan:
    """A validated, ready-to-apply fault stream plus spot/backoff policy."""

    events: Tuple[FaultEvent, ...] = ()
    spot_gpus: Tuple[str, ...] = ()
    notice_seconds: float = 0.0
    backoff: Optional[Tuple[float, float]] = None

    def as_dict(self) -> Dict[str, object]:
        """Deterministic plain-data view of the resolved plan."""
        view: Dict[str, object] = {
            "events": [event.as_dict() for event in self.events],
        }
        if self.spot_gpus:
            view["spot"] = {"gpus": list(self.spot_gpus),
                            "notice_seconds": self.notice_seconds}
        if self.backoff is not None:
            view["backoff"] = {"base_seconds": self.backoff[0],
                               "cap_seconds": self.backoff[1]}
        return view


def _check_keys(mapping: Dict[str, object], allowed: Sequence[str],
                context: str) -> None:
    """Reject unknown keys with a pointed error naming the offender."""
    for key in mapping:
        if key not in allowed:
            raise ValueError(f"{context}: unknown key {key!r}; "
                             f"expected one of {sorted(allowed)}")


def _validate_event(event: FaultEvent, cluster: Cluster,
                    spot_gpus: Sequence[str], context: str) -> None:
    """Validate one event's kind, target and times against the topology."""
    if event.kind not in EVENT_KINDS:
        raise ValueError(f"{context}: unknown fault kind {event.kind!r}; "
                         f"expected one of {sorted(EVENT_KINDS)}")
    if event.at_time < 0:
        raise ValueError(f"{context}: at_time must be >= 0, got {event.at_time}")
    if event.recover_at is not None and event.recover_at <= event.at_time:
        raise ValueError(f"{context}: recover_at ({event.recover_at}) must come "
                         f"after at_time ({event.at_time})")
    gpu_names = {gpu.name for gpu in cluster.all_gpus()}
    if event.kind in ("fail_gpu", "spot_evict"):
        if event.target not in gpu_names:
            raise ValueError(f"{context}: unknown GPU {event.target!r}; "
                             f"known: {sorted(gpu_names)}")
        if event.kind == "spot_evict" and event.target not in spot_gpus:
            raise ValueError(f"{context}: spot_evict target {event.target!r} is not "
                             f"in faults.spot.gpus {sorted(spot_gpus)}; only "
                             f"preemptible GPUs can be spot-evicted")
    elif event.kind == "fail_machine":
        cluster.gpus_on_machine(event.target)  # KeyError with known names
    elif event.kind in ("fail_rack", "fail_tor"):
        try:
            tor_index = int(event.target)
        except (TypeError, ValueError):
            raise ValueError(f"{context}: {event.kind} target must be a ToR index, "
                             f"got {event.target!r}") from None
        cluster.machines_on_tor(tor_index)  # KeyError if out of range
        if event.kind == "fail_tor" and not cluster.has_per_tor_fabric:
            raise ValueError(f"{context}: fail_tor requires per_tor_fabric "
                             f"topology (the ToR uplink resource is the "
                             f"failure's whole effect)")
    elif event.kind == "degrade_link":
        if event.target not in cluster.resources:
            raise ValueError(f"{context}: unknown resource {event.target!r}; "
                             f"known: {sorted(cluster.resources)}")
        if event.gbps is None or event.gbps <= 0:
            raise ValueError(f"{context}: degrade_link needs a positive 'gbps', "
                             f"got {event.gbps!r}")
    if event.kind != "degrade_link" and event.gbps is not None:
        raise ValueError(f"{context}: 'gbps' only applies to degrade_link events")


def generate_fault_events(seed: int, horizon_seconds: float, cluster: Cluster,
                          mttf_seconds: float,
                          mttr_seconds: Optional[float] = None,
                          domains: Sequence[str] = ("gpu",),
                          link_gbps_factor: float = 0.5,
                          spot_gpus: Sequence[str] = ()) -> List[FaultEvent]:
    """Emit a bit-reproducible stochastic fault stream over the horizon.

    A single ``random.Random(seed)`` instance draws exponential
    inter-arrival times at rate ``1/mttf_seconds``; each arrival picks a
    failure domain uniformly from ``domains`` and a target uniformly from
    that domain's topology-derived ordered list (machine order for GPUs and
    machines, index order for racks, name-sorted order for resources), so
    the stream never depends on hash ordering.  With ``mttr_seconds`` set,
    every fault heals after an exponential repair time.  ``degrade_link``
    events drop a resource to ``link_gbps_factor`` of its nominal
    bandwidth; ``spot`` domains evict only GPUs listed in ``spot_gpus``.
    """
    if horizon_seconds <= 0:
        raise ValueError("horizon_seconds must be positive")
    if mttf_seconds <= 0:
        raise ValueError("mttf_seconds must be positive")
    if mttr_seconds is not None and mttr_seconds <= 0:
        raise ValueError("mttr_seconds must be positive (or None for no repair)")
    if not 0 < link_gbps_factor < 1:
        raise ValueError("link_gbps_factor must be in (0, 1)")
    if not domains:
        raise ValueError("domains must name at least one failure domain")
    for domain in domains:
        if domain not in GENERATOR_DOMAINS:
            raise ValueError(f"unknown failure domain {domain!r}; expected one "
                             f"of {sorted(GENERATOR_DOMAINS)}")
    if "spot" in domains and not spot_gpus:
        raise ValueError("domain 'spot' needs faults.spot.gpus to pick victims from")
    if "tor" in domains and not cluster.has_per_tor_fabric:
        raise ValueError("domain 'tor' requires per_tor_fabric topology")
    # Ordered target pools, derived once from the topology.
    gpu_pool = [gpu.name for gpu in cluster.all_gpus()]
    machine_pool = [machine.name for machine in cluster.machines]
    rack_pool = [str(index) for index in range(cluster.spec.num_tor_switches)]
    link_pool = sorted(name for name, resource in cluster.resources.items()
                       if resource.kind == "link")
    spot_pool = list(spot_gpus)
    if "link" in domains and not link_pool:
        raise ValueError("domain 'link' needs at least one link resource")
    rng = random.Random(int(seed))
    domain_list = list(domains)
    events: List[FaultEvent] = []
    elapsed = 0.0
    while True:
        elapsed += rng.expovariate(1.0 / mttf_seconds)
        if elapsed >= horizon_seconds:
            return events
        domain = domain_list[rng.randrange(len(domain_list))]
        kind = GENERATOR_DOMAINS[domain]
        recover: Optional[float] = None
        if mttr_seconds is not None:
            recover = elapsed + rng.expovariate(1.0 / mttr_seconds)
        gbps: Optional[float] = None
        if domain == "gpu":
            target = gpu_pool[rng.randrange(len(gpu_pool))]
        elif domain == "machine":
            target = machine_pool[rng.randrange(len(machine_pool))]
        elif domain in ("rack", "tor"):
            target = rack_pool[rng.randrange(len(rack_pool))]
        elif domain == "link":
            target = link_pool[rng.randrange(len(link_pool))]
            gbps = cluster.resources[target].bandwidth_gbps * link_gbps_factor
        else:  # spot
            target = spot_pool[rng.randrange(len(spot_pool))]
        events.append(FaultEvent(kind=kind, at_time=elapsed, target=target,
                                 recover_at=recover, gbps=gbps))


def parse_faults(spec: Dict[str, object], cluster: Cluster) -> FaultPlan:
    """Build a validated :class:`FaultPlan` from the ``"faults"`` scenario key.

    Explicit ``events`` and a seeded stochastic stream may coexist; the
    merged stream is sorted by ``(at_time, kind, target)`` so application
    order never depends on JSON order.  Every reference is checked against
    the cluster topology here, at build time, with a pointed error.
    """
    if not isinstance(spec, dict):
        raise ValueError(f"faults: expected an object, got {type(spec).__name__}")
    _check_keys(spec, _FAULTS_KEYS, "faults")
    spot_gpus: Tuple[str, ...] = ()
    notice_seconds = 0.0
    spot_spec = spec.get("spot")
    if spot_spec is not None:
        if not isinstance(spot_spec, dict):
            raise ValueError("faults.spot: expected an object with 'gpus'")
        _check_keys(spot_spec, _SPOT_KEYS, "faults.spot")
        gpu_names = {gpu.name for gpu in cluster.all_gpus()}
        listed = spot_spec.get("gpus", [])
        if not isinstance(listed, (list, tuple)) or not listed:
            raise ValueError("faults.spot.gpus must be a non-empty list of GPU names")
        for name in listed:
            if name not in gpu_names:
                raise ValueError(f"faults.spot.gpus: unknown GPU {name!r}; "
                                 f"known: {sorted(gpu_names)}")
        spot_gpus = tuple(str(name) for name in listed)
        notice_seconds = float(spot_spec.get("notice_seconds", 0.0))
        if notice_seconds < 0:
            raise ValueError("faults.spot.notice_seconds must be non-negative")
    backoff: Optional[Tuple[float, float]] = None
    backoff_spec = spec.get("backoff")
    if backoff_spec is not None:
        if not isinstance(backoff_spec, dict):
            raise ValueError("faults.backoff: expected an object with "
                             "'base_seconds' and 'cap_seconds'")
        _check_keys(backoff_spec, _BACKOFF_KEYS, "faults.backoff")
        try:
            base = float(backoff_spec["base_seconds"])
            cap = float(backoff_spec["cap_seconds"])
        except KeyError as missing:
            raise ValueError(f"faults.backoff: missing key {missing}") from None
        if base <= 0 or cap < base:
            raise ValueError("faults.backoff needs base_seconds > 0 and "
                             "cap_seconds >= base_seconds")
        backoff = (base, cap)
    events: List[FaultEvent] = []
    for index, entry in enumerate(spec.get("events", []) or []):
        context = f"faults.events[{index}]"
        if not isinstance(entry, dict):
            raise ValueError(f"{context}: expected an object, got "
                             f"{type(entry).__name__}")
        _check_keys(entry, _EVENT_KEYS, context)
        if "kind" not in entry or "at_time" not in entry or "target" not in entry:
            raise ValueError(f"{context}: 'kind', 'at_time' and 'target' are required")
        event = FaultEvent(
            kind=str(entry["kind"]), at_time=float(entry["at_time"]),
            target=str(entry["target"]),
            recover_at=(float(entry["recover_at"])
                        if entry.get("recover_at") is not None else None),
            gbps=float(entry["gbps"]) if entry.get("gbps") is not None else None)
        _validate_event(event, cluster, spot_gpus, context)
        events.append(event)
    stochastic_keys = [key for key in ("seed", "horizon_seconds", "mttf_seconds",
                                       "mttf_hours") if key in spec]
    if stochastic_keys:
        if "seed" not in spec or "horizon_seconds" not in spec:
            raise ValueError("faults: a stochastic stream needs both 'seed' and "
                             "'horizon_seconds'")
        if ("mttf_seconds" in spec) == ("mttf_hours" in spec):
            raise ValueError("faults: set exactly one of 'mttf_seconds' or "
                             "'mttf_hours'")
        mttf = (float(spec["mttf_seconds"]) if "mttf_seconds" in spec
                else float(spec["mttf_hours"]) * 3600.0)
        mttr = (float(spec["mttr_seconds"])
                if spec.get("mttr_seconds") is not None else None)
        domains = spec.get("domains", ["gpu"])
        if not isinstance(domains, (list, tuple)):
            raise ValueError("faults.domains must be a list of domain names")
        generated = generate_fault_events(
            seed=int(spec["seed"]), horizon_seconds=float(spec["horizon_seconds"]),
            cluster=cluster, mttf_seconds=mttf, mttr_seconds=mttr,
            domains=tuple(str(domain) for domain in domains),
            link_gbps_factor=float(spec.get("link_gbps_factor", 0.5)),
            spot_gpus=spot_gpus)
        for index, event in enumerate(generated):
            _validate_event(event, cluster, spot_gpus, f"faults.generated[{index}]")
        events.extend(generated)
    elif any(key in spec for key in ("mttr_seconds", "domains", "link_gbps_factor")):
        raise ValueError("faults: 'mttr_seconds'/'domains'/'link_gbps_factor' "
                         "only apply to a stochastic stream ('seed' + "
                         "'horizon_seconds' + mttf)")
    events.sort(key=lambda event: (event.at_time, event.kind, event.target))
    return FaultPlan(events=tuple(events), spot_gpus=spot_gpus,
                     notice_seconds=notice_seconds, backoff=backoff)


def apply_fault_plan(scheduler: ClusterScheduler, plan: FaultPlan) -> None:
    """Arm a scheduler with the plan's policy and events (before ``run()``).

    Spot GPUs are marked first so eviction events see their notice windows;
    every event then lands on the matching scheduler knob and becomes
    ordinary heap events — the run stays deterministic and sanitizer-clean.
    """
    if plan.spot_gpus:
        scheduler.mark_preemptible(plan.spot_gpus, plan.notice_seconds)
    if plan.backoff is not None:
        scheduler.set_restart_backoff(*plan.backoff)
    for event in plan.events:
        if event.kind == "fail_gpu":
            scheduler.inject_failure(event.target, event.at_time,
                                     recover_at=event.recover_at)
        elif event.kind == "fail_machine":
            scheduler.fail_machine(event.target, event.at_time,
                                   recover_at=event.recover_at)
        elif event.kind == "fail_rack":
            scheduler.fail_rack(int(event.target), event.at_time,
                                recover_at=event.recover_at)
        elif event.kind == "fail_tor":
            scheduler.fail_tor(int(event.target), event.at_time,
                               recover_at=event.recover_at)
        elif event.kind == "degrade_link":
            scheduler.degrade_link(event.target, float(event.gbps or 0.0),
                                   event.at_time, restore_at=event.recover_at)
        elif event.kind == "spot_evict":
            scheduler.evict_spot(event.target, event.at_time,
                                 rejoin_at=event.recover_at)
        else:  # pragma: no cover - parse_faults rejects unknown kinds
            raise ValueError(f"unknown fault kind {event.kind!r}")

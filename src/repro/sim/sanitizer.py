"""SimSan: a TSan-style runtime invariant sanitizer for the simulator core.

SimLint (``tools/simlint``) statically forbids the *code patterns* that break
determinism; SimSan checks the *runtime invariants* the engine's headline
guarantees rest on, on every event, while the simulation runs:

* **causality** — no event is dequeued before the domain's current clock
  (one clock per domain: the engine's relative event loop, the scheduler's
  absolute heap);
* **non-negative durations** — no compute segment or reserved window runs
  backwards in time;
* **monotone ``busy_until``** — a reservation never moves a timeline's busy
  horizon backwards (cancellation legitimately may: it resynchronizes the
  watermark through :meth:`SimSanitizer.note_cancelled`);
* **byte conservation** — every byte quoted at ``reserve()`` time is present
  in the timeline's audited records, through cancel/re-flow included;
* **fair-share rate conservation** — a processor-sharing schedule never
  completes more capacity-seconds inside a window than the window holds
  (i.e. the sum of active rates never exceeds capacity);
* **fast-forward/live divergence** — a deterministic cadence of memoized
  replays is re-simulated live on shadow timelines and compared field for
  field against the cached entry.

Violations raise a :class:`SanitizerError` subclass carrying the recent
event-provenance trace, so the report names the events that led up to the
corruption rather than just the corrupted value.

Enable it with ``EventDrivenEngine(sanitize=True)`` or ``REPRO_SIMSAN=1``
(the env var is how CI runs the whole tier-1 suite sanitized).  Sanitized
runs are bit-identical to plain runs — every check is read-only and the
spot checks run on deep-copied shadow state with the perf counters saved
and restored.  See ``docs/correctness.md`` for the invariant catalog.
"""

from __future__ import annotations

import os
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from .simtime import TIME_EPS

__all__ = [
    "SanitizerError",
    "CausalityViolation",
    "NegativeDurationViolation",
    "MonotonicityViolation",
    "ByteConservationViolation",
    "RateConservationViolation",
    "FastForwardDivergence",
    "SimSanitizer",
    "sanitize_from_env",
]

#: Environment variable that switches the sanitizer on for every engine.
ENV_FLAG = "REPRO_SIMSAN"


class SanitizerError(RuntimeError):
    """An engine invariant was violated at runtime.

    ``provenance`` is the trailing window of sanitizer-observed events
    (most recent last) at the moment of the violation; it is rendered into
    the message so a bare traceback already shows the lead-up.
    """

    def __init__(self, message: str, provenance: Tuple[Dict[str, object], ...] = ()):
        """Build the error; ``provenance`` is the recent-event window."""
        self.provenance = provenance
        if provenance:
            tail = "\n".join(f"    {event}" for event in provenance[-8:])
            message = f"{message}\n  recent events (most recent last):\n{tail}"
        super().__init__(message)


class CausalityViolation(SanitizerError):
    """An event was dequeued before the domain's current clock."""


class NegativeDurationViolation(SanitizerError):
    """A segment or occupancy window has negative duration."""


class MonotonicityViolation(SanitizerError):
    """A reservation moved a timeline's ``busy_until`` backwards."""


class ByteConservationViolation(SanitizerError):
    """A timeline's audited bytes disagree with the quoted bytes."""


class RateConservationViolation(SanitizerError):
    """A fair-share schedule exceeds the resource's capacity in a window."""


class FastForwardDivergence(SanitizerError):
    """A memoized replay disagrees with a live re-simulation."""


def sanitize_from_env() -> bool:
    """Whether ``REPRO_SIMSAN`` asks for sanitized engines."""
    return os.environ.get(ENV_FLAG, "").strip().lower() not in ("", "0", "false", "no")


class SimSanitizer:
    """Runtime invariant checker the engine, scheduler and timelines hook into.

    One sanitizer instance is shared by an engine, its resource pool and any
    scheduler driving it.  All checks are read-only with respect to simulator
    state; the sanitizer's own state is per-domain clocks, a per-resource
    byte ledger and ``busy_until`` watermark, and a bounded provenance ring.

    Parameters
    ----------
    spot_check_every:
        Cadence of fast-forward divergence spot checks: every Nth memoized
        replay is re-simulated live on shadow timelines and compared.  The
        default keeps sanitized Table 1 runs within the 2x overhead budget;
        1 re-checks every replay (mutation tests), 0 disables spot checks.
    max_provenance:
        Length of the recent-event window carried by raised errors.
    """

    def __init__(self, spot_check_every: int = 32, max_provenance: int = 64):
        """Start with empty clocks, ledgers and provenance."""
        if spot_check_every < 0:
            raise ValueError("spot_check_every must be >= 0 (0 disables)")
        self.spot_check_every = int(spot_check_every)
        self._clocks: Dict[str, float] = {}
        #: resource name -> net bytes quoted through reserve()/cancel().
        self._ledger: Dict[str, int] = {}
        #: resource name -> last observed busy_until (reserve-to-reserve).
        self._watermark: Dict[str, float] = {}
        self._fast_forwards = 0
        self._events: Deque[Dict[str, object]] = deque(maxlen=int(max_provenance))
        #: Running totals, surfaced for tests/debugging.
        self.checks_performed = 0
        self.spot_checks_performed = 0

    # ------------------------------------------------------------------ #
    # Provenance
    # ------------------------------------------------------------------ #
    def note(self, kind: str, **info: object) -> None:
        """Append one observed event to the provenance ring."""
        entry: Dict[str, object] = {"kind": kind}
        entry.update(info)
        self._events.append(entry)

    def provenance(self) -> Tuple[Dict[str, object], ...]:
        """Snapshot of the recent-event window (most recent last)."""
        return tuple(self._events)

    def _raise(self, error_class: type, message: str) -> None:
        raise error_class(message, self.provenance())

    # ------------------------------------------------------------------ #
    # Causality clocks
    # ------------------------------------------------------------------ #
    def reset_clock(self, domain: str, time: float = 0.0) -> None:
        """(Re)anchor a domain's clock — e.g. each engine iteration at 0."""
        self._clocks[domain] = float(time)

    def check_event(self, domain: str, time: float, kind: str, **info: object) -> None:
        """Assert an event dequeued in ``domain`` does not precede its clock."""
        self.checks_performed += 1
        clock = self._clocks.get(domain)
        self.note("event", domain=domain, time=time, event=kind, **info)
        if clock is not None and time < clock - TIME_EPS:
            self._raise(CausalityViolation,
                        f"{domain}: event {kind!r} dequeued at t={time!r} before "
                        f"the current clock t={clock!r}")
        self._clocks[domain] = max(clock if clock is not None else time, time)

    # ------------------------------------------------------------------ #
    # Durations
    # ------------------------------------------------------------------ #
    def check_duration(self, seconds: float, context: str) -> None:
        """Assert a scheduled duration is non-negative."""
        self.checks_performed += 1
        if seconds < -TIME_EPS:
            self._raise(NegativeDurationViolation,
                        f"negative duration {seconds!r} for {context}")

    # ------------------------------------------------------------------ #
    # Timeline hooks (called by resources.py on reserve/cancel)
    # ------------------------------------------------------------------ #
    def note_reserve(self, timeline: object, earliest_start: float, start: float,
                     end: float, seconds: float, num_bytes: int,
                     job: Optional[str], kind: str) -> None:
        """Validate one committed reservation and feed the byte ledger."""
        name = timeline.resource.name
        self.note("reserve", resource=name, start=start, end=end,
                  num_bytes=num_bytes, job=job, transfer=kind)
        self.checks_performed += 1
        if seconds < -TIME_EPS or end < start - TIME_EPS:
            self._raise(NegativeDurationViolation,
                        f"resource {name!r}: reserved window [{start!r}, {end!r}] "
                        f"({seconds!r}s) for job {job!r} has negative duration")
        if start < earliest_start - TIME_EPS:
            self._raise(CausalityViolation,
                        f"resource {name!r}: window for job {job!r} starts at "
                        f"{start!r}, before its own request time {earliest_start!r}")
        busy = timeline.busy_until
        watermark = self._watermark.get(name, 0.0)
        if busy < watermark - TIME_EPS:
            self._raise(MonotonicityViolation,
                        f"resource {name!r}: busy_until moved backwards on reserve "
                        f"({watermark!r} -> {busy!r})")
        self._watermark[name] = busy
        self._ledger[name] = self._ledger.get(name, 0) + int(num_bytes)

    def note_cancel(self, timeline: object, job: str, after_time: float) -> None:
        """Debit the ledger for the windows a cancellation is about to drop."""
        name = timeline.resource.name
        removed = sum(r.num_bytes for r in timeline.records
                      if r.job == job and r.start >= after_time)
        self.note("cancel", resource=name, job=job, after_time=after_time,
                  removed_bytes=removed)
        self._ledger[name] = self._ledger.get(name, 0) - removed

    def note_cancelled(self, timeline: object) -> None:
        """Resync after a cancel: re-flow may legally shrink ``busy_until``."""
        name = timeline.resource.name
        self._watermark[name] = timeline.busy_until
        self.verify_timeline(timeline)

    def note_capacity(self, timeline: object, at_time: float, old_gbps: float,
                      new_gbps: float) -> None:
        """Resync after a ``set_capacity``: the open busy period re-quoted.

        A capacity *increase* may legally shrink ``busy_until`` (remaining
        transfers finish sooner), so the watermark resynchronizes like after
        a cancel; payload bytes are untouched, so the byte ledger must still
        balance — :meth:`verify_timeline` asserts it immediately.
        """
        name = timeline.resource.name
        self.note("set_capacity", resource=name, at_time=at_time,
                  old_gbps=old_gbps, new_gbps=new_gbps)
        self._watermark[name] = timeline.busy_until
        self.verify_timeline(timeline)

    # ------------------------------------------------------------------ #
    # Timeline audits
    # ------------------------------------------------------------------ #
    def verify_timeline(self, timeline: object) -> None:
        """Audit one timeline: window sanity, byte and rate conservation."""
        name = timeline.resource.name
        self.checks_performed += 1
        max_end = 0.0
        for record in timeline.records:
            if record.end < record.start - TIME_EPS:
                self._raise(NegativeDurationViolation,
                            f"resource {name!r}: committed window "
                            f"[{record.start!r}, {record.end!r}] for job "
                            f"{record.job!r} has negative duration")
            max_end = max(max_end, record.end)
        if timeline.busy_until < max_end - TIME_EPS:
            self._raise(MonotonicityViolation,
                        f"resource {name!r}: busy_until={timeline.busy_until!r} "
                        f"is behind the latest committed window end {max_end!r}")
        audited = timeline.total_bytes()
        quoted = self._ledger.get(name)
        if quoted is not None and audited != quoted:
            self._raise(ByteConservationViolation,
                        f"resource {name!r}: audited bytes {audited} != quoted "
                        f"bytes {quoted} (windows dropped or duplicated)")
        schedule = getattr(timeline, "transfer_schedule", None)
        if schedule is not None:
            profile = getattr(timeline, "capacity_profile", None)
            self._verify_fair_rates(name, schedule(),
                                    profile() if profile is not None else ())

    @staticmethod
    def _profile_capacity(profile: Tuple[Tuple[float, float], ...],
                          start: float, end: float) -> float:
        """Nominal capacity-seconds a resource serves over ``[start, end]``.

        ``profile`` is the timeline's ``(at_time, factor-of-nominal)`` change
        log; the factor is 1.0 before the first change point.  The integral
        of the piecewise-constant factor bounds how much fair-share demand
        can legally complete inside the window.
        """
        if end <= start:
            return 0.0
        capacity = 0.0
        time = start
        factor = 1.0
        for at_time, new_factor in profile:
            if at_time <= start:
                factor = new_factor
                continue
            if at_time >= end:
                break
            capacity += (at_time - time) * factor
            time = at_time
            factor = new_factor
        capacity += (end - time) * factor
        return capacity

    def _verify_fair_rates(self, name: str,
                           schedule: Tuple[Tuple[float, float, float, float], ...],
                           profile: Tuple[Tuple[float, float], ...] = ()) -> None:
        """Feasibility check of a processor-sharing schedule.

        Capacity-seconds are conserved iff for every window ``[S, T]`` the
        total demand of transfers that both arrive at/after ``S`` and
        complete by ``T`` fits in the capacity the window holds — ``T - S``
        at nominal rate, or the integral of the capacity ``profile`` when
        mid-run ``set_capacity`` changes degraded/restored the resource —
        otherwise the active rates summed past the line rate somewhere
        inside the window.  Candidate ``S`` are arrival times (down-sampled
        deterministically on huge schedules), candidate ``T`` every
        completion.
        """
        if not schedule:
            return
        by_end = sorted(schedule, key=lambda t: (t[1], t[0]))
        arrivals = sorted({t[0] for t in schedule})
        if len(arrivals) > 128:
            stride = len(arrivals) // 128 + 1
            arrivals = arrivals[::stride]
        for start_bound in arrivals:
            demand_inside = 0.0
            for arrival, end, demand, _weight in by_end:
                if arrival < start_bound:
                    continue
                demand_inside += demand
                if profile:
                    window = self._profile_capacity(profile, start_bound, end)
                else:
                    window = end - start_bound
                if demand_inside > window * (1.0 + 1e-9) + TIME_EPS:
                    self._raise(RateConservationViolation,
                                f"resource {name!r}: {demand_inside!r} capacity-"
                                f"seconds completed inside [{start_bound!r}, "
                                f"{end!r}] ({window!r} capacity-seconds) — "
                                f"active rates exceed capacity")

    def verify_pool(self, pool: object) -> None:
        """Audit every timeline in a resource pool (end-of-run check)."""
        for name in pool.names():
            self.verify_timeline(pool.get(name))

    # ------------------------------------------------------------------ #
    # Fast-forward divergence
    # ------------------------------------------------------------------ #
    def should_spot_check(self) -> bool:
        """Deterministic cadence: True on every Nth memoized replay."""
        if self.spot_check_every <= 0:
            return False
        self._fast_forwards += 1
        return self._fast_forwards % self.spot_check_every == 0

    def check_fast_forward(self, cached: object, live: object, **info: object) -> None:
        """Compare a cached fast-forward entry against a live re-simulation."""
        self.spot_checks_performed += 1
        self.note("spot_check", **info)
        if cached == live:
            return
        differing = []
        for field_name in cached.__dataclass_fields__:
            cached_value = getattr(cached, field_name)
            live_value = getattr(live, field_name)
            if cached_value != live_value:
                differing.append(f"{field_name}: cached={cached_value!r} "
                                 f"live={live_value!r}")
        details = "; ".join(differing) or "entries differ"
        self._raise(FastForwardDivergence,
                    f"memoized replay diverges from live re-simulation "
                    f"({details})")

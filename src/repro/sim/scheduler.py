"""Multi-job cluster scheduling on top of the event-driven engine.

The paper evaluates Egeria one job at a time, but its cluster-level claims
(reduced gradient traffic, tolerance to communication bottlenecks) only
matter when several training jobs share machines and links.  This module adds
that layer: a :class:`ClusterScheduler` places :class:`SimJob` s onto the
:class:`~repro.sim.cluster.Cluster`'s GPUs and advances them iteration by
iteration through the :class:`~repro.sim.engine.EventDrivenEngine`, so
scenarios the closed-form model cannot express become one-liners:

* **FIFO / round-robin placement** — jobs queue until enough GPUs are free;
  ``placement="fifo"`` packs a job onto the first free GPUs in machine order
  (locality), ``"round_robin"`` spreads its workers across machines (load
  balancing, at the price of crossing the NICs).
* **Stragglers and heterogeneous GPUs** — :meth:`set_gpu_speed` (optionally
  at a future time) slows or speeds individual GPUs; the engine then gates
  every all-reduce on the slowest worker.
* **Elastic jobs** — :meth:`resize_job` adds or removes workers at a given
  time; subsequent iterations use the new all-reduce group and batch volume.
* **Network contention** — while more than one multi-machine job is running,
  every job's communication is scaled by the number of such jobs (the shared
  leaf–spine fabric is modelled as fair-shared).

Everything is deterministic for a fixed seed: the event heap breaks ties by
insertion order and the only randomness (optional placement jitter) comes
from a seeded generator, so two runs with the same inputs produce identical
:class:`SchedulerResult` s — the property the multi-job benchmark asserts.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from .cluster import Cluster, GPUDevice
from .cost_model import CostModel
from .engine import EventDrivenEngine
from .timeline import SchedulePolicy

__all__ = ["SimJob", "JobRecord", "SchedulerResult", "ClusterScheduler"]


@dataclass
class SimJob:
    """One training job submitted to the cluster.

    ``frozen_prefix`` may be an int (constant) or a callable mapping the
    iteration index to a prefix length, so an Egeria job's progressive
    freezing schedule can be replayed inside the simulation.
    """

    name: str
    cost_model: CostModel
    num_workers: int = 1
    iterations: int = 1
    policy: str = SchedulePolicy.VANILLA
    frozen_prefix: Union[int, Callable[[int], int]] = 0
    cached_fp: bool = False
    include_reference_overhead: bool = False
    arrival_time: float = 0.0

    def prefix_at(self, iteration: int) -> int:
        if callable(self.frozen_prefix):
            return int(self.frozen_prefix(iteration))
        return int(self.frozen_prefix)


@dataclass
class JobRecord:
    """Lifecycle and per-iteration timing of one job."""

    name: str
    arrival_time: float
    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    iterations_done: int = 0
    worker_names: List[str] = field(default_factory=list)
    iteration_seconds: List[float] = field(default_factory=list)
    samples_processed: float = 0.0

    @property
    def queueing_delay(self) -> Optional[float]:
        return None if self.start_time is None else self.start_time - self.arrival_time

    @property
    def completion_seconds(self) -> Optional[float]:
        if self.finish_time is None:
            return None
        return self.finish_time - self.arrival_time

    def throughput(self) -> float:
        """Mean samples/second over the job's placed lifetime."""
        if self.start_time is None or self.finish_time is None or self.finish_time <= self.start_time:
            return 0.0
        return self.samples_processed / (self.finish_time - self.start_time)

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "arrival_time": self.arrival_time,
            "start_time": self.start_time,
            "finish_time": self.finish_time,
            "iterations_done": self.iterations_done,
            "worker_names": list(self.worker_names),
            "queueing_delay": self.queueing_delay,
            "samples_processed": self.samples_processed,
            "throughput": self.throughput(),
            "mean_iteration_seconds": (sum(self.iteration_seconds) / len(self.iteration_seconds)
                                       if self.iteration_seconds else 0.0),
        }


@dataclass
class SchedulerResult:
    """Outcome of a :meth:`ClusterScheduler.run`."""

    makespan: float
    jobs: Dict[str, JobRecord]
    gpu_busy_seconds: Dict[str, float]
    trace: List[Dict[str, object]]

    def utilization(self) -> Dict[str, float]:
        if self.makespan <= 0:
            return {name: 0.0 for name in self.gpu_busy_seconds}
        return {name: busy / self.makespan for name, busy in self.gpu_busy_seconds.items()}

    def as_dict(self) -> Dict[str, object]:
        """Deterministic plain-data view (what the benchmarks compare across runs)."""
        return {
            "makespan": self.makespan,
            "jobs": {name: record.as_dict() for name, record in sorted(self.jobs.items())},
            "utilization": dict(sorted(self.utilization().items())),
        }


class ClusterScheduler:
    """Places jobs on a cluster and advances them through the event engine.

    Parameters
    ----------
    cluster:
        The shared cluster whose GPUs and links the jobs compete for.
    engine:
        Event-driven engine; one is built over ``cluster`` when omitted.
    placement:
        ``"fifo"`` packs workers onto the first free GPUs in machine order;
        ``"round_robin"`` takes one free GPU per machine, cycling.  Job
        admission is strictly FIFO in both cases.
    seed:
        Seeds the (currently jitter-free) generator; kept so future stochastic
        knobs stay reproducible.
    """

    PLACEMENTS = ("fifo", "round_robin")

    def __init__(self, cluster: Cluster, engine: Optional[EventDrivenEngine] = None,
                 placement: str = "fifo", seed: int = 0):
        if placement not in self.PLACEMENTS:
            raise ValueError(f"unknown placement {placement!r}; expected one of {self.PLACEMENTS}")
        self.cluster = cluster
        self.engine = engine or EventDrivenEngine(cluster)
        self.placement = placement
        self.seed = seed

        self._all_gpus: List[GPUDevice] = cluster.all_gpus()
        self._free: Dict[str, GPUDevice] = {gpu.name: gpu for gpu in self._all_gpus}
        self._jobs: Dict[str, SimJob] = {}
        self._allocations: Dict[str, List[GPUDevice]] = {}
        self._pending: List[str] = []
        self._heap: List[Tuple[float, int, str, Tuple]] = []
        self._seq = 0
        #: Per-job schedule token; an iteration_done event is only honoured
        #: when its token matches, which drops in-flight iterations that a
        #: resize invalidated and restarted.
        self._iter_token: Dict[str, int] = {}
        self.records: Dict[str, JobRecord] = {}
        self.gpu_busy_seconds: Dict[str, float] = {gpu.name: 0.0 for gpu in self._all_gpus}
        self.trace: List[Dict[str, object]] = []

    # ------------------------------------------------------------------ #
    # Submission and scenario knobs
    # ------------------------------------------------------------------ #
    def _push(self, time: float, kind: str, payload: Tuple = ()) -> None:
        heapq.heappush(self._heap, (float(time), self._seq, kind, payload))
        self._seq += 1

    def submit(self, job: SimJob) -> None:
        if job.name in self._jobs:
            raise ValueError(f"duplicate job name {job.name!r}")
        if job.num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        if job.num_workers > len(self._all_gpus):
            raise ValueError(f"job {job.name!r} wants {job.num_workers} workers but the cluster "
                             f"has only {len(self._all_gpus)} GPUs")
        self._jobs[job.name] = job
        self.records[job.name] = JobRecord(name=job.name, arrival_time=job.arrival_time)
        self._push(job.arrival_time, "arrival", (job.name,))

    def set_gpu_speed(self, gpu_name: str, factor: float, at_time: float = 0.0) -> None:
        """Straggler / heterogeneous-GPU knob, applied at ``at_time``."""
        if factor <= 0:
            raise ValueError("speed factor must be positive")
        self._push(at_time, "set_speed", (str(gpu_name), float(factor)))

    def resize_job(self, job_name: str, delta_workers: int, at_time: float) -> None:
        """Elastic worker join (+) / leave (-) at ``at_time``."""
        if delta_workers == 0:
            raise ValueError("delta_workers must be non-zero")
        self._push(at_time, "resize", (str(job_name), int(delta_workers)))

    # ------------------------------------------------------------------ #
    # Placement
    # ------------------------------------------------------------------ #
    def _pick_gpus(self, count: int) -> Optional[List[GPUDevice]]:
        """Choose ``count`` free GPUs under the configured placement, or None."""
        if count > len(self._free):
            return None
        if self.placement == "fifo":
            chosen = [gpu for gpu in self._all_gpus if gpu.name in self._free][:count]
            return chosen if len(chosen) == count else None
        # round_robin: one free GPU per machine, cycling over machines.
        by_machine: Dict[str, List[GPUDevice]] = {}
        for gpu in self._all_gpus:
            if gpu.name in self._free:
                by_machine.setdefault(gpu.machine, []).append(gpu)
        chosen: List[GPUDevice] = []
        machine_order = [m.name for m in self.cluster.machines if m.name in by_machine]
        while len(chosen) < count and machine_order:
            for machine in list(machine_order):
                pool = by_machine[machine]
                chosen.append(pool.pop(0))
                if not pool:
                    machine_order.remove(machine)
                if len(chosen) == count:
                    break
        return chosen if len(chosen) == count else None

    def _try_place(self, now: float) -> None:
        """Strict-FIFO admission: place queued jobs head-first while GPUs last."""
        while self._pending:
            job = self._jobs[self._pending[0]]
            gpus = self._pick_gpus(job.num_workers)
            if gpus is None:
                return
            self._pending.pop(0)
            for gpu in gpus:
                del self._free[gpu.name]
            self._allocations[job.name] = gpus
            record = self.records[job.name]
            record.start_time = now
            record.worker_names = [gpu.name for gpu in gpus]
            self._trace(now, "job_start", job=job.name, workers=record.worker_names)
            self._schedule_iteration(job, now)

    def _release(self, job_name: str, gpus: Sequence[GPUDevice], now: float) -> None:
        for gpu in gpus:
            self._free[gpu.name] = gpu
        self._trace(now, "gpus_released", job=job_name, workers=[g.name for g in gpus])

    # ------------------------------------------------------------------ #
    # Iteration advancement
    # ------------------------------------------------------------------ #
    def _multi_machine_jobs_running(self) -> int:
        count = 0
        for name, gpus in self._allocations.items():
            if len({gpu.machine for gpu in gpus}) > 1:
                count += 1
        return count

    def _schedule_iteration(self, job: SimJob, now: float) -> None:
        record = self.records[job.name]
        workers = self._allocations[job.name]
        # Fair-share the fabric between concurrent multi-machine jobs.  A job
        # confined to one machine never touches the leaf-spine links, so its
        # (intra-machine) communication is not scaled.
        spans_machines = len({gpu.machine for gpu in workers}) > 1
        contenders = max(self._multi_machine_jobs_running(), 1) if spans_machines else 1
        self.engine.comm_scale = float(contenders)
        try:
            result = self.engine.simulate_iteration(
                job.cost_model, workers=workers, frozen_prefix=job.prefix_at(record.iterations_done),
                cached_fp=job.cached_fp, policy=job.policy,
                include_reference_overhead=job.include_reference_overhead, start_time=now)
        finally:
            self.engine.comm_scale = 1.0
        duration = result.total
        token = self._iter_token.get(job.name, 0) + 1
        self._iter_token[job.name] = token
        self._push(now + duration, "iteration_done", (job.name, token, duration))

    # ------------------------------------------------------------------ #
    # Event loop
    # ------------------------------------------------------------------ #
    def _trace(self, time: float, kind: str, **payload: object) -> None:
        entry: Dict[str, object] = {"time": time, "kind": kind}
        entry.update(payload)
        self.trace.append(entry)

    def run(self) -> SchedulerResult:
        """Drain all events; returns per-job records, utilization and trace."""
        makespan = 0.0
        while self._heap:
            now, _seq, kind, payload = heapq.heappop(self._heap)
            if kind in ("arrival", "iteration_done"):
                # Knob events (set_speed/resize) may be timestamped past the
                # last completed work; they do not extend the makespan.
                makespan = max(makespan, now)
            if kind == "arrival":
                (job_name,) = payload
                self._pending.append(job_name)
                self._trace(now, "arrival", job=job_name)
                self._try_place(now)
            elif kind == "iteration_done":
                job_name, token, duration = payload
                job = self._jobs[job_name]
                record = self.records[job_name]
                if token != self._iter_token.get(job_name) or job_name not in self._allocations:
                    continue  # stale event from before a resize/finish
                record.iterations_done += 1
                record.iteration_seconds.append(duration)
                workers = self._allocations[job_name]
                record.samples_processed += job.cost_model.batch_size * len(workers)
                for gpu in workers:
                    self.gpu_busy_seconds[gpu.name] += duration
                if record.iterations_done >= job.iterations:
                    record.finish_time = now
                    self._release(job_name, self._allocations.pop(job_name), now)
                    self._trace(now, "job_finish", job=job_name)
                    self._try_place(now)
                else:
                    self._schedule_iteration(job, now)
            elif kind == "set_speed":
                gpu_name, factor = payload
                self.engine.set_gpu_speed(gpu_name, factor)
                self._trace(now, "set_speed", gpu=gpu_name, factor=factor)
            elif kind == "resize":
                job_name, delta = payload
                self._apply_resize(job_name, delta, now)
        return SchedulerResult(makespan=makespan, jobs=dict(self.records),
                               gpu_busy_seconds=dict(self.gpu_busy_seconds), trace=list(self.trace))

    def _apply_resize(self, job_name: str, delta: int, now: float) -> None:
        record = self.records.get(job_name)
        if record is None or job_name not in self._allocations:
            self._trace(now, "resize_ignored", job=job_name, delta=delta)
            return
        workers = self._allocations[job_name]
        changed = False
        if delta < 0:
            releasable = min(-delta, len(workers) - 1)  # keep at least one worker
            released = [workers.pop() for _ in range(releasable)]
            if released:
                changed = True
                self._release(job_name, released, now)
            self._trace(now, "resize", job=job_name, delta=-releasable,
                        workers=[gpu.name for gpu in workers])
            if released:
                self._try_place(now)
        else:
            added = self._pick_gpus(min(delta, len(self._free)))
            if added:
                changed = True
                for gpu in added:
                    del self._free[gpu.name]
                workers.extend(added)
            self._trace(now, "resize", job=job_name, delta=len(added or []),
                        workers=[gpu.name for gpu in workers])
        if not changed:
            return  # no-op resize: leave the in-flight iteration untouched
        record.worker_names = [gpu.name for gpu in workers]
        # The in-flight iteration (scheduled with the old worker set) is
        # invalidated; restart it under the new configuration.  Bumping the
        # schedule token in _schedule_iteration drops the stale event.
        self._schedule_iteration(self._jobs[job_name], now)

"""Multi-job cluster scheduling on top of the event-driven engine.

The paper evaluates Egeria one job at a time, but its cluster-level claims
(reduced gradient traffic, tolerance to communication bottlenecks) only
matter when several training jobs share machines and links.  This module adds
that layer: a :class:`ClusterScheduler` places :class:`SimJob` s onto the
:class:`~repro.sim.cluster.Cluster`'s GPUs and advances them iteration by
iteration through the :class:`~repro.sim.engine.EventDrivenEngine`, so
scenarios the closed-form model cannot express become one-liners:

* **FIFO / round-robin / rack-packing placement** — jobs queue until enough
  GPUs are free; ``placement="fifo"`` packs a job onto the first free GPUs
  in machine order (locality), ``"round_robin"`` spreads its workers across
  machines (load balancing, at the price of crossing the NICs), and
  ``"tor_pack"`` packs a job into the fewest racks (ToRs) possible — the
  placement that keeps rack-local jobs off the core fabric when the cluster
  declares per-ToR link resources.
* **Stragglers and heterogeneous GPUs** — :meth:`set_gpu_speed` (optionally
  at a future time) slows or speeds individual GPUs; the engine then gates
  every all-reduce on the slowest worker.
* **Elastic jobs** — :meth:`resize_job` adds or removes workers at a given
  time; subsequent iterations use the new all-reduce group and batch volume.
  Checkpointed jobs treat a resize as a *migration* and pay the checkpoint
  write/restore read as link-bytes.
* **Failures and preemption** — :meth:`inject_failure` takes a GPU down
  (optionally back up later); :meth:`preempt_job`/:meth:`resume_job` pause
  and re-queue a job.  Victims restart from their last periodic checkpoint
  (``SimJob.checkpoint_every``) or from scratch without one, with
  checkpoint/restore costs charged through the cost model and engine.
* **Structured fault model** — beyond single-GPU failures, correlated
  failure domains (:meth:`fail_machine` / :meth:`fail_rack` /
  :meth:`fail_tor`), mid-run link degradation (:meth:`degrade_link`) and
  spot capacity with eviction notices (:meth:`mark_preemptible` /
  :meth:`evict_spot`) — a notice triggers a *proactive* checkpoint so the
  resume loses at most the notice window — plus a capped-exponential
  restart backoff (:meth:`set_restart_backoff`).  :mod:`repro.sim.faults`
  drives these knobs from scenario event lists or a seeded stochastic
  generator (see ``docs/faults.md``).
* **Shared-resource contention** — multi-machine jobs queue their gradient
  buckets on the cluster's named fabric link(s) and all jobs queue their
  checkpoint writes / restore reads on the named storage resource
  (:mod:`repro.sim.resources`; each resource's ``policy`` selects first-fit
  FIFO serialization or processor sharing).  With per-ToR fabric resources
  declared (``ClusterSpec.per_tor_fabric``), a job's buckets cross exactly
  the links its placement dictates — its ToR uplinks plus, cross-rack, the
  core — so placement decisions change measured interference.  Concurrent
  jobs genuinely delay each other on the resources they actually share; the
  former flat ``comm_scale`` fair-share multiplier is gone.
* **Async checkpointing** — ``SimJob.async_checkpoint=True`` releases
  compute as soon as an iteration finishes while the snapshot drains on the
  storage resource in the background; the checkpoint only becomes a valid
  rollback target once its write completes.
* **Weighted fair share** — ``SimJob.weight`` sets the job's capacity share
  on processor-sharing resources (split ∝ weight; default 1.0 keeps the
  even split, FIFO resources ignore it).
* **Steady-state fast-forward** — identical back-to-back iterations are
  served from the engine's memoized timing in O(1) instead of re-running
  the event loop; any state transition (freeze/unfreeze, resize, migrate,
  speed change, another job's traffic on a crossed link, cancel/re-flow)
  forces a live re-simulation, so results are bit-identical to the
  event-by-event path.  :attr:`SchedulerResult.perf` reports how much of
  the run was fast-forwarded.

Everything is deterministic for a fixed seed: the event heap breaks ties by
insertion order and the only randomness (optional placement jitter) comes
from a seeded generator, so two runs with the same inputs produce identical
:class:`SchedulerResult` s — the property the multi-job benchmark asserts.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union, TYPE_CHECKING

from .cluster import Cluster, GPUDevice
from .cost_model import CostModel
from .engine import EventDrivenEngine
from .simtime import times_close
from .timeline import SchedulePolicy

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from ..metrics.tracking import RunHistory
    from .observe.observer import SimObserver

__all__ = ["SimJob", "JobRecord", "SchedulerResult", "ClusterScheduler"]


@dataclass
class SimJob:
    """One training job submitted to the cluster.

    ``frozen_prefix`` may be an int (constant) or a callable mapping the
    iteration index to a prefix length, so an Egeria job's progressive
    freezing schedule can be replayed inside the simulation.

    ``checkpoint_every`` enables fault tolerance: every that many completed
    iterations the job writes a freezing-aware incremental checkpoint (the
    active suffix only) onto the shared ``storage`` resource.  After a
    failure or preemption the job restarts from its last checkpoint — paying
    a full-state restore read — instead of from scratch.

    ``storage``/``link`` name the shared resources the job's checkpoint and
    all-reduce traffic queue on; ``None`` selects the cluster defaults
    (:data:`Cluster.CKPT_STORAGE`, and — for jobs that span machines — the
    per-ToR links the placement crosses when the cluster declares them, or
    the flat :data:`Cluster.FABRIC` otherwise).  ``async_checkpoint=True`` overlaps checkpoint writes
    with subsequent compute: the iteration finishes immediately and the
    snapshot drains on the storage resource in the background, becoming a
    valid rollback target only once the write completes.

    ``weight`` is the job's fair-share weight on processor-sharing resources
    (``policy="fair"``): capacity splits proportionally to weight among the
    transfers active at each instant, so a weight-2 job's buckets drain
    twice as fast as a weight-1 competitor's.  The default 1.0 keeps the
    even split; FIFO resources ignore weights entirely.

    The ``begin_iteration``/``iteration_profile``/``checkpoint_write_bytes``
    /``restore_read_bytes``/``rollback`` hooks are the scheduler's interface
    to the job; :class:`~repro.sim.trainer_job.TrainerJob` overrides them to
    run a *real* trainer (live freezing decisions, content-addressed
    checkpoint bytes) inside the simulated cluster.
    """

    name: str
    cost_model: CostModel
    num_workers: int = 1
    iterations: int = 1
    policy: str = SchedulePolicy.VANILLA
    frozen_prefix: Union[int, Callable[[int], int]] = 0
    cached_fp: bool = False
    include_reference_overhead: bool = False
    arrival_time: float = 0.0
    checkpoint_every: Optional[int] = None
    storage: Optional[str] = None
    link: Optional[str] = None
    async_checkpoint: bool = False
    weight: float = 1.0

    def __post_init__(self) -> None:
        """Validate the checkpoint cadence and fair-share weight eagerly."""
        if self.checkpoint_every is not None and self.checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be positive (or None to disable)")
        if self.weight <= 0:
            raise ValueError("weight must be positive")

    def prefix_at(self, iteration: int) -> int:
        """Frozen-prefix length in force during ``iteration``."""
        if callable(self.frozen_prefix):
            return int(self.frozen_prefix(iteration))
        return int(self.frozen_prefix)

    # ------------------------------------------------------------------ #
    # Scheduler hooks (overridden by TrainerJob to run a real trainer)
    # ------------------------------------------------------------------ #
    def begin_iteration(self, iteration: int, sim_time: float = 0.0) -> None:
        """Called once right before iteration ``iteration`` is simulated.

        ``sim_time`` is the simulated clock at the call — trainer-backed
        jobs stamp it into their per-iteration history so loss curves can be
        plotted against cluster time.
        """

    def run_history(self) -> Optional["RunHistory"]:
        """Per-iteration training history to expose on the job's record.

        The base (cost-model-only) job has no real training signal and
        returns ``None``; :class:`~repro.sim.trainer_job.TrainerJob` returns
        its live :class:`~repro.metrics.tracking.RunHistory` (loss and
        frozen-fraction series).  The scheduler attaches the returned object
        to :attr:`JobRecord.history` at submit time.
        """
        return None

    def iteration_profile(self, iteration: int) -> Tuple[int, bool, bool]:
        """``(frozen_prefix, cached_fp, include_reference_overhead)`` for pricing."""
        return (self.prefix_at(iteration), self.cached_fp, self.include_reference_overhead)

    def checkpoint_write_bytes(self, iteration: int, frozen_prefix: int) -> int:
        """Bytes the checkpoint completing iteration ``iteration`` writes."""
        return self.cost_model.checkpoint_bytes(frozen_prefix=frozen_prefix, incremental=True)

    def restore_read_bytes(self, iteration: int, frozen_prefix: int) -> int:
        """Bytes a restore back to iteration ``iteration`` reads."""
        return self.cost_model.checkpoint_bytes(frozen_prefix=frozen_prefix, incremental=False)

    def rollback(self, to_iteration: int) -> None:
        """Called when the scheduler rolls the job back to ``to_iteration``."""

    def steady_profile(self) -> bool:
        """Whether per-iteration hooks are pure, making the job batchable.

        Cost-model-only jobs price every iteration from immutable state —
        ``begin_iteration`` is a no-op and ``iteration_profile`` is a pure
        function of the iteration index — so the scheduler may plan several
        iterations ahead (batched fast-forward).  Jobs that run a *real*
        trainer override this to ``False``: their freezing decisions emerge
        one iteration at a time and must never be precomputed.
        """
        return True


@dataclass
class JobRecord:
    """Lifecycle and per-iteration timing of one job.

    ``placed_seconds`` accumulates only the intervals the job actually held
    GPUs, so :meth:`throughput` excludes queueing, preempted and
    failed-and-requeued intervals.
    """

    name: str
    arrival_time: float
    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    iterations_done: int = 0
    worker_names: List[str] = field(default_factory=list)
    iteration_seconds: List[float] = field(default_factory=list)
    samples_processed: float = 0.0
    placed_seconds: float = 0.0
    placed_since: Optional[float] = None
    checkpoint_iteration: int = 0
    #: ``samples_processed`` watermark at the last checkpoint, so a rollback
    #: restores the exact credit even if the worker count changed since.
    samples_at_checkpoint: float = 0.0
    checkpoints_taken: int = 0
    checkpoint_seconds: float = 0.0
    checkpoint_bytes_written: int = 0
    restores: int = 0
    restore_seconds: float = 0.0
    restore_bytes_read: int = 0
    preemptions: int = 0
    failures: int = 0
    #: Spot-capacity evictions (counted separately from hard ``failures`` so
    #: reliability dashboards can tell voluntary reclaims from crashes).
    evictions: int = 0
    #: Live per-iteration training history (loss, frozen fraction) for
    #: trainer-backed jobs; ``None`` for cost-model-only jobs, which keeps
    #: their serialized records byte-identical to earlier revisions.
    history: Optional["RunHistory"] = None

    @property
    def queueing_delay(self) -> Optional[float]:
        """Seconds between arrival and first placement (None if never placed)."""
        return None if self.start_time is None else self.start_time - self.arrival_time

    @property
    def completion_seconds(self) -> Optional[float]:
        """End-to-end latency from arrival to finish (None while running)."""
        if self.finish_time is None:
            return None
        return self.finish_time - self.arrival_time

    def throughput(self) -> float:
        """Mean samples/second over the intervals the job was placed on GPUs."""
        if self.placed_seconds <= 0.0:
            return 0.0
        return self.samples_processed / self.placed_seconds

    def as_dict(self) -> Dict[str, object]:
        """Deterministic plain-data view of the record."""
        view: Dict[str, object] = {
            "name": self.name,
            "arrival_time": self.arrival_time,
            "start_time": self.start_time,
            "finish_time": self.finish_time,
            "iterations_done": self.iterations_done,
            "worker_names": list(self.worker_names),
            "queueing_delay": self.queueing_delay,
            "completion_seconds": self.completion_seconds,
            "samples_processed": self.samples_processed,
            "throughput": self.throughput(),
            "mean_iteration_seconds": (sum(self.iteration_seconds) / len(self.iteration_seconds)
                                       if self.iteration_seconds else 0.0),
            "placed_seconds": self.placed_seconds,
            "checkpoints_taken": self.checkpoints_taken,
            "checkpoint_seconds": self.checkpoint_seconds,
            "checkpoint_bytes_written": self.checkpoint_bytes_written,
            "restores": self.restores,
            "restore_seconds": self.restore_seconds,
            "restore_bytes_read": self.restore_bytes_read,
            "preemptions": self.preemptions,
            "failures": self.failures,
            "evictions": self.evictions,
        }
        if self.history is not None:
            view["loss_series"] = self.history.losses()
            view["frozen_fraction_series"] = self.history.frozen_fractions()
        return view


@dataclass
class SchedulerResult:
    """Outcome of a :meth:`ClusterScheduler.run`.

    ``resources`` summarizes every shared resource's occupancy: busy seconds,
    total bytes and the per-job / per-kind byte split — the audit trail the
    conservation property tests check against the job records.

    ``perf`` carries the engine's lightweight perf counters
    (``events_processed``, ``iterations_simulated``,
    ``iterations_fast_forwarded``, ``cache_hit_rate``) — how much of the run
    the steady-state fast-forward cache served without touching the event
    loop.
    """

    makespan: float
    jobs: Dict[str, JobRecord]
    gpu_busy_seconds: Dict[str, float]
    trace: List[Dict[str, object]]
    resources: Dict[str, Dict[str, object]] = field(default_factory=dict)
    perf: Dict[str, object] = field(default_factory=dict)

    def utilization(self) -> Dict[str, float]:
        """Per-GPU busy fraction of the makespan."""
        if self.makespan <= 0:
            return {name: 0.0 for name in self.gpu_busy_seconds}
        return {name: busy / self.makespan for name, busy in self.gpu_busy_seconds.items()}

    def as_dict(self) -> Dict[str, object]:
        """Deterministic plain-data view (what the benchmarks compare across runs)."""
        return {
            "makespan": self.makespan,
            "jobs": {name: record.as_dict() for name, record in sorted(self.jobs.items())},
            "utilization": dict(sorted(self.utilization().items())),
            "resources": {name: dict(summary) for name, summary in sorted(self.resources.items())},
            "perf": dict(self.perf),
        }


class ClusterScheduler:
    """Places jobs on a cluster and advances them through the event engine.

    Parameters
    ----------
    cluster:
        The shared cluster whose GPUs and links the jobs compete for.
    engine:
        Event-driven engine; one is built over ``cluster`` when omitted.
    placement:
        ``"fifo"`` packs workers onto the first free GPUs in machine order;
        ``"round_robin"`` takes one free GPU per machine, cycling;
        ``"tor_pack"`` packs workers into the fewest racks (preferring the
        tightest single rack that fits), keeping rack-local jobs off the
        core fabric in per-ToR topology mode.  Job admission is strictly
        FIFO in every case.
    seed:
        Seeds the (currently jitter-free) generator; kept so future stochastic
        knobs stay reproducible.
    """

    PLACEMENTS = ("fifo", "round_robin", "tor_pack")

    #: Effective bandwidth a failed ToR uplink degrades to.  A dead link is
    #: modelled as a tiny positive floor — never zero — so every transfer
    #: quote stays finite and the piecewise-capacity integrals stay exact.
    TOR_DOWN_GBPS = 1e-3

    def __init__(self, cluster: Cluster, engine: Optional[EventDrivenEngine] = None,
                 placement: str = "fifo", seed: int = 0,
                 batch_fast_forward: bool = True):
        """Wire the scheduler to a cluster and (optionally) a shared engine.

        ``batch_fast_forward`` lets steady-state runs of memo-cached
        iterations commit as a single heap event per batch (see
        :meth:`_schedule_iteration_batch`); ``False`` forces the legacy
        one-event-per-iteration path.  Results are bit-identical either way.
        """
        if placement not in self.PLACEMENTS:
            raise ValueError(f"unknown placement {placement!r}; expected one of {self.PLACEMENTS}")
        self.cluster = cluster
        self.engine = engine or EventDrivenEngine(cluster)
        self.placement = placement
        self.seed = seed
        self.batch_fast_forward = bool(batch_fast_forward)

        self._all_gpus: List[GPUDevice] = cluster.all_gpus()
        self._free: Dict[str, GPUDevice] = {gpu.name: gpu for gpu in self._all_gpus}
        self._gpu_names = {gpu.name for gpu in self._all_gpus}
        self._jobs: Dict[str, SimJob] = {}
        self._allocations: Dict[str, List[GPUDevice]] = {}
        self._pending: List[str] = []
        self._heap: List[Tuple[float, int, str, Tuple]] = []
        self._seq = 0
        #: Per-job schedule token; an iteration_done event is only honoured
        #: when its token matches, which drops in-flight iterations that a
        #: resize/failure/preemption invalidated and restarted.
        self._iter_token: Dict[str, int] = {}
        #: Fault-tolerance state: GPUs currently down, preempted jobs
        #: awaiting resume, and jobs that must pay a checkpoint-restore read
        #: before their next iteration.  Insertion-ordered dicts used as
        #: ordered sets (value always None) so any future iteration over
        #: them is deterministic regardless of PYTHONHASHSEED (SIM003).
        self._failed_gpus: Dict[str, None] = {}
        self._paused: Dict[str, None] = {}
        self._needs_restore: Dict[str, None] = {}
        #: Per-job placement generation; bumped whenever the job is taken off
        #: its GPUs so in-flight async checkpoint completions from the old
        #: placement are recognised as stale.
        self._placement_epoch: Dict[str, int] = {}
        #: Spot-capacity state: preemptible GPUs (name -> eviction-notice
        #: seconds), consecutive-failure counters for the capped-exponential
        #: restart backoff, and the last proactive-checkpoint instant per job
        #: (dedupes simultaneous notices hitting the same job).
        self._preemptible: Dict[str, float] = {}
        self._restart_count: Dict[str, int] = {}
        self._last_proactive: Dict[str, float] = {}
        #: ``(base_seconds, cap_seconds)`` capped-exponential restart backoff
        #: for failed/evicted jobs; ``None`` (the default) re-queues
        #: immediately, the historical behaviour.
        self.restart_backoff: Optional[Tuple[float, float]] = None
        self.records: Dict[str, JobRecord] = {}
        self.gpu_busy_seconds: Dict[str, float] = {gpu.name: 0.0 for gpu in self._all_gpus}
        self.trace: List[Dict[str, object]] = []
        if self.engine.observer is not None:
            self.engine.observer.note_cluster(len(self._all_gpus))

    # ------------------------------------------------------------------ #
    # Submission and scenario knobs
    # ------------------------------------------------------------------ #
    def _push(self, time: float, kind: str, payload: Tuple = ()) -> None:
        heapq.heappush(self._heap, (float(time), self._seq, kind, payload))
        self._seq += 1

    def submit(self, job: SimJob) -> None:
        """Queue a job for admission at its ``arrival_time``.

        Worker counts and resource names are validated here, at submit time,
        like job and GPU names elsewhere — events must not fire into the
        void.
        """
        if job.name in self._jobs:
            raise ValueError(f"duplicate job name {job.name!r}")
        if job.num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        if job.num_workers > len(self._all_gpus):
            raise ValueError(f"job {job.name!r} wants {job.num_workers} workers but the cluster "
                             f"has only {len(self._all_gpus)} GPUs")
        # Resource names are validated at submit time, like job/GPU names
        # (late cluster.add_resource registrations are adopted here).
        if job.storage is not None:
            self.engine.resource_timeline(job.storage)
        if job.link is not None:
            self.engine.resource_timeline(job.link)
        self._jobs[job.name] = job
        self.records[job.name] = JobRecord(name=job.name, arrival_time=job.arrival_time,
                                           history=job.run_history())
        self._push(job.arrival_time, "arrival", (job.name,))

    def _require_gpu(self, gpu_name: str) -> str:
        """Validate a GPU name at call time (events must not fire into the void)."""
        gpu_name = str(gpu_name)
        if gpu_name not in self._gpu_names:
            raise KeyError(f"unknown GPU {gpu_name!r}; known: {sorted(self._gpu_names)}")
        return gpu_name

    def _require_job(self, job_name: str) -> str:
        """Validate a job name at call time (the job must have been submitted)."""
        job_name = str(job_name)
        if job_name not in self._jobs:
            raise KeyError(f"unknown job {job_name!r}; known: {sorted(self._jobs)}")
        return job_name

    def set_gpu_speed(self, gpu_name: str, factor: float, at_time: float = 0.0) -> None:
        """Straggler / heterogeneous-GPU knob, applied at ``at_time``."""
        if factor <= 0:
            raise ValueError("speed factor must be positive")
        self._push(at_time, "set_speed", (self._require_gpu(gpu_name), float(factor)))

    def resize_job(self, job_name: str, delta_workers: int, at_time: float) -> None:
        """Elastic worker join (+) / leave (-) at ``at_time``.

        For jobs with ``checkpoint_every`` set, resizing is a *migration*:
        the job writes a synchronized checkpoint and restores it on the new
        worker set, both priced as link-bytes through the engine.
        """
        if delta_workers == 0:
            raise ValueError("delta_workers must be non-zero")
        self._push(at_time, "resize", (self._require_job(job_name), int(delta_workers)))

    def inject_failure(self, gpu_name: str, at_time: float,
                       recover_at: Optional[float] = None) -> None:
        """Take a GPU down at ``at_time`` (and optionally back up later).

        Any job holding the GPU is descheduled: its other GPUs are released,
        its progress rolls back to the last checkpoint (or to zero without
        checkpointing) and it re-queues, paying a restore read when it is
        placed again.
        """
        gpu_name = self._require_gpu(gpu_name)
        if recover_at is not None and recover_at <= at_time:
            raise ValueError("recover_at must come after at_time")
        self._push(at_time, "gpu_fail", (gpu_name,))
        if recover_at is not None:
            self._push(recover_at, "gpu_recover", (gpu_name,))

    def preempt_job(self, job_name: str, at_time: float) -> None:
        """Preempt a running job at ``at_time``: its GPUs are released and it
        stays paused (not queued) until :meth:`resume_job`."""
        self._push(at_time, "preempt", (self._require_job(job_name),))

    def resume_job(self, job_name: str, at_time: float) -> None:
        """Move a preempted job back into the admission queue at ``at_time``."""
        self._push(at_time, "resume", (self._require_job(job_name),))

    # ------------------------------------------------------------------ #
    # Fault-model knobs: correlated domains, degraded links, spot capacity
    # ------------------------------------------------------------------ #
    def _require_machine(self, machine: str) -> str:
        """Validate a machine name at call time (events must not fire into the void)."""
        machine = str(machine)
        if not any(m.name == machine for m in self.cluster.machines):
            raise KeyError(f"unknown machine {machine!r}; known: "
                           f"{sorted(m.name for m in self.cluster.machines)}")
        return machine

    @staticmethod
    def _require_recovery(at_time: float, recover_at: Optional[float]) -> None:
        """Shared ``recover_at`` ordering check for every domain-failure knob."""
        if recover_at is not None and recover_at <= at_time:
            raise ValueError("recover_at must come after at_time")

    def fail_machine(self, machine: str, at_time: float,
                     recover_at: Optional[float] = None) -> None:
        """Take a whole machine down at ``at_time`` (optionally back up later).

        A correlated failure domain: every resident GPU fails in the same
        event, so a job packed onto the machine loses all its local workers
        at once while spread placements lose only one worker per machine.
        """
        machine = self._require_machine(machine)
        self._require_recovery(at_time, recover_at)
        gpus = tuple(gpu.name for gpu in self.cluster.gpus_on_machine(machine))
        self._push(at_time, "domain_fail", (machine, "machine", gpus))
        if recover_at is not None:
            self._push(recover_at, "domain_recover", (machine, "machine", gpus))

    def fail_rack(self, tor_index: int, at_time: float,
                  recover_at: Optional[float] = None) -> None:
        """Fail rack ``tor_index``: every resident GPU plus the ToR uplink.

        The largest correlated domain the topology declares.  All GPUs on
        the rack's machines go down atomically and — when the cluster runs
        in per-ToR fabric mode — the rack's uplink resource degrades to
        :data:`TOR_DOWN_GBPS` until recovery, so surviving cross-rack jobs
        that shared the uplink feel the outage too.  Blast radius therefore
        depends on placement: ``tor_pack`` concentrates each job in one rack
        (few jobs lost, whole jobs lost) while spread placements expose
        every job to every rack.
        """
        tor_index = int(tor_index)
        machines = self.cluster.machines_on_tor(tor_index)  # KeyError if unknown
        self._require_recovery(at_time, recover_at)
        label = f"rack{tor_index}"
        gpus = tuple(gpu.name for machine in machines
                     for gpu in self.cluster.gpus_on_machine(machine.name))
        # Event order within each instant matters: the uplink goes down
        # before the GPUs (so victims re-placed in the same sweep quote
        # against the degraded link) and comes back up before the GPUs
        # rejoin (so jobs re-placed onto the recovered rack quote at the
        # restored rate, not the outage floor).
        uplink = Cluster.tor_link_name(tor_index)
        has_uplink = self.cluster.has_per_tor_fabric and uplink in self.engine.resources
        if has_uplink:
            self._push(at_time, "link_set_capacity",
                       (uplink, self.TOR_DOWN_GBPS, "tor_down"))
        self._push(at_time, "domain_fail", (label, "rack", gpus))
        if recover_at is not None:
            if has_uplink:
                nominal = self.engine.resource_timeline(uplink).resource.bandwidth_gbps
                self._push(recover_at, "link_set_capacity", (uplink, nominal, "tor_up"))
            self._push(recover_at, "domain_recover", (label, "rack", gpus))

    def fail_tor(self, tor_index: int, at_time: float,
                 recover_at: Optional[float] = None) -> None:
        """Fail only ToR switch ``tor_index``'s uplink at ``at_time``.

        The rack's machines stay up but are effectively cut off from the
        fabric: the uplink resource degrades to :data:`TOR_DOWN_GBPS`, so
        cross-rack all-reduce and checkpoint traffic through it stalls while
        rack-local single-machine jobs keep running — the failure mode that
        rewards ``tor_pack`` placement.  Requires per-ToR fabric mode.
        """
        tor_index = int(tor_index)
        self.cluster.machines_on_tor(tor_index)  # KeyError if unknown
        self._require_recovery(at_time, recover_at)
        uplink = Cluster.tor_link_name(tor_index)
        if uplink not in self.engine.resources:
            raise ValueError(f"fail_tor requires per-ToR fabric resources; "
                             f"{uplink!r} is not registered on this cluster")
        nominal = self.engine.resource_timeline(uplink).resource.bandwidth_gbps
        self._push(at_time, "link_set_capacity", (uplink, self.TOR_DOWN_GBPS, "tor_down"))
        if recover_at is not None:
            self._push(recover_at, "link_set_capacity", (uplink, nominal, "tor_up"))

    def degrade_link(self, resource: str, gbps: float, at_time: float,
                     restore_at: Optional[float] = None) -> None:
        """Drop shared resource ``resource`` to ``gbps`` at ``at_time``.

        In-flight transfers on the resource re-quote byte-conservingly from
        the change instant (:meth:`~repro.sim.resources.BaseResourceTimeline.
        set_capacity`); iterations whose completion events were already
        committed keep their quoted durations and the degraded rate takes
        scheduler-visible effect from the next iteration boundary.
        ``restore_at`` brings the resource back to its nominal bandwidth.
        """
        resource = str(resource)
        timeline = self.engine.resource_timeline(resource)  # validates the name
        if gbps <= 0:
            raise ValueError("degraded capacity must be positive (use a small "
                             "floor like 1e-3 Gbps for a dead link)")
        self._require_recovery(at_time, restore_at)
        self._push(at_time, "link_set_capacity", (resource, float(gbps), "degraded"))
        if restore_at is not None:
            self._push(restore_at, "link_set_capacity",
                       (resource, timeline.resource.bandwidth_gbps, "restored"))

    def mark_preemptible(self, gpu_names: Sequence[str],
                         notice_seconds: float = 0.0) -> None:
        """Mark GPUs as spot capacity with an eviction-notice window.

        :meth:`evict_spot` on a marked GPU fires a ``spot_notice`` event
        ``notice_seconds`` before the eviction so the resident job can write
        a proactive checkpoint; ``0.0`` means evictions arrive unannounced.
        """
        if notice_seconds < 0:
            raise ValueError("notice_seconds must be non-negative")
        if isinstance(gpu_names, str):
            gpu_names = [gpu_names]
        for gpu_name in gpu_names:
            self._preemptible[self._require_gpu(gpu_name)] = float(notice_seconds)

    def evict_spot(self, gpu_name: str, at_time: float,
                   rejoin_at: Optional[float] = None) -> None:
        """Evict spot GPU ``gpu_name`` at ``at_time`` (optionally back later).

        The GPU must have been :meth:`mark_preemptible`-ed.  With a notice
        window configured, a ``spot_notice`` event fires first and the
        resident job writes a proactive checkpoint of its completed
        progress (priced through the storage timeline), so the resume loses
        at most the notice-to-eviction window instead of a full checkpoint
        interval — provided the notice is long enough for the write to
        drain.  ``rejoin_at`` returns the reclaimed capacity to the pool.
        """
        gpu_name = self._require_gpu(gpu_name)
        if gpu_name not in self._preemptible:
            raise ValueError(f"GPU {gpu_name!r} is not marked preemptible; call "
                             f"mark_preemptible first so eviction semantics are explicit")
        self._require_recovery(at_time, rejoin_at)
        notice = self._preemptible[gpu_name]
        if notice > 0.0:
            self._push(max(0.0, at_time - notice), "spot_notice", (gpu_name, float(at_time)))
        self._push(at_time, "spot_evict", (gpu_name,))
        if rejoin_at is not None:
            self._push(rejoin_at, "gpu_recover", (gpu_name,))

    def set_restart_backoff(self, base_seconds: float, cap_seconds: float) -> None:
        """Enable capped-exponential restart backoff for failed/evicted jobs.

        The k-th consecutive failure of a job delays its re-queue by
        ``min(base_seconds * 2**(k-1), cap_seconds)``; a completed iteration
        resets the job's counter.  Keeps jobs on flapping capacity from
        thrashing the admission queue with restore reads.
        """
        if base_seconds <= 0 or cap_seconds < base_seconds:
            raise ValueError("backoff needs base_seconds > 0 and cap_seconds >= base_seconds")
        self.restart_backoff = (float(base_seconds), float(cap_seconds))

    # ------------------------------------------------------------------ #
    # Placement
    # ------------------------------------------------------------------ #
    def _pick_gpus(self, count: int) -> Optional[List[GPUDevice]]:
        """Choose ``count`` free GPUs under the configured placement, or None."""
        if count > len(self._free):
            return None
        if self.placement == "fifo":
            chosen = [gpu for gpu in self._all_gpus if gpu.name in self._free][:count]
            return chosen if len(chosen) == count else None
        if self.placement == "tor_pack":
            return self._pick_gpus_tor_pack(count)
        # round_robin: one free GPU per machine, cycling over machines.
        by_machine: Dict[str, List[GPUDevice]] = {}
        for gpu in self._all_gpus:
            if gpu.name in self._free:
                by_machine.setdefault(gpu.machine, []).append(gpu)
        chosen: List[GPUDevice] = []
        machine_order = [m.name for m in self.cluster.machines if m.name in by_machine]
        while len(chosen) < count and machine_order:
            for machine in list(machine_order):
                pool = by_machine[machine]
                chosen.append(pool.pop(0))
                if not pool:
                    machine_order.remove(machine)
                if len(chosen) == count:
                    break
        return chosen if len(chosen) == count else None

    def _pick_gpus_tor_pack(self, count: int) -> Optional[List[GPUDevice]]:
        """Rack-aware packing: fewest ToRs, preferring the tightest fit.

        If one rack can host the whole job, the rack with the *fewest* free
        GPUs that still fits is chosen (best fit, minimizing fragmentation);
        otherwise racks are filled in descending free-GPU order so the job
        spans as few ToRs as possible.  Ties break on the lower ToR index;
        within a rack, GPUs come in machine order — all deterministic.
        """
        free_by_tor: Dict[int, List[GPUDevice]] = {}
        for gpu in self._all_gpus:
            if gpu.name in self._free:
                free_by_tor.setdefault(self.cluster.tor_index(gpu.machine), []).append(gpu)
        fitting = sorted((len(gpus), tor) for tor, gpus in free_by_tor.items()
                         if len(gpus) >= count)
        if fitting:
            return free_by_tor[fitting[0][1]][:count]
        chosen: List[GPUDevice] = []
        for _free_count, tor in sorted(((-len(gpus), tor) for tor, gpus in free_by_tor.items())):
            chosen.extend(free_by_tor[tor][: count - len(chosen)])
            if len(chosen) == count:
                return chosen
        return None

    def _try_place(self, now: float) -> None:
        """Strict-FIFO admission: place queued jobs head-first while GPUs last."""
        while self._pending:
            job = self._jobs[self._pending[0]]
            gpus = self._pick_gpus(job.num_workers)
            if gpus is None:
                return
            self._pending.pop(0)
            for gpu in gpus:
                del self._free[gpu.name]
            self._allocations[job.name] = gpus
            record = self.records[job.name]
            if record.start_time is None:
                record.start_time = now
            record.placed_since = now
            record.worker_names = [gpu.name for gpu in gpus]
            self._trace(now, "job_start", job=job.name, workers=record.worker_names)
            delay = 0.0
            if job.name in self._needs_restore:
                # Restore reads the *full* state (frozen prefix included) back
                # from the shared storage resource before training continues —
                # queueing behind any other job's in-flight transfers.
                self._needs_restore.pop(job.name, None)
                restore_bytes = job.restore_read_bytes(
                    record.iterations_done, job.prefix_at(record.iterations_done))
                delay = self._storage_seconds(job, restore_bytes, now, gpus, kind="restore")
                record.restores += 1
                record.restore_seconds += delay
                record.restore_bytes_read += int(restore_bytes)
                self._trace(now, "restore", job=job.name, seconds=delay,
                            num_bytes=int(restore_bytes),
                            from_iteration=record.iterations_done)
            self._schedule_iteration(job, now + delay)

    def _release(self, job_name: str, gpus: Sequence[GPUDevice], now: float) -> None:
        for gpu in gpus:
            if gpu.name not in self._failed_gpus:
                self._free[gpu.name] = gpu
        self._trace(now, "gpus_released", job=job_name, workers=[g.name for g in gpus])

    def _deschedule(self, job_name: str, now: float) -> List[GPUDevice]:
        """Take a job off its GPUs: release them, invalidate the in-flight
        iteration, roll progress back to the last checkpoint and close the
        placed interval.  Returns the released GPUs."""
        job = self._jobs[job_name]
        record = self.records[job_name]
        workers = self._allocations.pop(job_name)
        self._release(job_name, workers, now)
        self._iter_token[job_name] = self._iter_token.get(job_name, 0) + 1
        self._placement_epoch[job_name] = self._placement_epoch.get(job_name, 0) + 1
        # The invalidated iteration's transfers that have not started yet are
        # cancelled off every shared resource (the bytes never hit the wire).
        self.engine.resources.cancel_job(job_name, now)
        if record.placed_since is not None:
            record.placed_seconds += now - record.placed_since
            record.placed_since = None
        # The rollback target is whatever snapshot last committed — periodic
        # cadence or a proactive spot-notice write; jobs with neither keep
        # checkpoint_iteration at 0 and restart from scratch.
        rollback_to = record.checkpoint_iteration
        if record.iterations_done > rollback_to:
            record.iterations_done = rollback_to
            record.samples_processed = record.samples_at_checkpoint if rollback_to > 0 else 0.0
            job.rollback(rollback_to)
        if rollback_to > 0:
            self._needs_restore[job_name] = None
        record.worker_names = []
        return workers

    # ------------------------------------------------------------------ #
    # Iteration advancement
    # ------------------------------------------------------------------ #
    def _storage_for(self, job: SimJob) -> Optional[str]:
        """The storage resource the job's checkpoint traffic queues on."""
        if job.storage is not None:
            return job.storage
        return Cluster.CKPT_STORAGE if Cluster.CKPT_STORAGE in self.engine.resources else None

    def _links_for(self, job: SimJob, workers: Sequence[GPUDevice]) -> Optional[List[str]]:
        """The shared link(s) the job's all-reduce crosses (None if intra-machine).

        An explicit ``SimJob.link`` always wins.  Otherwise, on clusters
        declaring per-ToR fabric resources, the links are derived from the
        placement (:meth:`Cluster.links_crossed`: the workers' ToR uplinks
        plus, cross-rack, the core); on flat clusters every multi-machine
        job shares the default :data:`Cluster.FABRIC`.
        """
        if len({gpu.machine for gpu in workers}) <= 1:
            return None  # intra-machine rings never touch the shared fabric
        if job.link is not None:
            return [job.link]
        crossed = self.cluster.links_crossed(list(workers))
        if crossed:
            return crossed
        return [Cluster.FABRIC] if Cluster.FABRIC in self.engine.resources else None

    def _storage_seconds(self, job: SimJob, num_bytes: int, start_time: float,
                         workers: Sequence[GPUDevice], kind: str) -> float:
        """Queue a checkpoint/restore transfer; returns its total duration
        (queueing wait included) from ``start_time``."""
        storage = self._storage_for(job)
        if storage is None:
            return self.engine.transfer_seconds(num_bytes, workers)
        _start, end = self.engine.storage_transfer(num_bytes, start_time, storage,
                                                   workers, job=job.name, kind=kind,
                                                   weight=job.weight)
        return end - start_time

    def _schedule_iteration(self, job: SimJob, now: float, allow_batch: bool = False) -> None:
        record = self.records[job.name]
        workers = self._allocations[job.name]
        iteration_index = record.iterations_done
        if (allow_batch and self.batch_fast_forward and job.steady_profile()
                and self._schedule_iteration_batch(job, record, workers,
                                                   iteration_index, now)):
            return
        # Trainer-backed jobs run one *real* training iteration here; its
        # freezing decisions then price the simulated iteration.
        job.begin_iteration(iteration_index, sim_time=now)
        prefix, cached_fp, include_reference = job.iteration_profile(iteration_index)
        result = self.engine.simulate_iteration(
            job.cost_model, workers=workers, frozen_prefix=prefix,
            cached_fp=cached_fp, policy=job.policy,
            include_reference_overhead=include_reference, start_time=now,
            link_resource=self._links_for(job, workers), job_name=job.name,
            job_weight=job.weight)
        duration = result.total
        # Periodic checkpoint: the iteration that completes a checkpoint
        # interval also writes the freezing-aware incremental snapshot (the
        # active suffix only) onto the shared storage resource, queueing
        # behind any concurrent checkpointer.
        token = self._iter_token.get(job.name, 0) + 1
        self._iter_token[job.name] = token
        ckpt_due = bool(job.checkpoint_every
                        and (iteration_index + 1) % job.checkpoint_every == 0)
        if not ckpt_due:
            self._push(now + duration, "iteration_done",
                       (job.name, token, duration, 0.0, 0, False))
            return
        ckpt_bytes = int(job.checkpoint_write_bytes(iteration_index, prefix))
        ckpt_seconds = self._storage_seconds(job, ckpt_bytes, now + duration, workers,
                                             kind="checkpoint")
        if job.async_checkpoint:
            # Overlapped write: compute is released at the iteration boundary
            # while the snapshot drains on the storage resource; it becomes a
            # rollback target only when the drain completes.  The
            # iteration_done is pushed first so, on a time tie, progress is
            # booked before the checkpoint watermark advances.
            self._push(now + duration, "iteration_done",
                       (job.name, token, duration, 0.0, 0, False))
            samples_after = record.samples_processed + job.cost_model.batch_size * len(workers)
            self._push(now + duration + ckpt_seconds, "ckpt_done",
                       (job.name, self._placement_epoch.get(job.name, 0),
                        iteration_index + 1, samples_after, ckpt_seconds, ckpt_bytes))
        else:
            duration += ckpt_seconds
            self._push(now + duration, "iteration_done",
                       (job.name, token, duration, ckpt_seconds, ckpt_bytes, True))

    def _schedule_iteration_batch(self, job: SimJob, record: JobRecord,
                                  workers: List[GPUDevice], iteration_index: int,
                                  now: float) -> bool:
        """Commit a run of memo-cached iterations as **one** heap event.

        Plans the longest run ``K >= 2`` of upcoming iterations that (a)
        share one constant pricing profile, (b) end strictly before both the
        next checkpoint-writing iteration and the earliest pending heap
        event — so no knob event (arrival, resize, fault, speed change,
        another job's completion, checkpoint drain) can intervene — and (c)
        start from a quiet fast-forward cache hit.  The engine replays the K
        cached iterations back to back with the exact per-iteration float
        arithmetic of the unbatched path (each start is the previous start
        plus that iteration's ``result.total``), re-committing every link
        window, and a single ``iteration_batch_done`` event credits all K.

        If a fair-share revision or re-flow moves a crossed transfer's end
        past a later iteration's start, the engine truncates the batch there:
        the committed prefix's completion is re-quoted at its true end and
        the remaining iterations are re-planned when that event pops (live
        if the links stay busy).  Only called from the event-loop
        continuation, where the pending heap is the complete future — a
        placement sweep admitting several jobs at once must not batch, since
        later admissions' traffic is not in the heap yet.

        Returns ``False`` (committing nothing) when no batch of at least two
        iterations is possible; the caller falls back to the
        one-event-per-iteration path.
        """
        horizon = self._heap[0][0] if self._heap else math.inf
        if not now < horizon:
            return False
        prefix, cached_fp, include_reference = profile = job.iteration_profile(iteration_index)
        links = self._links_for(job, workers)
        entry = self.engine.can_fast_forward(
            job.cost_model, workers=workers, frozen_prefix=prefix,
            cached_fp=cached_fp, policy=job.policy,
            include_reference_overhead=include_reference, start_time=now,
            link_resource=links)
        if entry is None:
            return False
        limit = job.iterations - iteration_index
        if job.checkpoint_every:
            # The checkpoint-writing iteration keeps the single-iteration
            # path: it prices and queues the snapshot write.
            limit = min(limit, job.checkpoint_every - 1
                        - (iteration_index % job.checkpoint_every))
        if limit < 2:
            return False
        starts: List[float] = []
        start = now
        while len(starts) < limit:
            if starts and job.iteration_profile(iteration_index + len(starts)) != profile:
                break
            end = start + entry.rel_end
            nxt = start + (end - start)
            if not nxt < horizon:
                break
            starts.append(start)
            start = nxt
        if len(starts) < 2:
            return False
        for offset, planned_start in enumerate(starts):
            job.begin_iteration(iteration_index + offset, sim_time=planned_start)
        results = self.engine.fast_forward_batch(
            job.cost_model, len(starts), workers=workers, frozen_prefix=prefix,
            cached_fp=cached_fp, policy=job.policy,
            include_reference_overhead=include_reference, start_time=now,
            link_resource=links, job_name=job.name, job_weight=job.weight)
        if not results:
            return False
        token = self._iter_token.get(job.name, 0) + 1
        self._iter_token[job.name] = token
        durations = tuple(result.total for result in results)
        end = now
        for duration in durations:
            end = end + duration
        self._push(end, "iteration_batch_done", (job.name, token, durations))
        return True

    # ------------------------------------------------------------------ #
    # Event loop
    # ------------------------------------------------------------------ #
    def _trace(self, time: float, kind: str, **payload: object) -> None:
        entry: Dict[str, object] = {"time": time, "kind": kind}
        entry.update(payload)
        self.trace.append(entry)
        # Single instrumentation point: every scheduling decision reaches
        # both the legacy decision log above and the SimScope observer.
        observer = self.engine.observer
        if observer is not None:
            observer.scheduler_event(time, kind, entry)

    def run(self) -> SchedulerResult:
        """Drain all events; returns per-job records, utilization and trace.

        With the engine's sanitizer attached, every dequeued event is
        causality-checked against the scheduler's absolute clock and the
        resource pool is audited (bytes, windows, fair-share rates) once the
        heap drains.
        """
        makespan = 0.0
        sanitizer = self.engine.sanitizer
        while self._heap:
            now, _seq, kind, payload = heapq.heappop(self._heap)
            if sanitizer is not None:
                sanitizer.check_event("scheduler", now, kind)
            # Only events that commit real work extend the makespan.  Knob
            # events (set_speed/resize/faults) may be timestamped past the
            # last completed work, and a *stale* completion — an iteration
            # invalidated by a failure/preemption/eviction — may carry a
            # quoted end far beyond the real end of work (e.g. an iteration
            # priced across a dead ToR uplink), so each completion kind
            # checks its validity guard before counting.
            if kind == "arrival":
                makespan = max(makespan, now)
                (job_name,) = payload
                self._pending.append(job_name)
                self._trace(now, "arrival", job=job_name)
                self._try_place(now)
            elif kind == "ckpt_done":
                if self._apply_ckpt_done(payload, now):
                    makespan = max(makespan, now)
            elif kind == "iteration_done":
                job_name, token, duration, ckpt_seconds, ckpt_bytes, ckpt_taken = payload
                job = self._jobs[job_name]
                record = self.records[job_name]
                if token != self._iter_token.get(job_name) or job_name not in self._allocations:
                    continue  # stale event from before a resize/failure/preemption/finish
                makespan = max(makespan, now)
                record.iterations_done += 1
                record.iteration_seconds.append(duration)
                workers = self._allocations[job_name]
                record.samples_processed += job.cost_model.batch_size * len(workers)
                for gpu in workers:
                    self.gpu_busy_seconds[gpu.name] += duration
                if self._restart_count:
                    # Completed progress resets the restart backoff (the
                    # guard keeps the common no-faults path dict-op free).
                    self._restart_count.pop(job_name, None)
                if ckpt_taken:
                    record.checkpoints_taken += 1
                    record.checkpoint_seconds += ckpt_seconds
                    record.checkpoint_bytes_written += int(ckpt_bytes)
                    record.checkpoint_iteration = record.iterations_done
                    record.samples_at_checkpoint = record.samples_processed
                    self._trace(now, "checkpoint", job=job_name,
                                iteration=record.iterations_done, seconds=ckpt_seconds,
                                num_bytes=int(ckpt_bytes))
                if record.iterations_done >= job.iterations:
                    record.finish_time = now
                    if record.placed_since is not None:
                        record.placed_seconds += now - record.placed_since
                        record.placed_since = None
                    self._release(job_name, self._allocations.pop(job_name), now)
                    self._trace(now, "job_finish", job=job_name)
                    self._try_place(now)
                else:
                    self._schedule_iteration(job, now, allow_batch=True)
            elif kind == "iteration_batch_done":
                # A committed run of fast-forwarded iterations; credit each
                # one with the exact per-event bookkeeping (same accumulation
                # order) the unbatched path would have performed.
                job_name, token, durations = payload
                job = self._jobs[job_name]
                record = self.records[job_name]
                if token != self._iter_token.get(job_name) or job_name not in self._allocations:
                    continue  # stale event from before a resize/failure/preemption/finish
                makespan = max(makespan, now)
                workers = self._allocations[job_name]
                for duration in durations:
                    record.iterations_done += 1
                    record.iteration_seconds.append(duration)
                    record.samples_processed += job.cost_model.batch_size * len(workers)
                    for gpu in workers:
                        self.gpu_busy_seconds[gpu.name] += duration
                if self._restart_count:
                    self._restart_count.pop(job_name, None)
                if record.iterations_done >= job.iterations:
                    record.finish_time = now
                    if record.placed_since is not None:
                        record.placed_seconds += now - record.placed_since
                        record.placed_since = None
                    self._release(job_name, self._allocations.pop(job_name), now)
                    self._trace(now, "job_finish", job=job_name)
                    self._try_place(now)
                else:
                    self._schedule_iteration(job, now, allow_batch=True)
            elif kind == "set_speed":
                gpu_name, factor = payload
                self.engine.set_gpu_speed(gpu_name, factor)
                self._trace(now, "set_speed", gpu=gpu_name, factor=factor)
            elif kind == "resize":
                job_name, delta = payload
                self._apply_resize(job_name, delta, now)
            elif kind == "gpu_fail":
                (gpu_name,) = payload
                self._apply_gpu_failure(gpu_name, now)
            elif kind == "gpu_recover":
                (gpu_name,) = payload
                self._apply_gpu_recovery(gpu_name, now)
            elif kind == "preempt":
                (job_name,) = payload
                self._apply_preemption(job_name, now)
            elif kind == "resume":
                (job_name,) = payload
                self._apply_resume(job_name, now)
            elif kind == "domain_fail":
                label, cause, gpus = payload
                self._apply_domain_failure(label, cause, gpus, now)
            elif kind == "domain_recover":
                label, cause, gpus = payload
                self._apply_domain_recovery(label, cause, gpus, now)
            elif kind == "link_set_capacity":
                resource, gbps, reason = payload
                self._apply_link_capacity(resource, gbps, reason, now)
            elif kind == "spot_notice":
                gpu_name, evict_at = payload
                self._apply_spot_notice(gpu_name, evict_at, now)
            elif kind == "spot_evict":
                (gpu_name,) = payload
                self._apply_spot_eviction(gpu_name, now)
            elif kind == "requeue":
                (job_name,) = payload
                self._apply_requeue(job_name, now)
        if sanitizer is not None:
            sanitizer.verify_pool(self.engine.resources)
        if self.engine.observer is not None:
            # Render committed occupancy (spans + byte counters) from the
            # fully re-flowed timelines; idempotent, so callers that
            # finalize again (e.g. run_scenario) are safe.
            self.engine.observer.finalize(self.engine.resources)
        return SchedulerResult(makespan=makespan, jobs=dict(self.records),
                               gpu_busy_seconds=dict(self.gpu_busy_seconds), trace=list(self.trace),
                               resources=self.engine.resources.summary(),
                               perf=self.engine.perf_counters())

    def _apply_ckpt_done(self, payload: Tuple, now: float) -> bool:
        """Commit an async checkpoint once its storage write has drained.

        Returns whether the write committed (dropped writes must not extend
        the makespan)."""
        job_name, epoch, iteration_index, samples_after, seconds, num_bytes = payload
        record = self.records[job_name]
        if epoch != self._placement_epoch.get(job_name, 0) \
                or record.iterations_done < iteration_index \
                or iteration_index <= record.checkpoint_iteration:
            # The job was descheduled/resized (stale epoch), rolled back past
            # this iteration, or a newer snapshot already committed — the
            # write never becomes a rollback target and must not regress the
            # watermark or double-count.
            self._trace(now, "checkpoint_dropped", job=job_name, iteration=iteration_index)
            return False
        record.checkpoints_taken += 1
        record.checkpoint_seconds += seconds
        record.checkpoint_bytes_written += int(num_bytes)
        record.checkpoint_iteration = int(iteration_index)
        record.samples_at_checkpoint = float(samples_after)
        self._trace(now, "checkpoint", job=job_name, iteration=int(iteration_index),
                    seconds=seconds, num_bytes=int(num_bytes), overlapped=True)
        return True

    def _apply_resize(self, job_name: str, delta: int, now: float) -> None:
        record = self.records.get(job_name)
        if record is None or job_name not in self._allocations:
            self._trace(now, "resize_ignored", job=job_name, delta=delta)
            return
        job = self._jobs[job_name]
        workers = self._allocations[job_name]
        old_workers = list(workers)
        changed = False
        if delta < 0:
            releasable = min(-delta, len(workers) - 1)  # keep at least one worker
            released = [workers.pop() for _ in range(releasable)]
            if released:
                changed = True
                self._release(job_name, released, now)
            self._trace(now, "resize", job=job_name, delta=-releasable,
                        workers=[gpu.name for gpu in workers])
            if released:
                self._try_place(now)
        else:
            added = self._pick_gpus(min(delta, len(self._free)))
            if added:
                changed = True
                for gpu in added:
                    del self._free[gpu.name]
                workers.extend(added)
            self._trace(now, "resize", job=job_name, delta=len(added or []),
                        workers=[gpu.name for gpu in workers])
        if not changed:
            return  # no-op resize: leave the in-flight iteration untouched
        # The resized worker set is the job's size from here on — a later
        # failure/preemption re-queues it at this size, not the submitted one.
        job.num_workers = len(workers)
        record.worker_names = [gpu.name for gpu in workers]
        # The invalidated in-flight iteration's pending transfers never
        # happen, and any async checkpoint still draining is superseded by
        # the migration checkpoint below — bump the placement epoch so its
        # ckpt_done is recognised as stale (no double commit).
        self.engine.resources.cancel_job(job_name, now)
        self._placement_epoch[job_name] = self._placement_epoch.get(job_name, 0) + 1
        # The in-flight iteration (scheduled with the old worker set) is
        # invalidated; restart it under the new configuration.  Bumping the
        # schedule token in _schedule_iteration drops the stale event.
        #
        # For checkpointed jobs a resize is a *migration*: the old worker set
        # writes a synchronized incremental checkpoint and the new set reads
        # the full state back before continuing — no iterations are lost, but
        # both transfers are charged as link-bytes.
        delay = 0.0
        if job.checkpoint_every:
            prefix = job.prefix_at(record.iterations_done)
            write_bytes = int(job.checkpoint_write_bytes(record.iterations_done, prefix))
            write_seconds = self._storage_seconds(job, write_bytes, now, old_workers,
                                                  kind="checkpoint")
            read_bytes = int(job.restore_read_bytes(record.iterations_done, prefix))
            read_seconds = self._storage_seconds(job, read_bytes, now + write_seconds, workers,
                                                 kind="restore")
            delay = write_seconds + read_seconds
            record.checkpoints_taken += 1
            record.checkpoint_seconds += write_seconds
            record.checkpoint_bytes_written += write_bytes
            record.restores += 1
            record.restore_seconds += read_seconds
            record.restore_bytes_read += read_bytes
            record.checkpoint_iteration = record.iterations_done
            record.samples_at_checkpoint = record.samples_processed
            self._trace(now, "migrate", job=job_name, seconds=delay)
        self._schedule_iteration(job, now + delay)

    # ------------------------------------------------------------------ #
    # Fault tolerance: failures, recovery, preemption
    # ------------------------------------------------------------------ #
    def _requeue_after_failure(self, job_name: str, now: float) -> None:
        """Re-queue a descheduled job, immediately or after capped backoff.

        Without :meth:`set_restart_backoff` this is the historical immediate
        ``_pending.append``.  With it, the job's k-th consecutive failure
        waits ``min(base * 2**(k-1), cap)`` seconds before a ``requeue``
        event re-admits it — flapping capacity stops thrashing the queue.
        """
        if self.restart_backoff is None:
            self._pending.append(job_name)
            return
        base, cap = self.restart_backoff
        attempt = self._restart_count.get(job_name, 0) + 1
        self._restart_count[job_name] = attempt
        delay = min(base * (2.0 ** (attempt - 1)), cap)
        self._push(now + delay, "requeue", (job_name,))
        self._trace(now, "restart_backoff", job=job_name, attempt=attempt, delay=delay)

    def _apply_requeue(self, job_name: str, now: float) -> None:
        """Admit a backoff-delayed job unless its state moved on meanwhile."""
        record = self.records[job_name]
        if (job_name in self._allocations or job_name in self._pending
                or job_name in self._paused or record.finish_time is not None):
            self._trace(now, "requeue_ignored", job=job_name)
            return
        self._pending.append(job_name)
        self._trace(now, "job_requeued", job=job_name)
        self._try_place(now)

    def _apply_gpu_failure(self, gpu_name: str, now: float) -> None:
        self._failed_gpus[gpu_name] = None
        self._free.pop(gpu_name, None)
        self._trace(now, "gpu_failure", gpu=gpu_name)
        victims = [name for name, gpus in self._allocations.items()
                   if any(gpu.name == gpu_name for gpu in gpus)]
        for job_name in victims:
            record = self.records[job_name]
            record.failures += 1
            self._deschedule(job_name, now)
            self._trace(now, "job_failed", job=job_name,
                        restart_iteration=record.iterations_done)
            self._requeue_after_failure(job_name, now)
        if victims:
            self._try_place(now)

    def _apply_domain_failure(self, label: str, cause: str,
                              gpus: Tuple[str, ...], now: float) -> None:
        """Atomically fail every GPU of a correlated domain (machine/rack).

        All GPUs are marked down *before* any victim is descheduled, so a
        job spanning several of them is descheduled exactly once and none
        of its surviving workers leak back into the free pool mid-event.
        """
        for gpu_name in gpus:
            self._failed_gpus[gpu_name] = None
            self._free.pop(gpu_name, None)
        self._trace(now, "domain_failure", label=label, cause=cause, gpus=list(gpus))
        down = frozenset(gpus)
        victims = [name for name, alloc in self._allocations.items()
                   if any(gpu.name in down for gpu in alloc)]
        for job_name in victims:
            record = self.records[job_name]
            record.failures += 1
            self._deschedule(job_name, now)
            self._trace(now, "job_failed", job=job_name,
                        restart_iteration=record.iterations_done, cause=label)
            self._requeue_after_failure(job_name, now)
        if victims:
            self._try_place(now)

    def _apply_domain_recovery(self, label: str, cause: str,
                               gpus: Tuple[str, ...], now: float) -> None:
        """Return a failed domain's GPUs to the pool (skipping any already back)."""
        restored: List[str] = []
        for gpu_name in gpus:
            if gpu_name not in self._failed_gpus:
                continue
            self._failed_gpus.pop(gpu_name, None)
            self._free[gpu_name] = next(g for g in self._all_gpus if g.name == gpu_name)
            restored.append(gpu_name)
        self._trace(now, "domain_recovered", label=label, cause=cause, gpus=restored)
        if restored:
            self._try_place(now)

    def _apply_link_capacity(self, resource: str, gbps: float, reason: str,
                             now: float) -> None:
        """Apply a mid-run capacity change to a shared resource's timeline.

        The timeline resweeps its open busy period byte-conservingly
        (:meth:`~repro.sim.resources.BaseResourceTimeline.set_capacity`);
        iteration completions already committed to the heap keep their
        quoted durations, and every iteration priced after this instant sees
        the new rate (the engine's memo-cache key includes per-link
        capacity, so stale steady-state entries cannot replay).
        """
        timeline = self.engine.resource_timeline(resource)
        timeline.set_capacity(now, gbps)
        kind = {"degraded": "link_degraded", "restored": "link_restored",
                "tor_down": "tor_failure", "tor_up": "tor_recovered"}[reason]
        self._trace(now, kind, resource=resource, gbps=gbps)

    def _apply_spot_notice(self, gpu_name: str, evict_at: float, now: float) -> None:
        """React to an eviction notice with a proactive checkpoint.

        The resident job snapshots its *completed* progress through the
        storage timeline immediately; once the write drains (before the
        eviction, if the notice window allows) it commits through the
        ordinary ``ckpt_done`` path and becomes the rollback target, so the
        resume loses only the notice-to-eviction window.  A notice landing
        on a job with nothing new since its last snapshot is a no-op.
        """
        victim = next((name for name, alloc in self._allocations.items()
                       if any(gpu.name == gpu_name for gpu in alloc)), None)
        self._trace(now, "spot_notice", gpu=gpu_name, evict_at=evict_at, job=victim)
        if victim is None:
            return
        job = self._jobs[victim]
        record = self.records[victim]
        if record.iterations_done <= record.checkpoint_iteration:
            return  # nothing new to snapshot
        last = self._last_proactive.get(victim)
        if last is not None and times_close(last, now):
            return  # another notice already snapshotted the job this instant
        self._last_proactive[victim] = now
        prefix = job.prefix_at(record.iterations_done)
        ckpt_bytes = int(job.checkpoint_write_bytes(record.iterations_done, prefix))
        seconds = self._storage_seconds(job, ckpt_bytes, now, self._allocations[victim],
                                        kind="checkpoint")
        self._push(now + seconds, "ckpt_done",
                   (victim, self._placement_epoch.get(victim, 0),
                    record.iterations_done, record.samples_processed,
                    seconds, ckpt_bytes))
        self._trace(now, "proactive_checkpoint", job=victim,
                    iteration=record.iterations_done, seconds=seconds,
                    num_bytes=ckpt_bytes)

    def _apply_spot_eviction(self, gpu_name: str, now: float) -> None:
        """Reclaim a spot GPU: like a failure, but counted as an eviction."""
        self._failed_gpus[gpu_name] = None
        self._free.pop(gpu_name, None)
        self._trace(now, "spot_evicted", gpu=gpu_name)
        victims = [name for name, alloc in self._allocations.items()
                   if any(gpu.name == gpu_name for gpu in alloc)]
        for job_name in victims:
            record = self.records[job_name]
            record.evictions += 1
            self._deschedule(job_name, now)
            self._trace(now, "job_evicted", job=job_name,
                        restart_iteration=record.iterations_done, gpu=gpu_name)
            self._requeue_after_failure(job_name, now)
        if victims:
            self._try_place(now)

    def _apply_gpu_recovery(self, gpu_name: str, now: float) -> None:
        if gpu_name not in self._failed_gpus:
            self._trace(now, "gpu_recover_ignored", gpu=gpu_name)
            return
        self._failed_gpus.pop(gpu_name, None)
        gpu = next(g for g in self._all_gpus if g.name == gpu_name)
        self._free[gpu_name] = gpu
        self._trace(now, "gpu_recovered", gpu=gpu_name)
        self._try_place(now)

    def _apply_preemption(self, job_name: str, now: float) -> None:
        record = self.records.get(job_name)
        if record is None or job_name not in self._allocations:
            self._trace(now, "preempt_ignored", job=job_name)
            return
        record.preemptions += 1
        self._deschedule(job_name, now)
        self._paused[job_name] = None
        self._trace(now, "job_preempted", job=job_name,
                    restart_iteration=record.iterations_done)
        self._try_place(now)

    def _apply_resume(self, job_name: str, now: float) -> None:
        if job_name not in self._paused:
            self._trace(now, "resume_ignored", job=job_name)
            return
        self._paused.pop(job_name, None)
        self._pending.append(job_name)
        self._trace(now, "job_resumed", job=job_name)
        self._try_place(now)

"""``repro.sim`` — analytical cost model, cluster topology and schedules.

Substitutes the paper's GPU testbed: per-iteration forward/backward/
synchronization times are derived from the model's layer-module structure,
ring all-reduce over a leaf–spine cluster graph, and the scheduling policies
compared in Figure 10.
"""

from .allreduce import AllReduceModel
from .cluster import Cluster, ClusterSpec, GPUDevice, Machine, paper_testbed_cluster, single_node_cluster
from .cost_model import CostModel, GPUSpec, IterationBreakdown
from .timeline import IterationTimeline, SchedulePolicy, TimelineSimulator

__all__ = [
    "CostModel",
    "GPUSpec",
    "IterationBreakdown",
    "Cluster",
    "ClusterSpec",
    "Machine",
    "GPUDevice",
    "paper_testbed_cluster",
    "single_node_cluster",
    "AllReduceModel",
    "SchedulePolicy",
    "IterationTimeline",
    "TimelineSimulator",
]

"""``repro.sim`` — cost models, cluster topology and cluster-level simulation.

Substitutes the paper's GPU testbed.  Two simulation paths coexist:

* the closed-form :class:`CostModel` / :class:`TimelineSimulator` — fast
  analytical accounting for single homogeneous jobs (the default trainer
  path), and
* the discrete-event :class:`EventDrivenEngine` / :class:`ClusterScheduler`
  — per-GPU compute events and per-link communication events over the
  cluster graph, expressing stragglers, heterogeneous GPUs, multi-job
  sharing and elastic worker membership.

The closed-form path is validated against the engine to within 5% on the
single-job configurations (see ``EventDrivenEngine.closed_form_deviation``).
"""

from .allreduce import AllReduceModel
from .cluster import Cluster, ClusterSpec, GPUDevice, Machine, paper_testbed_cluster, single_node_cluster
from .cost_model import CostModel, GPUSpec, IterationBreakdown
from .engine import EngineIterationResult, EventDrivenEngine, EventQueue, SimEvent
from .scheduler import ClusterScheduler, JobRecord, SchedulerResult, SimJob
from .timeline import IterationTimeline, SchedulePolicy, TimelineSimulator

__all__ = [
    "CostModel",
    "GPUSpec",
    "IterationBreakdown",
    "Cluster",
    "ClusterSpec",
    "Machine",
    "GPUDevice",
    "paper_testbed_cluster",
    "single_node_cluster",
    "AllReduceModel",
    "SchedulePolicy",
    "IterationTimeline",
    "TimelineSimulator",
    "EventDrivenEngine",
    "EngineIterationResult",
    "EventQueue",
    "SimEvent",
    "ClusterScheduler",
    "SimJob",
    "JobRecord",
    "SchedulerResult",
]

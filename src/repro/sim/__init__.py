"""``repro.sim`` — cost models, cluster topology and cluster-level simulation.

Substitutes the paper's GPU testbed.  Two simulation paths coexist:

* the closed-form :class:`CostModel` / :class:`TimelineSimulator` — fast
  analytical accounting for single homogeneous jobs (the default trainer
  path), and
* the discrete-event :class:`EventDrivenEngine` / :class:`ClusterScheduler`
  — per-GPU compute events and per-link communication events over the
  cluster graph, expressing stragglers, heterogeneous GPUs, multi-job
  sharing and elastic worker membership.

Cross-job contention is a first-class concept: clusters carry named
finite-bandwidth :class:`SharedResource` s (the leaf–spine fabric —
optionally broken into per-ToR uplinks plus a core — and the checkpoint
storage target) whose per-resource timelines queue concurrent jobs'
all-reduce buckets and checkpoint transfers under a pluggable discipline:
first-fit FIFO serialization (:class:`ResourceTimeline`) or processor
sharing (:class:`FairShareTimeline`), selected by ``policy`` per resource.
:class:`TrainerJob` runs a *real* trainer inside the simulated cluster, and
:func:`run_scenario` replays a plain-JSON scenario to a deterministic
timeline/makespan report (the ``repro sim run`` CLI).

Robustness scenarios come from the fault model (:mod:`repro.sim.faults`,
``docs/faults.md``): correlated failure domains (machine/rack/ToR), mid-run
link degradation with byte-conserving re-quotes, and spot capacity whose
eviction notices trigger proactive checkpoints — driven by explicit scenario
event lists or a seeded, bit-reproducible stochastic generator.

Two performance layers keep the event backend fast (``docs/performance.md``):
the engine memoizes the fully-resolved timing of every steady-state
iteration and **fast-forwards** identical ones in O(1) — bit-identical to
the event-by-event path, invalidated by any state transition — and
:func:`run_sweep` (``repro sim sweep``) fans a scenario parameter grid (e.g.
``core_gbps`` oversubscription studies) across ``multiprocessing`` workers
with deterministic per-cell seeds and a worker-count-independent merged
result table.

The closed-form path is validated against the engine to within 5% on the
single-job configurations (see ``EventDrivenEngine.closed_form_deviation``).

Correctness tooling (``docs/correctness.md``): SimLint (``tools/simlint``)
statically forbids determinism-breaking code patterns, and SimSan
(:class:`SimSanitizer`, enabled via ``EventDrivenEngine(sanitize=True)`` or
``REPRO_SIMSAN=1``) checks the engine's runtime invariants — causality,
non-negative durations, monotone ``busy_until``, byte and fair-share rate
conservation, fast-forward/live agreement — raising :class:`SanitizerError`
with event provenance when one breaks.

Observability (``docs/observability.md``): SimScope (:mod:`repro.sim.observe`,
enabled per scenario via ``"observe": true`` or the ``repro sim run
--trace-out/--metrics-out`` flags) attaches a :class:`SimObserver` that
records a structured sim-time trace (Chrome ``trace_event`` JSON for
Perfetto) and metric timelines (:class:`MetricsRegistry`) without perturbing
the simulation, and :func:`profile_scenario` (``repro sim profile``) ranks
the simulator's own hot functions under ``cProfile``.
"""

from .allreduce import AllReduceModel
from .cluster import Cluster, ClusterSpec, GPUDevice, Machine, paper_testbed_cluster, single_node_cluster
from .cost_model import CostModel, GPUSpec, IterationBreakdown
from .engine import EngineIterationResult, EventDrivenEngine, EventQueue, SimEvent
from .resources import (
    BaseResourceTimeline,
    FairShareTimeline,
    ResourceOccupancy,
    ResourcePool,
    ResourceTimeline,
    SharedResource,
    build_timeline,
)
from .faults import FaultEvent, FaultPlan, apply_fault_plan, generate_fault_events, parse_faults
from .sanitizer import (
    ByteConservationViolation,
    CausalityViolation,
    FastForwardDivergence,
    MonotonicityViolation,
    NegativeDurationViolation,
    RateConservationViolation,
    SanitizerError,
    SimSanitizer,
)
from .observe import (
    MetricSeries,
    MetricsRegistry,
    SimObserver,
    Tracer,
    check_metrics,
    check_trace,
    diff_profiles,
    profile_scenario,
)
from .scenario import build_scenario, preview_faults, run_scenario
from .scheduler import ClusterScheduler, JobRecord, SchedulerResult, SimJob
from .simtime import TIME_EPS, time_geq, time_leq, times_close
from .sweep import build_cells, expand_grid, run_sweep, shutdown_pool
from .timeline import IterationTimeline, SchedulePolicy, TimelineSimulator
from .trainer_job import TrainerJob

__all__ = [
    "CostModel",
    "GPUSpec",
    "IterationBreakdown",
    "Cluster",
    "ClusterSpec",
    "Machine",
    "GPUDevice",
    "paper_testbed_cluster",
    "single_node_cluster",
    "AllReduceModel",
    "SchedulePolicy",
    "IterationTimeline",
    "TimelineSimulator",
    "EventDrivenEngine",
    "EngineIterationResult",
    "EventQueue",
    "SimEvent",
    "ClusterScheduler",
    "SimJob",
    "TrainerJob",
    "JobRecord",
    "SchedulerResult",
    "SharedResource",
    "ResourceOccupancy",
    "BaseResourceTimeline",
    "ResourceTimeline",
    "FairShareTimeline",
    "ResourcePool",
    "build_timeline",
    "build_scenario",
    "run_scenario",
    "preview_faults",
    "FaultEvent",
    "FaultPlan",
    "parse_faults",
    "generate_fault_events",
    "apply_fault_plan",
    "build_cells",
    "expand_grid",
    "run_sweep",
    "shutdown_pool",
    "SimSanitizer",
    "SanitizerError",
    "CausalityViolation",
    "NegativeDurationViolation",
    "MonotonicityViolation",
    "ByteConservationViolation",
    "RateConservationViolation",
    "FastForwardDivergence",
    "SimObserver",
    "Tracer",
    "MetricSeries",
    "MetricsRegistry",
    "check_trace",
    "check_metrics",
    "profile_scenario",
    "diff_profiles",
    "TIME_EPS",
    "times_close",
    "time_leq",
    "time_geq",
]

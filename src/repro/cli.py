"""Command-line interface for the Egeria reproduction.

Four subcommands mirror the typical workflows:

``python -m repro.cli list``
    Show the seven Table 1 workloads and the systems that can train them.

``python -m repro.cli train --workload resnet56_cifar10 --system egeria``
    Train one workload with one system and print the per-epoch history plus
    (for Egeria) the freezing timeline.

``python -m repro.cli compare --workload resnet56_cifar10``
    Run vanilla + Egeria (or any set of systems) on one workload and print the
    TTA-speedup comparison rows, i.e. one row of Table 1.

``python -m repro.cli ckpt save|restore|inspect --dir CKPT_DIR ...``
    Freezing-aware checkpointing: ``save`` trains with periodic full-state
    snapshots into an atomic directory store, ``inspect`` prints each
    checkpoint's (incremental) byte footprint, and ``restore`` resumes
    training bit-exactly from the latest (or a named) checkpoint.

``python -m repro.cli sim run scenario.json [--out result.json] [--policy fair]``
    Replay a cluster scenario (jobs, shared link/storage resources —
    optionally per-ToR fabric links — failures, resizes) through the
    event-driven simulator and emit the deterministic timeline/makespan
    report as JSON (including the engine's fast-forward perf counters).
    ``--policy`` overrides the scheduling discipline (first-fit FIFO vs
    processor-sharing fair-share) of every resource the scenario does not
    pin explicitly.  ``--trace-out trace.json`` additionally writes the
    SimScope sim-time trace (Chrome ``trace_event`` JSON, one Perfetto
    track per job and per resource) and ``--metrics-out metrics.json``
    the metric time-series (utilization, queue depths, link throughput,
    frozen fractions; CSV when the path ends in ``.csv``) — both without
    perturbing the simulation (see ``docs/observability.md``).

``python -m repro.cli sim profile scenario.json [--top 25] [--sort tottime]``
    Run a scenario under ``cProfile`` and print the ranked hot functions
    plus wall-clock throughput (events/s, iterations/s); ``--out`` writes
    the machine-readable report for regression tracking.

``python -m repro.cli sim faults scenario.json [--out plan.json]``
    Resolve and print a scenario's fault plan (``"faults"`` key) without
    running it: validates every event reference against the topology and
    expands the seeded stochastic stream into its concrete, bit-reproducible
    events (see ``docs/faults.md``).

``python -m repro.cli sim sweep sweep.json [--workers 4] [--out result.json]``
    Expand a sweep spec (base scenario + parameter grid, e.g. a
    ``cluster.core_gbps`` oversubscription study) into independent cells and
    run them across a multiprocessing pool.  The merged result table is
    identical no matter how many workers ran it — parallelism only buys
    wall-clock time.

``python -m repro.cli lint [paths...] [--format json] [--docs]``
    The repository's correctness gates from one dispatcher: by default runs
    SimLint (``tools/simlint``), the determinism lint pass over the
    simulator core (exit 1 on findings); ``--docs`` runs the documentation
    gate (``tools/check_docs.py``) instead.  ``--list-rules`` prints the
    SIM rule catalog.  See ``docs/correctness.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .ckpt import CheckpointManager, DirectoryBackend
from .experiments import (
    SYSTEMS,
    available_workloads,
    build_trainer,
    build_workload,
    compare_systems,
    format_rows,
    run_trainer,
)
from .sim import diff_profiles, preview_faults, profile_scenario, run_scenario, run_sweep

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Egeria: knowledge-guided DNN layer freezing (EuroSys 2023)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available workloads and systems")

    train = subparsers.add_parser("train", help="train one workload with one system")
    train.add_argument("--workload", required=True, choices=available_workloads())
    train.add_argument("--system", default="egeria", choices=list(SYSTEMS))
    train.add_argument("--scale", default="tiny", choices=["tiny", "small"])
    train.add_argument("--epochs", type=int, default=None, help="override the workload's epoch count")
    train.add_argument("--seed", type=int, default=0)

    compare = subparsers.add_parser("compare", help="compare systems on one workload (Table 1 row)")
    compare.add_argument("--workload", required=True, choices=available_workloads())
    compare.add_argument("--systems", nargs="+", default=["vanilla", "egeria"],
                         choices=list(SYSTEMS))
    compare.add_argument("--scale", default="tiny", choices=["tiny", "small"])
    compare.add_argument("--seed", type=int, default=0)

    ckpt = subparsers.add_parser("ckpt", help="checkpoint management (save/restore/inspect)")
    ckpt_sub = ckpt.add_subparsers(dest="ckpt_command", required=True)

    def add_training_args(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--workload", required=True, choices=available_workloads())
        sub.add_argument("--system", default="egeria", choices=["vanilla", "egeria"])
        sub.add_argument("--scale", default="tiny", choices=["tiny", "small"])
        sub.add_argument("--epochs", type=int, default=None, help="override the workload's epoch count")
        sub.add_argument("--seed", type=int, default=0)

    save = ckpt_sub.add_parser("save", help="train with periodic full-state checkpoints")
    add_training_args(save)
    save.add_argument("--dir", required=True, help="checkpoint directory (atomic-write store)")
    save.add_argument("--every", type=int, default=1, help="checkpoint every N epochs")

    restore = ckpt_sub.add_parser("restore", help="resume training bit-exactly from a checkpoint")
    add_training_args(restore)
    restore.add_argument("--dir", required=True)
    restore.add_argument("--id", default=None, help="checkpoint id (default: latest)")
    restore.add_argument("--every", type=int, default=1,
                         help="checkpoint cadence (epochs) for the resumed run")

    inspect = ckpt_sub.add_parser("inspect", help="print the stored checkpoints and their byte footprint")
    inspect.add_argument("--dir", required=True)
    inspect.add_argument("--id", default=None, help="inspect one checkpoint (default: all)")

    sim = subparsers.add_parser("sim", help="cluster-simulation utilities")
    sim_sub = sim.add_subparsers(dest="sim_command", required=True)
    sim_run = sim_sub.add_parser("run", help="replay a scenario JSON to a timeline/makespan report")
    sim_run.add_argument("scenario", help="path to the scenario JSON file")
    sim_run.add_argument("--out", default=None, help="write the report here instead of stdout")
    # Removed flag, kept hidden so old invocations get a pointed error
    # (instead of argparse's generic "unrecognized arguments") in _cmd_sim.
    sim_run.add_argument("--trace", action="store_true", help=argparse.SUPPRESS)
    sim_run.add_argument("--trace-out", default=None, metavar="TRACE_JSON",
                         help="write the sim-time Chrome trace_event JSON here "
                              "(view at https://ui.perfetto.dev); implies observation")
    sim_run.add_argument("--metrics-out", default=None, metavar="METRICS_FILE",
                         help="write the full metric time-series here (JSON, or CSV "
                              "when the path ends in .csv); implies observation")
    sim_run.add_argument("--policy", default=None, choices=["fifo", "fair"],
                         help="override the scheduling discipline of every shared resource "
                              "the scenario does not pin explicitly (fifo: first-fit "
                              "serialization, fair: processor sharing)")
    sim_profile = sim_sub.add_parser(
        "profile", help="run a scenario under cProfile and rank the hot functions")
    sim_profile.add_argument("scenario", help="path to the scenario JSON file")
    sim_profile.add_argument("--out", default=None,
                             help="write the machine-readable report here instead of stdout")
    sim_profile.add_argument("--top", type=int, default=25,
                             help="number of hot functions to report (default 25)")
    sim_profile.add_argument("--sort", default="cumulative",
                             choices=["cumulative", "tottime", "calls"],
                             help="ranking column (default cumulative)")
    sim_profile.add_argument("--baseline", default=None, metavar="OLD_REPORT",
                             help="diff against an earlier profile report (a --out file): "
                                  "prints per-function regressions ranked by cumtime delta, "
                                  "so before/after runs of an optimization are one command")
    sim_profile.add_argument("--policy", default=None, choices=["fifo", "fair"],
                             help="override the scheduling discipline, as for 'sim run'")
    sim_faults = sim_sub.add_parser(
        "faults", help="resolve and print a scenario's fault plan without running it "
                       "(expands the seeded stochastic stream into concrete events)")
    sim_faults.add_argument("scenario", help="path to the scenario JSON file")
    sim_faults.add_argument("--out", default=None,
                            help="write the resolved plan here instead of stdout")
    sim_faults.add_argument("--policy", default=None, choices=["fifo", "fair"],
                            help="override the scheduling discipline, as for 'sim run'")
    sim_sweep = sim_sub.add_parser("sweep", help="run a scenario parameter grid across workers")
    sim_sweep.add_argument("sweep", help="path to the sweep JSON file (scenario + grid)")
    sim_sweep.add_argument("--workers", type=int, default=None,
                           help="worker processes (default: the spec's 'workers', else 1); "
                                "the merged output is identical at any worker count")
    sim_sweep.add_argument("--out", default=None, help="write the merged table here instead of stdout")

    lint = subparsers.add_parser(
        "lint", help="repository correctness gates (SimLint determinism rules, docs checks)")
    lint.add_argument("paths", nargs="*", default=None,
                      help="files or directories to lint (default: the repo's src/)")
    lint.add_argument("--format", choices=["text", "json"], default="text",
                      help="SimLint output format")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the SIM rule catalog and exit")
    lint.add_argument("--docs", action="store_true",
                      help="run the documentation gate (tools/check_docs.py: markdown "
                           "link check + README quickstart execution) instead of SimLint")
    return parser


def _cmd_list() -> int:
    print("Workloads (Table 1):")
    for name in available_workloads():
        workload = build_workload(name, scale="tiny")
        print(f"  {name:<26} {workload.paper_model:<26} "
              f"metric={workload.task.metric_name:<11} paper speedup={workload.paper_tta_speedup:.0%}")
    print("\nSystems:")
    for system in SYSTEMS:
        print(f"  {system}")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    workload = build_workload(args.workload, scale=args.scale, seed=args.seed)
    result = run_trainer(args.system, workload, num_epochs=args.epochs)
    history = result["history"]
    print(f"{args.system} on {args.workload} ({args.scale} scale)")
    print(f"{'epoch':>5} {'loss':>8} {workload.task.metric_name:>10} {'frozen%':>8} {'sim-time':>10}")
    for record in history.records:
        print(f"{record.epoch:>5} {record.train_loss:>8.4f} {record.metric:>10.4f} "
              f"{record.frozen_fraction:>8.0%} {record.simulated_time:>10.4f}")
    if result.get("timeline"):
        print("\nFreezing timeline:")
        for event in result["timeline"]:
            print(f"  iter {event['iteration']:>5}: {event['action']:<9} {event['module']}")
    print(f"\nFinal {workload.task.metric_name}: {result['final_metric']:.4f}  "
          f"simulated time: {result['simulated_time']:.4f}s")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    workload = build_workload(args.workload, scale=args.scale, seed=args.seed)
    systems = list(dict.fromkeys(["vanilla"] + list(args.systems)))  # vanilla is the TTA anchor
    rows = compare_systems(workload, systems=systems)
    print(format_rows(rows))
    return 0


def _print_history_tail(trainer, metric_name: str, num_rows: int = 5) -> None:
    print(f"{'epoch':>5} {'loss':>8} {metric_name:>10} {'frozen%':>8} {'sim-time':>10}")
    for record in trainer.history.records[-num_rows:]:
        print(f"{record.epoch:>5} {record.train_loss:>8.4f} {record.metric:>10.4f} "
              f"{record.frozen_fraction:>8.0%} {record.simulated_time:>10.4f}")


def _cmd_ckpt(args: argparse.Namespace) -> int:
    if args.ckpt_command == "inspect":
        manager = CheckpointManager(DirectoryBackend(args.dir))
        rows = [manager.inspect(args.id)] if args.id else manager.history()
        if not rows:
            print(f"no checkpoints in {args.dir}")
            return 1
        print(f"{'checkpoint':<18} {'step':>6} {'epoch':>6} {'prefix':>7} "
              f"{'payload':>12} {'written':>12} {'tensors':>9}")
        for row in rows:
            meta = row.get("meta", {})
            print(f"{row['checkpoint_id']:<18} {row['step']:>6} {meta.get('epoch', '?'):>6} "
                  f"{meta.get('frozen_prefix', '?'):>7} {row['payload_bytes']:>12} "
                  f"{row['bytes_written']:>12} {row['num_new_tensors']:>4}/{row['num_tensors']:<4}")
        return 0

    workload = build_workload(args.workload, scale=args.scale, seed=args.seed)
    trainer = build_trainer(args.system, workload)
    manager = CheckpointManager(DirectoryBackend(args.dir))
    num_epochs = args.epochs or workload.num_epochs

    if args.ckpt_command == "save":
        trainer.configure_checkpointing(manager, checkpoint_every=args.every)
        trainer.fit(num_epochs)
        print(f"{args.system} on {args.workload}: trained {num_epochs} epochs, "
              f"{len(manager.list_checkpoints())} checkpoints in {args.dir}")
        _print_history_tail(trainer, workload.task.metric_name)
        for info in manager.history():
            print(f"  {info['checkpoint_id']}  step {info['step']:>5}  "
                  f"prefix {info['meta'].get('frozen_prefix', 0)}  wrote {info['bytes_written']} bytes")
    else:  # restore
        checkpoint = manager.inspect(args.id)
        saved_name = checkpoint.get("meta", {}).get("name")
        if saved_name is not None and saved_name != trainer.name:
            print(f"error: checkpoint was saved by system {saved_name!r}, "
                  f"requested --system {args.system!r}", file=sys.stderr)
            return 2
        trainer.configure_checkpointing(manager, checkpoint_every=args.every)
        trainer.restore(args.id)
        resumed_epoch = trainer._next_epoch
        if resumed_epoch >= num_epochs:
            print(f"checkpoint already covers epoch {resumed_epoch - 1}; nothing to resume "
                  f"(target {num_epochs} epochs)")
        else:
            trainer.fit(num_epochs)
            print(f"resumed {args.system} on {args.workload} from epoch {resumed_epoch} "
                  f"to {num_epochs} (bit-exact continuation)")
        _print_history_tail(trainer, workload.task.metric_name)
    if hasattr(trainer, "close"):
        trainer.close()
    return 0


def _cmd_sim(args: argparse.Namespace) -> int:
    if args.sim_command == "sweep":
        return _cmd_sim_sweep(args)
    if args.sim_command == "profile":
        return _cmd_sim_profile(args)
    if args.sim_command == "faults":
        return _cmd_sim_faults(args)
    if args.trace:
        print("error: --trace was removed; use --trace-out TRACE_JSON to write the "
              "structured SimScope trace (Perfetto-viewable, one track per job and "
              "per resource)", file=sys.stderr)
        return 2
    try:
        report = run_scenario(args.scenario,
                              default_policy=args.policy,
                              trace_out=args.trace_out, metrics_out=args.metrics_out)
    except (OSError, json.JSONDecodeError, KeyError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    payload = json.dumps(report, indent=2, sort_keys=True)
    if args.trace_out:
        print(f"wrote {args.trace_out} (open at https://ui.perfetto.dev)")
    if args.metrics_out:
        print(f"wrote {args.metrics_out}")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        perf = report.get("perf", {})
        print(f"wrote {args.out}: makespan {report['makespan']:.6f}s, "
              f"{report['num_jobs']} jobs, {report['num_trace_events']} events, "
              f"{perf.get('iterations_fast_forwarded', 0)} iterations fast-forwarded "
              f"({perf.get('cache_hit_rate', 0.0):.0%} cache hit rate)")
    else:
        print(payload)
    return 0


def _cmd_sim_faults(args: argparse.Namespace) -> int:
    try:
        plan = preview_faults(args.scenario, default_policy=args.policy)
    except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    payload = json.dumps(plan, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        print(f"wrote {args.out}: {plan['num_events']} fault events")
    else:
        print(payload)
    return 0


def _cmd_sim_profile(args: argparse.Namespace) -> int:
    try:
        report = profile_scenario(args.scenario, top=args.top, sort=args.sort,
                                  default_policy=args.policy)
    except (OSError, json.JSONDecodeError, KeyError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    diff = None
    if getattr(args, "baseline", None):
        try:
            with open(args.baseline, "r", encoding="utf-8") as handle:
                baseline = json.load(handle)
            diff = diff_profiles(baseline, report)
        except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        report["baseline_diff"] = diff
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}")
    perf = report.get("perf", {})
    print(f"{args.scenario}: {report['wall_seconds']:.3f}s wall, "
          f"{report['events_per_second']:.0f} events/s, "
          f"{report['iterations_per_second']:.0f} iterations/s, "
          f"makespan {report['makespan']:.6f}s "
          f"({perf.get('cache_hit_rate', 0.0):.0%} cache hit rate)")
    print(f"\ntop {len(report['hot_functions'])} functions by {report['sort']}:")
    print(f"{'calls':>9} {'tottime':>9} {'cumtime':>9}  function")
    for row in report["hot_functions"]:
        print(f"{row['calls']:>9} {row['tottime']:>9.4f} {row['cumtime']:>9.4f}  "
              f"{row['function']}")
    if diff is not None:
        ratio = diff["wall_ratio"]
        print(f"\nvs baseline {args.baseline}: wall {diff['baseline_wall_seconds']:.3f}s "
              f"-> {diff['wall_seconds']:.3f}s "
              f"({'n/a' if ratio is None else format(ratio, '.2f') + 'x'})")
        regressions = [row for row in diff["functions"] if row["delta_cumtime"] > 0]
        improvements = len(diff["functions"]) - len(regressions)
        if regressions:
            print(f"{len(regressions)} function(s) regressed "
                  f"({improvements} improved or unchanged):")
            print(f"{'Δcumtime':>9} {'Δtottime':>9} {'Δcalls':>9}  function")
            for row in regressions[:args.top]:
                print(f"{row['delta_cumtime']:>+9.4f} {row['delta_tottime']:>+9.4f} "
                      f"{row['delta_calls']:>+9} {' ' if row['status'] == 'common' else '*'} "
                      f"{row['function']}")
        else:
            print(f"no per-function regressions ({improvements} improved or unchanged)")
    return 0


def _cmd_sim_sweep(args: argparse.Namespace) -> int:
    try:
        merged = run_sweep(args.sweep, workers=args.workers)
    except (OSError, json.JSONDecodeError, KeyError, ValueError, IndexError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    payload = json.dumps(merged, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        print(f"wrote {args.out}: {merged['num_cells']} cells")
        for row in merged["cells"]:
            params = ", ".join(f"{key}={value}" for key, value in row["params"].items())
            # Per-cell engine perf counters are sim-derived, so this summary
            # is identical no matter how many workers ran the sweep.
            perf = row.get("perf", {})
            print(f"  [{row['index']}] {params}: makespan {row['makespan']:.6f}s, "
                  f"{perf.get('events_processed', 0)} events, "
                  f"{perf.get('iterations_fast_forwarded', 0)} fast-forwarded "
                  f"({perf.get('cache_hit_rate', 0.0):.0%} cache hit rate)")
    else:
        print(payload)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Dispatch to the shared ``tools/`` entry points (SimLint / docs gate).

    The ``tools`` package lives at the repository root, next to ``src/`` —
    it is CI tooling, not part of the installable library — so the root is
    put on ``sys.path`` before importing it.
    """
    import pathlib

    root = pathlib.Path(__file__).resolve().parents[2]
    if not (root / "tools").is_dir():
        print(f"error: cannot find the repository's tools/ directory near {root}",
              file=sys.stderr)
        return 2
    if str(root) not in sys.path:
        sys.path.insert(0, str(root))
    if args.docs:
        from tools.check_docs import main as docs_main

        return docs_main(["--root", str(root)])
    from tools.simlint.runner import main as simlint_main

    lint_args: List[str] = ["--format", args.format]
    if args.list_rules:
        lint_args.append("--list-rules")
    lint_args.extend(args.paths if args.paths else [str(root / "src")])
    return simlint_main(lint_args)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "train":
        return _cmd_train(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "ckpt":
        return _cmd_ckpt(args)
    if args.command == "sim":
        return _cmd_sim(args)
    if args.command == "lint":
        return _cmd_lint(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())

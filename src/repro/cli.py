"""Command-line interface for the Egeria reproduction.

Three subcommands mirror the typical workflows:

``python -m repro.cli list``
    Show the seven Table 1 workloads and the systems that can train them.

``python -m repro.cli train --workload resnet56_cifar10 --system egeria``
    Train one workload with one system and print the per-epoch history plus
    (for Egeria) the freezing timeline.

``python -m repro.cli compare --workload resnet56_cifar10``
    Run vanilla + Egeria (or any set of systems) on one workload and print the
    TTA-speedup comparison rows, i.e. one row of Table 1.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .experiments import (
    SYSTEMS,
    available_workloads,
    build_workload,
    compare_systems,
    format_rows,
    run_trainer,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Egeria: knowledge-guided DNN layer freezing (EuroSys 2023)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available workloads and systems")

    train = subparsers.add_parser("train", help="train one workload with one system")
    train.add_argument("--workload", required=True, choices=available_workloads())
    train.add_argument("--system", default="egeria", choices=list(SYSTEMS))
    train.add_argument("--scale", default="tiny", choices=["tiny", "small"])
    train.add_argument("--epochs", type=int, default=None, help="override the workload's epoch count")
    train.add_argument("--seed", type=int, default=0)

    compare = subparsers.add_parser("compare", help="compare systems on one workload (Table 1 row)")
    compare.add_argument("--workload", required=True, choices=available_workloads())
    compare.add_argument("--systems", nargs="+", default=["vanilla", "egeria"],
                         choices=list(SYSTEMS))
    compare.add_argument("--scale", default="tiny", choices=["tiny", "small"])
    compare.add_argument("--seed", type=int, default=0)
    return parser


def _cmd_list() -> int:
    print("Workloads (Table 1):")
    for name in available_workloads():
        workload = build_workload(name, scale="tiny")
        print(f"  {name:<26} {workload.paper_model:<26} "
              f"metric={workload.task.metric_name:<11} paper speedup={workload.paper_tta_speedup:.0%}")
    print("\nSystems:")
    for system in SYSTEMS:
        print(f"  {system}")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    workload = build_workload(args.workload, scale=args.scale, seed=args.seed)
    result = run_trainer(args.system, workload, num_epochs=args.epochs)
    history = result["history"]
    print(f"{args.system} on {args.workload} ({args.scale} scale)")
    print(f"{'epoch':>5} {'loss':>8} {workload.task.metric_name:>10} {'frozen%':>8} {'sim-time':>10}")
    for record in history.records:
        print(f"{record.epoch:>5} {record.train_loss:>8.4f} {record.metric:>10.4f} "
              f"{record.frozen_fraction:>8.0%} {record.simulated_time:>10.4f}")
    if result.get("timeline"):
        print("\nFreezing timeline:")
        for event in result["timeline"]:
            print(f"  iter {event['iteration']:>5}: {event['action']:<9} {event['module']}")
    print(f"\nFinal {workload.task.metric_name}: {result['final_metric']:.4f}  "
          f"simulated time: {result['simulated_time']:.4f}s")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    workload = build_workload(args.workload, scale=args.scale, seed=args.seed)
    systems = list(dict.fromkeys(["vanilla"] + list(args.systems)))  # vanilla is the TTA anchor
    rows = compare_systems(workload, systems=systems)
    print(format_rows(rows))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "train":
        return _cmd_train(args)
    if args.command == "compare":
        return _cmd_compare(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())

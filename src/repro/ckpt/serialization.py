"""Serialization helpers for the checkpoint subsystem.

A training-state snapshot (see :meth:`repro.core.trainer.BaseTrainer.state_dict`)
is a nested structure of dicts/lists whose leaves are either JSON-compatible
scalars or numpy arrays.  The checkpoint layer splits that structure into

* a **manifest tree** — the same structure with every array replaced by a
  ``{"__tensor__": <digest>}`` placeholder, serializable as plain JSON; and
* a **tensor table** — ``digest -> ndarray`` for the arrays, content-addressed
  by a SHA-1 over dtype, shape and raw bytes.

Content addressing is what makes checkpoints *freezing-aware*: the tensors of
a frozen layer-module prefix are bit-identical between consecutive snapshots,
hash to the same digest, and are therefore written to the backend exactly
once.  As Egeria's frozen prefix advances, the per-checkpoint write volume
shrinks to the active suffix (plus small bookkeeping), mirroring how
iteration time shrinks in the paper's Figure 9 breakdown.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Tuple

import numpy as np

__all__ = ["TENSOR_KEY", "tensor_digest", "split_state", "join_state", "jsonify_scalars"]

#: Placeholder key marking a tensor reference inside a manifest tree.
TENSOR_KEY = "__tensor__"


def tensor_digest(array: np.ndarray) -> str:
    """Content digest of an array (dtype + shape + raw bytes)."""
    array = np.ascontiguousarray(array)
    digest = hashlib.sha1()
    digest.update(array.dtype.str.encode("ascii"))
    digest.update(repr(array.shape).encode("ascii"))
    digest.update(array.tobytes())
    return digest.hexdigest()


def jsonify_scalars(value: Any) -> Any:
    """Convert numpy scalars/bools nested in plain data to Python natives."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, dict):
        return {str(k): jsonify_scalars(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonify_scalars(v) for v in value]
    return value


def split_state(state: Any) -> Tuple[Any, Dict[str, np.ndarray]]:
    """Split a nested state into a JSON-able manifest tree and a tensor table.

    Returns ``(tree, tensors)`` where every ndarray leaf of ``state`` appears
    in ``tree`` as ``{"__tensor__": digest}`` and in ``tensors`` under that
    digest.  Identical arrays (same content) share one table entry.
    """
    tensors: Dict[str, np.ndarray] = {}

    def walk(value: Any) -> Any:
        if isinstance(value, np.ndarray):
            digest = tensor_digest(value)
            if digest not in tensors:
                tensors[digest] = np.array(value, copy=True)
            return {TENSOR_KEY: digest}
        if isinstance(value, np.generic):
            return value.item()
        if isinstance(value, dict):
            return {str(k): walk(v) for k, v in value.items()}
        if isinstance(value, (list, tuple)):
            return [walk(v) for v in value]
        if value is None or isinstance(value, (bool, int, float, str)):
            return value
        raise TypeError(f"state leaf of type {type(value).__name__} is not checkpointable")

    return walk(state), tensors


def join_state(tree: Any, read_tensor) -> Any:
    """Inverse of :func:`split_state`: resolve placeholders via ``read_tensor``."""
    if isinstance(tree, dict):
        if set(tree.keys()) == {TENSOR_KEY}:
            return read_tensor(tree[TENSOR_KEY])
        return {k: join_state(v, read_tensor) for k, v in tree.items()}
    if isinstance(tree, list):
        return [join_state(v, read_tensor) for v in tree]
    return tree

"""``repro.ckpt`` — freezing-aware checkpoint & fault-tolerance subsystem.

Egeria's central observation — a converged frozen prefix stops changing and
can be excluded from compute and gradient synchronization — applies equally
to state persistence: the frozen prefix is immutable between freeze events,
so checkpoints shrink as training freezes.  This package provides

* :class:`CheckpointManager` — snapshots the complete training state
  (model, optimizer, LR schedule, RNG streams, freezing-engine state,
  activation-cache manifest) with content-addressed incremental tensor
  storage;
* :class:`MemoryBackend` / :class:`DirectoryBackend` — pluggable stores;
  the directory backend writes atomically (temp file + rename) so crashes
  never leave a torn checkpoint.

The trainers integrate through ``BaseTrainer.configure_checkpointing`` /
``restore`` (bit-exact resume), the cluster simulator through
``ClusterScheduler`` failure injection and preemption (restart from the
last checkpoint, costs charged through the cost model / engine), and the
CLI through ``repro ckpt save|restore|inspect``.
"""

from .backends import CheckpointBackend, DirectoryBackend, MemoryBackend
from .manager import CheckpointInfo, CheckpointManager
from .serialization import join_state, split_state, tensor_digest

__all__ = [
    "CheckpointBackend",
    "MemoryBackend",
    "DirectoryBackend",
    "CheckpointInfo",
    "CheckpointManager",
    "split_state",
    "join_state",
    "tensor_digest",
]

"""Checkpoint storage backends: in-memory and atomic-write directory store.

Both backends expose the same tiny object-store interface the
:class:`~repro.ckpt.manager.CheckpointManager` writes against:

* a **content-addressed object store** (``has_object``/``write_object``/
  ``read_object``) holding immutable tensors keyed by digest — writing an
  existing digest is a no-op, which is how frozen-prefix tensors are
  persisted exactly once across a run's checkpoints;
* a **manifest store** (``write_manifest``/``read_manifest``/
  ``list_checkpoints``) holding one JSON document per checkpoint.

The directory backend is crash-safe: every file (object and manifest) is
written to a temporary sibling and atomically renamed into place, so a
checkpoint either exists completely or not at all — a reader never observes
a torn manifest or truncated tensor.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, List, Optional

import numpy as np

__all__ = ["CheckpointBackend", "MemoryBackend", "DirectoryBackend"]


class CheckpointBackend:
    """Abstract object + manifest store used by :class:`CheckpointManager`."""

    def has_object(self, digest: str) -> bool:
        raise NotImplementedError

    def write_object(self, digest: str, array: np.ndarray) -> int:
        """Persist one tensor; returns the bytes written (0 when deduplicated)."""
        raise NotImplementedError

    def read_object(self, digest: str) -> np.ndarray:
        raise NotImplementedError

    def write_manifest(self, checkpoint_id: str, manifest: Dict) -> None:
        raise NotImplementedError

    def read_manifest(self, checkpoint_id: str) -> Dict:
        raise NotImplementedError

    def list_checkpoints(self) -> List[str]:
        """Checkpoint ids in lexicographic (== step) order."""
        raise NotImplementedError


class MemoryBackend(CheckpointBackend):
    """Process-local store; manifests round-trip through JSON so the two
    backends accept exactly the same payloads."""

    def __init__(self) -> None:
        self._objects: Dict[str, np.ndarray] = {}
        self._manifests: Dict[str, str] = {}

    def has_object(self, digest: str) -> bool:
        return digest in self._objects

    def write_object(self, digest: str, array: np.ndarray) -> int:
        if digest in self._objects:
            return 0
        self._objects[digest] = np.array(array, copy=True)
        return int(array.nbytes)

    def read_object(self, digest: str) -> np.ndarray:
        if digest not in self._objects:
            raise KeyError(f"unknown object {digest!r}")
        return np.array(self._objects[digest], copy=True)

    def write_manifest(self, checkpoint_id: str, manifest: Dict) -> None:
        self._manifests[checkpoint_id] = json.dumps(manifest)

    def read_manifest(self, checkpoint_id: str) -> Dict:
        if checkpoint_id not in self._manifests:
            raise KeyError(f"unknown checkpoint {checkpoint_id!r}")
        return json.loads(self._manifests[checkpoint_id])

    def list_checkpoints(self) -> List[str]:
        return sorted(self._manifests)


class DirectoryBackend(CheckpointBackend):
    """Atomic-write directory store.

    Layout::

        <root>/objects/<digest>.npy        content-addressed tensors
        <root>/checkpoints/<id>.json       one manifest per checkpoint
    """

    def __init__(self, root: str) -> None:
        self.root = root
        self.objects_dir = os.path.join(root, "objects")
        self.manifests_dir = os.path.join(root, "checkpoints")
        os.makedirs(self.objects_dir, exist_ok=True)
        os.makedirs(self.manifests_dir, exist_ok=True)

    # ------------------------------------------------------------------ #
    # Atomic file helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _atomic_write(path: str, writer) -> None:
        directory = os.path.dirname(path)
        fd, tmp_path = tempfile.mkstemp(dir=directory, prefix=".tmp_")
        try:
            with os.fdopen(fd, "wb") as handle:
                writer(handle)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.remove(tmp_path)
            except OSError:
                pass
            raise

    def _object_path(self, digest: str) -> str:
        return os.path.join(self.objects_dir, f"{digest}.npy")

    def _manifest_path(self, checkpoint_id: str) -> str:
        return os.path.join(self.manifests_dir, f"{checkpoint_id}.json")

    # ------------------------------------------------------------------ #
    # Object store
    # ------------------------------------------------------------------ #
    def has_object(self, digest: str) -> bool:
        return os.path.exists(self._object_path(digest))

    def write_object(self, digest: str, array: np.ndarray) -> int:
        path = self._object_path(digest)
        if os.path.exists(path):
            return 0
        self._atomic_write(path, lambda handle: np.save(handle, np.ascontiguousarray(array)))
        return int(array.nbytes)

    def read_object(self, digest: str) -> np.ndarray:
        path = self._object_path(digest)
        if not os.path.exists(path):
            raise KeyError(f"unknown object {digest!r}")
        return np.load(path)

    # ------------------------------------------------------------------ #
    # Manifest store
    # ------------------------------------------------------------------ #
    def write_manifest(self, checkpoint_id: str, manifest: Dict) -> None:
        payload = json.dumps(manifest, indent=2).encode("utf-8")
        self._atomic_write(self._manifest_path(checkpoint_id), lambda handle: handle.write(payload))

    def read_manifest(self, checkpoint_id: str) -> Dict:
        path = self._manifest_path(checkpoint_id)
        if not os.path.exists(path):
            raise KeyError(f"unknown checkpoint {checkpoint_id!r}")
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)

    def list_checkpoints(self) -> List[str]:
        names = [name[:-5] for name in os.listdir(self.manifests_dir)
                 if name.endswith(".json") and not name.startswith(".tmp_")]
        return sorted(names)

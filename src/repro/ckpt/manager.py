"""The checkpoint manager: freezing-aware incremental training-state snapshots.

:class:`CheckpointManager` persists complete, deterministic training states
(model weights, optimizer moments, LR-scheduler step, RNG streams, the
``FreezingEngine`` state and the ``ActivationCache`` manifest — assembled by
``BaseTrainer.state_dict``) against a pluggable
:class:`~repro.ckpt.backends.CheckpointBackend`.

Every tensor is content-addressed, so a checkpoint only writes the objects
that changed since any earlier checkpoint.  Egeria's frozen prefix is
immutable between freeze events, which means its weights, optimizer buffers
and BatchNorm statistics deduplicate to zero new bytes: the per-checkpoint
write volume falls monotonically as the frozen prefix advances — the storage
analogue of the paper's shrinking iteration time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from .backends import CheckpointBackend
from .serialization import TENSOR_KEY, jsonify_scalars, join_state, split_state

__all__ = ["CheckpointInfo", "CheckpointManager"]

#: Manifest schema version (bumped on incompatible layout changes).
FORMAT_VERSION = 1


@dataclass(frozen=True)
class CheckpointInfo:
    """Summary of one saved checkpoint.

    ``payload_bytes`` is the full logical size of the snapshot's tensors;
    ``bytes_written`` is what actually hit the backend after content-addressed
    deduplication (the incremental cost this checkpoint paid).
    """

    checkpoint_id: str
    step: int
    num_tensors: int
    num_new_tensors: int
    payload_bytes: int
    bytes_written: int
    meta: Dict[str, Any]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "checkpoint_id": self.checkpoint_id,
            "step": self.step,
            "num_tensors": self.num_tensors,
            "num_new_tensors": self.num_new_tensors,
            "payload_bytes": self.payload_bytes,
            "bytes_written": self.bytes_written,
            "meta": dict(self.meta),
        }


class CheckpointManager:
    """Saves/restores nested training states with incremental tensor storage."""

    def __init__(self, backend: CheckpointBackend):
        self.backend = backend

    # ------------------------------------------------------------------ #
    # Save
    # ------------------------------------------------------------------ #
    def save(self, state: Any, step: int, meta: Optional[Dict[str, Any]] = None) -> CheckpointInfo:
        """Persist one training state; returns its :class:`CheckpointInfo`.

        ``step`` orders checkpoints (the trainer passes its iteration count)
        and must be unique per manager; ``meta`` is free-form JSON-able data
        surfaced by :meth:`inspect` (e.g. epoch, frozen prefix length).
        """
        checkpoint_id = f"ckpt-{int(step):010d}"
        tree, tensors = split_state(state)
        bytes_written = 0
        num_new = 0
        new_digests = set()
        for digest, array in tensors.items():
            written = self.backend.write_object(digest, array)
            if written:
                num_new += 1
                bytes_written += written
                new_digests.add(digest)
        payload_bytes = sum(int(array.nbytes) for array in tensors.values())
        section_bytes = self._section_bytes(tree, tensors, new_digests)
        info = CheckpointInfo(
            checkpoint_id=checkpoint_id,
            step=int(step),
            num_tensors=len(tensors),
            num_new_tensors=num_new,
            payload_bytes=payload_bytes,
            bytes_written=bytes_written,
            meta=jsonify_scalars(dict(meta or {})),
        )
        manifest = {
            "format_version": FORMAT_VERSION,
            "checkpoint_id": checkpoint_id,
            "step": int(step),
            "meta": info.meta,
            "stats": {
                "num_tensors": info.num_tensors,
                "num_new_tensors": info.num_new_tensors,
                "payload_bytes": info.payload_bytes,
                "bytes_written": info.bytes_written,
                "bytes_written_by_section": section_bytes,
            },
            "state": jsonify_scalars(tree),
        }
        self.backend.write_manifest(checkpoint_id, manifest)
        return info

    @staticmethod
    def _section_bytes(tree: Any, tensors: Dict[str, Any], new_digests) -> Dict[str, int]:
        """New bytes attributed to each top-level key of a dict-shaped state.

        This is what the overhead curve plots per section: the ``model`` and
        ``optimizer`` sections shrink exactly with the frozen prefix, while
        e.g. the quantized reference snapshot rewrites on its own update
        cadence.  A digest shared between sections is counted in each.  Works
        on the already-split placeholder ``tree``, so no tensor is copied or
        hashed a second time.
        """
        if not isinstance(tree, dict):
            return {}

        def collect(node: Any, into: set) -> None:
            if isinstance(node, dict):
                if set(node.keys()) == {TENSOR_KEY}:
                    into.add(node[TENSOR_KEY])
                    return
                for value in node.values():
                    collect(value, into)
            elif isinstance(node, list):
                for value in node:
                    collect(value, into)

        section_bytes: Dict[str, int] = {}
        for key, value in tree.items():
            digests: set = set()
            collect(value, digests)
            section_bytes[str(key)] = sum(
                int(tensors[digest].nbytes) for digest in digests if digest in new_digests)
        return section_bytes

    # ------------------------------------------------------------------ #
    # Restore / inspect
    # ------------------------------------------------------------------ #
    def list_checkpoints(self) -> List[str]:
        return self.backend.list_checkpoints()

    def latest(self) -> Optional[str]:
        checkpoints = self.list_checkpoints()
        return checkpoints[-1] if checkpoints else None

    def restore(self, checkpoint_id: Optional[str] = None) -> Any:
        """Load a checkpoint's full state (latest when ``checkpoint_id`` is None)."""
        checkpoint_id = checkpoint_id or self.latest()
        if checkpoint_id is None:
            raise KeyError("no checkpoints have been saved")
        manifest = self.backend.read_manifest(checkpoint_id)
        return join_state(manifest["state"], self.backend.read_object)

    def inspect(self, checkpoint_id: Optional[str] = None) -> Dict[str, Any]:
        """Manifest summary (step, byte counts, meta) without loading tensors."""
        checkpoint_id = checkpoint_id or self.latest()
        if checkpoint_id is None:
            raise KeyError("no checkpoints have been saved")
        manifest = self.backend.read_manifest(checkpoint_id)
        return {
            "checkpoint_id": manifest["checkpoint_id"],
            "step": manifest["step"],
            "meta": manifest.get("meta", {}),
            **manifest.get("stats", {}),
        }

    def history(self) -> List[Dict[str, Any]]:
        """Per-checkpoint summaries in step order (the overhead-curve input)."""
        return [self.inspect(checkpoint_id) for checkpoint_id in self.list_checkpoints()]

"""``repro.quantization`` — post-training quantization for the reference model.

Implements the int8/int4/fp16 precisions of the paper's Table 2, fake
quantization of model snapshots, and activation-range calibration observers
(the "static quantization" path used for CNNs).
"""

from .observers import ActivationCalibrator, MinMaxObserver, MovingAverageObserver
from .quantize import (
    FLOAT16,
    FLOAT32,
    INT4,
    INT8,
    PRECISIONS,
    QuantizationSpec,
    dequantize_array,
    fake_quantize,
    quantization_error,
    quantize_array,
    quantize_state_dict,
)

__all__ = [
    "QuantizationSpec",
    "INT8",
    "INT4",
    "FLOAT16",
    "FLOAT32",
    "PRECISIONS",
    "quantize_array",
    "dequantize_array",
    "fake_quantize",
    "quantize_state_dict",
    "quantization_error",
    "MinMaxObserver",
    "MovingAverageObserver",
    "ActivationCalibrator",
]

"""Post-training quantization used to generate Egeria's reference model.

The paper (§4.1.3, §5) generates the reference model by moving a snapshot of
the training model to the CPU and applying PyTorch's built-in int8
quantization — dynamic quantization for NLP models and static quantization for
convolutional networks.  int8 "reduces the reference memory footprint by 3–4x
and accelerates the forward pass by ~2x on CPUs", and Table 2 shows it is the
sweet spot between speed and reference fidelity.

This module provides:

* :func:`quantize_array` / :func:`dequantize_array` — symmetric per-tensor
  affine quantization of a float array to ``int8``/``int4``/``float16``;
* :class:`QuantizationSpec` — precision configuration with footprint and
  speedup factors mirroring the paper's Table 2;
* :func:`quantize_model` — return a *new* model whose parameters have been
  quantize–dequantized (fake quantization), which is exactly what matters for
  plasticity evaluation: the reference activations carry the quantization
  error of a true int8 model while the arithmetic stays in numpy float32.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = [
    "QuantizationSpec",
    "INT8",
    "INT4",
    "FLOAT16",
    "FLOAT32",
    "quantize_array",
    "dequantize_array",
    "fake_quantize",
    "quantize_state_dict",
    "quantization_error",
    "PRECISIONS",
]


@dataclass(frozen=True)
class QuantizationSpec:
    """Configuration of one quantization precision.

    ``cpu_speedup`` and ``memory_ratio`` reproduce the relative numbers the
    paper reports (Table 2 and §4.1.3): int8 runs ~3.6x faster than fp32 on
    CPU and uses ~4x less memory; int4 does *not* run faster than int8 because
    of the CPU instruction set (§4.1.3), it only saves memory.
    """

    name: str
    bits: int
    cpu_speedup: float
    memory_ratio: float
    is_float: bool = False

    @property
    def num_levels(self) -> int:
        return 2 ** self.bits

    @property
    def qmax(self) -> int:
        return 2 ** (self.bits - 1) - 1


INT8 = QuantizationSpec(name="int8", bits=8, cpu_speedup=3.59, memory_ratio=0.25)
INT4 = QuantizationSpec(name="int4", bits=4, cpu_speedup=3.59, memory_ratio=0.125)
FLOAT16 = QuantizationSpec(name="float16", bits=16, cpu_speedup=1.69, memory_ratio=0.5, is_float=True)
FLOAT32 = QuantizationSpec(name="float32", bits=32, cpu_speedup=1.0, memory_ratio=1.0, is_float=True)

PRECISIONS: Dict[str, QuantizationSpec] = {s.name: s for s in (INT8, INT4, FLOAT16, FLOAT32)}


def quantize_array(array: np.ndarray, spec: QuantizationSpec = INT8) -> Tuple[np.ndarray, float]:
    """Quantize a float array to the given precision.

    Returns ``(quantized_values, scale)``.  Integer precisions use symmetric
    per-tensor quantization (zero point fixed at 0, like PyTorch's default for
    weights); float precisions return the cast array with scale 1.
    """
    if spec.is_float:
        if spec.bits == 32:
            return array.astype(np.float32), 1.0
        return array.astype(np.float16), 1.0
    max_abs = float(np.max(np.abs(array))) if array.size else 0.0
    scale = max_abs / spec.qmax if max_abs > 0 else 1.0
    quantized = np.clip(np.round(array / scale), -spec.qmax - 1, spec.qmax).astype(np.int8 if spec.bits <= 8 else np.int16)
    return quantized, scale


def dequantize_array(quantized: np.ndarray, scale: float, spec: QuantizationSpec = INT8) -> np.ndarray:
    """Recover a float32 array from quantized values."""
    if spec.is_float:
        return quantized.astype(np.float32)
    return (quantized.astype(np.float32)) * scale


def fake_quantize(array: np.ndarray, spec: QuantizationSpec = INT8) -> np.ndarray:
    """Quantize then dequantize — injects the precision's rounding error."""
    quantized, scale = quantize_array(array, spec)
    return dequantize_array(quantized, scale, spec)


def quantize_state_dict(state: Dict[str, np.ndarray], spec: QuantizationSpec = INT8,
                        skip_keys: Optional[Tuple[str, ...]] = ("running_mean", "running_var")) -> Dict[str, np.ndarray]:
    """Fake-quantize every entry of a ``state_dict`` snapshot.

    BatchNorm running statistics are skipped by default (PyTorch's static
    quantization folds them rather than quantizing them; quantizing them can
    destabilise normalisation for small models).
    """
    skip_keys = skip_keys or ()
    quantized: Dict[str, np.ndarray] = {}
    for key, value in state.items():
        if any(key.endswith(suffix) for suffix in skip_keys):
            quantized[key] = np.array(value, copy=True)
        else:
            quantized[key] = fake_quantize(np.asarray(value, dtype=np.float32), spec)
    return quantized


def quantization_error(array: np.ndarray, spec: QuantizationSpec = INT8) -> float:
    """Mean absolute error introduced by quantizing ``array``."""
    return float(np.mean(np.abs(array - fake_quantize(array, spec))))

"""Calibration observers for static quantization.

PyTorch's static quantization calibrates activation ranges by running a few
batches through the model with observers attached; the paper uses static
quantization for convolutional networks (§5).  These observers reproduce that
calibration step: they record per-tensor ranges (min/max or moving average)
from which an activation scale is derived.  The reference-model generator uses
them to report calibration statistics and to decide whether int8 is safe for a
given model (falling back to higher precision "if the training DNN is
extremely sensitive", §4.1.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .quantize import INT8, QuantizationSpec

__all__ = ["MinMaxObserver", "MovingAverageObserver", "ActivationCalibrator"]


class MinMaxObserver:
    """Tracks the global min/max of every tensor it observes."""

    def __init__(self, spec: QuantizationSpec = INT8):
        self.spec = spec
        self.min_val: Optional[float] = None
        self.max_val: Optional[float] = None
        self.num_observations = 0

    def observe(self, array: np.ndarray) -> None:
        """Update the range with one activation tensor."""
        lo, hi = float(array.min()), float(array.max())
        self.min_val = lo if self.min_val is None else min(self.min_val, lo)
        self.max_val = hi if self.max_val is None else max(self.max_val, hi)
        self.num_observations += 1

    @property
    def scale(self) -> float:
        """Symmetric quantization scale derived from the observed range."""
        if self.min_val is None or self.max_val is None:
            return 1.0
        max_abs = max(abs(self.min_val), abs(self.max_val))
        return max_abs / self.spec.qmax if max_abs > 0 else 1.0


class MovingAverageObserver(MinMaxObserver):
    """Exponentially-smoothed range observer (more robust to outlier batches)."""

    def __init__(self, spec: QuantizationSpec = INT8, momentum: float = 0.9):
        super().__init__(spec)
        self.momentum = momentum

    def observe(self, array: np.ndarray) -> None:
        lo, hi = float(array.min()), float(array.max())
        if self.min_val is None:
            self.min_val, self.max_val = lo, hi
        else:
            self.min_val = self.momentum * self.min_val + (1.0 - self.momentum) * lo
            self.max_val = self.momentum * self.max_val + (1.0 - self.momentum) * hi
        self.num_observations += 1


@dataclass
class ActivationCalibrator:
    """Attaches observers to named modules and records activation ranges.

    Usage::

        calibrator = ActivationCalibrator(spec=INT8)
        handles = calibrator.attach(model, module_names=["layer1", "layer2"])
        for batch in calibration_batches:
            model(batch)
        calibrator.detach(handles)
        scales = calibrator.scales()
    """

    spec: QuantizationSpec = INT8
    moving_average: bool = False
    observers: Dict[str, MinMaxObserver] = field(default_factory=dict)

    def attach(self, model, module_names: Optional[List[str]] = None):
        """Register forward hooks on the named submodules (all children if None)."""
        handles = []
        names = module_names if module_names is not None else [name for name, _ in model.named_children()]
        for name in names:
            module = model.get_submodule(name)
            observer_cls = MovingAverageObserver if self.moving_average else MinMaxObserver
            observer = observer_cls(self.spec)
            self.observers[name] = observer

            def hook(_module, _inputs, output, _observer=observer):
                data = output.data if hasattr(output, "data") else np.asarray(output)
                _observer.observe(data)

            handles.append(module.register_forward_hook(hook))
        return handles

    @staticmethod
    def detach(handles) -> None:
        """Remove previously attached hooks."""
        for handle in handles:
            handle.remove()

    def scales(self) -> Dict[str, float]:
        """Per-module activation scales derived from the observed ranges."""
        return {name: observer.scale for name, observer in self.observers.items()}

    def num_calibration_batches(self) -> int:
        """Number of batches seen by the most-observed module (0 if none)."""
        if not self.observers:
            return 0
        return max(observer.num_observations for observer in self.observers.values())

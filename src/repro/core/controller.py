"""Egeria controller: reference-model execution and freezing decisions.

The logically centralised controller (§4.1.1) "manages the life cycle of the
reference model, including its generation and execution, gathering data for
plasticity evaluation, and making layer freezing/unfreezing decisions for
workers".  It colocates with a training node and runs the reference model's
forward pass on CPUs asynchronously (§4.1.2), only when CPU load permits.

The asynchronous protocol over the IQ/TOQ/ROQ queues:

1. poll IQ for a pending mini-batch, run the reference forward pass, push the
   hooked activation ``A_R`` to ROQ;
2. poll TOQ and ROQ, match by iteration, compute the plasticity of the
   frontmost active layer module and feed it to the freezing engine;
3. the engine freezes the module when Algorithm 1's criterion is met, and the
   decision propagates to the worker(s) through ``apply_decisions``.

In this single-process reproduction the queue hops are preserved (so tests
can assert the protocol and its drop/staleness behaviour) while "CPU load" is
an injectable function, defaulting to an always-idle CPU.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..nn.module import Module
from .config import EgeriaConfig
from .freezing import FreezingEngine
from .queues import EvaluationChannels
from .reference import ReferenceModel

__all__ = ["EgeriaController"]


class EgeriaController:
    """Controller that evaluates plasticity and drives freezing decisions."""

    def __init__(self, engine: FreezingEngine, reference: ReferenceModel, channels: EvaluationChannels,
                 config: Optional[EgeriaConfig] = None,
                 cpu_load_fn: Optional[Callable[[], float]] = None):
        self.engine = engine
        self.reference = reference
        self.channels = channels
        self.config = config or EgeriaConfig()
        self.cpu_load_fn = cpu_load_fn or (lambda: 0.0)
        self.evaluations_done = 0
        self.evaluations_skipped_cpu = 0
        self.reference_updates = 0
        self._pending_reference: Dict[int, np.ndarray] = {}
        self.plasticity_log: List[Dict[str, float]] = []

    # ------------------------------------------------------------------ #
    # Reference-model lifecycle
    # ------------------------------------------------------------------ #
    def initialize_reference(self, training_model: Module, iteration: int) -> None:
        """Generate the reference model and hook the monitored module path."""
        self.reference.generate(training_model, iteration)
        self._sync_reference_hooks()

    def maybe_update_reference(self, training_model: Module, iteration: int) -> bool:
        """Refresh the reference every ``reference_update_interval`` evaluations."""
        if self.reference.model is None:
            self.initialize_reference(training_model, iteration)
            return True
        interval = max(self.config.reference_update_interval, 1)
        if self.evaluations_done > 0 and self.evaluations_done % interval == 0:
            self.reference.update(training_model, iteration)
            self.reference_updates += 1
            return True
        return False

    def _sync_reference_hooks(self) -> None:
        module = self.engine.monitored_module
        if module is not None:
            self.reference.monitor([module.tail_path])

    # ------------------------------------------------------------------ #
    # Asynchronous evaluation step
    # ------------------------------------------------------------------ #
    def step(self, training_model: Module) -> List[Dict[str, float]]:
        """Process pending queue items; returns the plasticity readings computed.

        Safe to call every iteration; does nothing when no evaluation is
        pending or when the (simulated) CPU is too busy — matching the paper's
        "the controller only executes the forward pass at low CPU load".
        """
        readings: List[Dict[str, float]] = []
        if self.cpu_load_fn() >= self.config.max_cpu_load_for_reference:
            if not self.channels.input_queue.empty():
                self.evaluations_skipped_cpu += 1
                self.channels.input_queue.get()  # drop the stale request
            return readings

        # (2a) Run the reference forward pass for any pending input batch.
        request = self.channels.input_queue.get()
        if request is not None:
            if self.reference.model is None:
                self.initialize_reference(training_model, request["iteration"])
            self._sync_reference_hooks()
            activations = self.reference.forward(*request["inputs"])
            monitored = self.engine.monitored_module
            if monitored is not None and monitored.tail_path in activations:
                self.channels.reference_output_queue.put({
                    "iteration": request["iteration"],
                    "path": monitored.tail_path,
                    "activation": activations[monitored.tail_path],
                })

        # (3) Match training/reference activations and evaluate plasticity.
        while True:
            matched = self._match_outputs()
            if matched is None:
                break
            iteration, path, train_activation, ref_activation = matched
            smoothed = self.engine.check_plasticity(train_activation, ref_activation, iteration)
            self.evaluations_done += 1
            self.maybe_update_reference(training_model, iteration)
            if smoothed is not None:
                monitored_before = path
                reading = {
                    "iteration": iteration,
                    "module": monitored_before,
                    "plasticity": smoothed,
                    "stale_counter": self.engine.stale_counter,
                    "num_frozen": self.engine.num_frozen(),
                }
                self.plasticity_log.append(reading)
                readings.append(reading)
            self._sync_reference_hooks()
        return readings

    def _match_outputs(self) -> Optional[Tuple[int, str, np.ndarray, np.ndarray]]:
        """Pair one training activation with its reference counterpart."""
        train_item = self.channels.training_output_queue.peek()
        if train_item is None:
            return None
        # Gather any reference outputs into the pending map first.
        while True:
            ref_item = self.channels.reference_output_queue.get()
            if ref_item is None:
                break
            self._pending_reference[ref_item["iteration"]] = ref_item["activation"]
        iteration = train_item["iteration"]
        if iteration not in self._pending_reference:
            # The reference pass for this batch has not run (or was dropped):
            # discard the training activation rather than blocking.
            stale = self.channels.training_output_queue.get()
            if stale is not None and not self._pending_reference:
                return None
            return None
        self.channels.training_output_queue.get()
        reference_activation = self._pending_reference.pop(iteration)
        return iteration, train_item["path"], train_item["activation"], reference_activation

    # ------------------------------------------------------------------ #
    # Learning-rate observation (unfreeze trigger)
    # ------------------------------------------------------------------ #
    def observe_lr(self, lr: float, iteration: int, cyclical: bool = False) -> bool:
        """Forward the current LR to the engine; True when an unfreeze fired."""
        return self.engine.observe_lr(lr, iteration, cyclical=cyclical)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def summary(self) -> Dict[str, object]:
        return {
            "evaluations_done": self.evaluations_done,
            "evaluations_skipped_cpu": self.evaluations_skipped_cpu,
            "reference_updates": self.reference_updates,
            "reference_stats": self.reference.stats.as_dict(),
            "engine": self.engine.summary(),
        }

"""``repro.core`` — Egeria itself: plasticity, reference model, freezing, caching.

This package is the paper's primary contribution: the knowledge-guided
training system that evaluates per-layer training plasticity against a
quantized reference model, freezes converged layer modules (skipping their
backward computation and gradient synchronization), and caches/prefetches the
frozen prefix's activations to skip its forward pass as well.
"""

from .cache import ActivationCache, CacheStats, Prefetcher
from .config import EgeriaConfig
from .controller import EgeriaController
from .freezing import FreezeEvent, FreezingEngine
from .hooks import ActivationRecorder
from .modules import LayerModule, active_parameter_fraction, building_blocks, parse_layer_modules
from .plasticity import (
    PlasticityTracker,
    direct_difference_loss,
    moving_average,
    similarity_matrix,
    sp_loss,
    windowed_slope,
)
from .queues import EvaluationChannels, SPSCQueue
from .reference import ReferenceModel, ReferenceModelStats
from .tasks import (
    ClassificationTask,
    QuestionAnsweringTask,
    SegmentationTask,
    TaskAdapter,
    TranslationTask,
    make_task,
)
from .trainer import BaseTrainer, EgeriaTrainer
from .worker import EgeriaWorker

__all__ = [
    "EgeriaConfig",
    "EgeriaTrainer",
    "BaseTrainer",
    "EgeriaController",
    "EgeriaWorker",
    "FreezingEngine",
    "FreezeEvent",
    "ReferenceModel",
    "ReferenceModelStats",
    "ActivationCache",
    "CacheStats",
    "Prefetcher",
    "ActivationRecorder",
    "LayerModule",
    "parse_layer_modules",
    "building_blocks",
    "active_parameter_fraction",
    "PlasticityTracker",
    "sp_loss",
    "similarity_matrix",
    "direct_difference_loss",
    "moving_average",
    "windowed_slope",
    "SPSCQueue",
    "EvaluationChannels",
    "TaskAdapter",
    "ClassificationTask",
    "SegmentationTask",
    "TranslationTask",
    "QuestionAnsweringTask",
    "make_task",
]

"""Task adapters: per-task forward/loss/metric logic shared by all trainers.

The paper evaluates four task types (§6.1) — image classification, semantic
segmentation, machine translation and question answering — each with its own
loss and accuracy metric.  A :class:`TaskAdapter` bundles that logic so the
Egeria trainer and every baseline trainer share one training loop and only the
task-specific pieces differ.

Each adapter implements:

* ``forward(model, batch)`` — run the model on a :class:`repro.data.Batch`;
* ``loss(outputs, batch)`` — task loss as an autograd scalar;
* ``evaluate(model, loader)`` — the paper's accuracy metric on held-out data
  (top-1 accuracy, mIoU, perplexity or span F1);
* ``input_tensors(batch)`` — the model inputs, used for the reference-model
  forward pass so both models see the identical mini-batch.
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from .. import nn
from ..data.datasets import Batch
from ..metrics.accuracy import f1_spans, mean_iou, perplexity_from_loss, top1_accuracy

__all__ = [
    "TaskAdapter",
    "ClassificationTask",
    "SegmentationTask",
    "TranslationTask",
    "QuestionAnsweringTask",
    "make_task",
]


class TaskAdapter:
    """Base class for task-specific training logic."""

    #: Name of the accuracy metric this task reports.
    metric_name: str = "metric"
    #: Whether larger metric values are better (perplexity flips this).
    higher_is_better: bool = True

    def input_tensors(self, batch: Batch) -> Tuple:
        """Model inputs for a batch (shared by training and reference models)."""
        raise NotImplementedError

    def forward(self, model: nn.Module, batch: Batch):
        """Run the model's forward pass for this task."""
        return model(*self.input_tensors(batch))

    def loss(self, outputs, batch: Batch) -> nn.Tensor:
        """Task loss as an autograd scalar."""
        raise NotImplementedError

    def evaluate(self, model: nn.Module, loader: Iterable[Batch]) -> float:
        """Task accuracy metric over an evaluation loader."""
        raise NotImplementedError

    def better(self, a: float, b: float) -> bool:
        """Whether metric value ``a`` is better than ``b``."""
        return a > b if self.higher_is_better else a < b


class ClassificationTask(TaskAdapter):
    """Image classification: cross-entropy loss, top-1 accuracy."""

    metric_name = "top1"

    def input_tensors(self, batch: Batch) -> Tuple:
        return (nn.Tensor(batch.inputs),)

    def loss(self, outputs, batch: Batch) -> nn.Tensor:
        return nn.cross_entropy(outputs, batch.targets)

    def evaluate(self, model: nn.Module, loader: Iterable[Batch]) -> float:
        model.eval()
        correct, total = 0, 0
        with nn.no_grad():
            for batch in loader:
                logits = self.forward(model, batch)
                correct += int((logits.data.argmax(axis=-1) == batch.targets).sum())
                total += len(batch)
        model.train()
        return correct / total if total else 0.0


class SegmentationTask(TaskAdapter):
    """Semantic segmentation: per-pixel cross-entropy, mean IoU."""

    metric_name = "miou"

    def __init__(self, num_classes: int = 8):
        self.num_classes = num_classes

    def input_tensors(self, batch: Batch) -> Tuple:
        return (nn.Tensor(batch.inputs),)

    def loss(self, outputs, batch: Batch) -> nn.Tensor:
        # outputs: (N, H, W, C) logits; targets: (N, H, W) integer masks.
        return nn.cross_entropy(outputs, batch.targets)

    def evaluate(self, model: nn.Module, loader: Iterable[Batch]) -> float:
        model.eval()
        predictions, targets = [], []
        with nn.no_grad():
            for batch in loader:
                logits = self.forward(model, batch)
                predictions.append(logits.data.argmax(axis=-1))
                targets.append(batch.targets)
        model.train()
        if not predictions:
            return 0.0
        return mean_iou(np.concatenate(predictions), np.concatenate(targets), self.num_classes)


class TranslationTask(TaskAdapter):
    """Machine translation: label-smoothed cross-entropy, validation perplexity.

    Perplexity is *lower-is-better*; the trainer's target-accuracy logic uses
    :meth:`better` so this works transparently.
    """

    metric_name = "perplexity"
    higher_is_better = False

    def __init__(self, label_smoothing: float = 0.1, pad_token: int = 0):
        self.label_smoothing = label_smoothing
        self.pad_token = pad_token

    def input_tensors(self, batch: Batch) -> Tuple:
        decoder_inputs = batch.extras["decoder_inputs"] if batch.extras else batch.inputs
        return (batch.inputs, decoder_inputs)

    def loss(self, outputs, batch: Batch) -> nn.Tensor:
        return nn.cross_entropy(outputs, batch.targets, label_smoothing=self.label_smoothing,
                                ignore_index=self.pad_token)

    def evaluate(self, model: nn.Module, loader: Iterable[Batch]) -> float:
        model.eval()
        losses = []
        with nn.no_grad():
            for batch in loader:
                outputs = self.forward(model, batch)
                losses.append(nn.cross_entropy(outputs, batch.targets, ignore_index=self.pad_token).item())
        model.train()
        if not losses:
            return float("inf")
        return perplexity_from_loss(float(np.mean(losses)))


class QuestionAnsweringTask(TaskAdapter):
    """Span-extraction QA: start/end cross-entropy, span F1."""

    metric_name = "f1"

    def input_tensors(self, batch: Batch) -> Tuple:
        return (batch.inputs,)

    def loss(self, outputs, batch: Batch) -> nn.Tensor:
        start_logits, end_logits = outputs
        starts, ends = batch.targets[:, 0], batch.targets[:, 1]
        loss_fn = nn.SpanExtractionLoss()
        return loss_fn(start_logits, end_logits, starts, ends)

    def evaluate(self, model: nn.Module, loader: Iterable[Batch]) -> float:
        model.eval()
        f1_scores = []
        with nn.no_grad():
            for batch in loader:
                start_logits, end_logits = self.forward(model, batch)
                pred_starts = start_logits.data.argmax(axis=-1)
                pred_ends = end_logits.data.argmax(axis=-1)
                f1_scores.append(f1_spans(pred_starts, pred_ends, batch.targets[:, 0], batch.targets[:, 1]))
        model.train()
        return float(np.mean(f1_scores)) if f1_scores else 0.0


def make_task(task_name: str, **kwargs) -> TaskAdapter:
    """Build the adapter for one of the paper's four task types."""
    factories = {
        "image_classification": ClassificationTask,
        "semantic_segmentation": SegmentationTask,
        "machine_translation": TranslationTask,
        "question_answering": QuestionAnsweringTask,
    }
    if task_name not in factories:
        raise KeyError(f"unknown task {task_name!r}; known: {sorted(factories)}")
    return factories[task_name](**kwargs)

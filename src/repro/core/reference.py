"""Reference-model lifecycle: generation, execution and periodic updates.

Egeria's reference model (§4.1.3) is "a trained compressed DNN with the same
architecture as the model being trained": the controller snapshots the
training model, quantizes it to int8 (dynamic quantization for NLP models,
static for CNNs) and runs only its forward pass on CPUs to obtain reference
activations for plasticity evaluation.  The reference is refreshed
periodically from newer snapshots because "a stale reference model can
amplify the inherent fluctuations in SGD training".

In this reproduction the "CPU execution" is the same numpy code path; what is
preserved is (a) the quantization error injected into the reference
activations, (b) the snapshot/update cadence and staleness accounting, and
(c) the cost accounting (generation time, per-forward speedup factor) used by
the overhead analysis in §6.5 and Table 2.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..nn.module import Module
from ..nn.tensor import no_grad
from ..quantization import PRECISIONS, QuantizationSpec, quantize_state_dict
from .hooks import ActivationRecorder

__all__ = ["ReferenceModel", "ReferenceModelStats"]


@dataclass
class ReferenceModelStats:
    """Bookkeeping about reference-model generation and execution."""

    generations: int = 0
    updates: int = 0
    forward_passes: int = 0
    total_generation_seconds: float = 0.0
    total_forward_seconds: float = 0.0
    last_snapshot_iteration: int = -1

    def as_dict(self) -> Dict[str, float]:
        return {
            "generations": self.generations,
            "updates": self.updates,
            "forward_passes": self.forward_passes,
            "total_generation_seconds": self.total_generation_seconds,
            "total_forward_seconds": self.total_forward_seconds,
            "last_snapshot_iteration": self.last_snapshot_iteration,
        }


class ReferenceModel:
    """Quantized snapshot of the training model used for plasticity evaluation.

    Parameters
    ----------
    model_factory:
        Zero-argument callable that builds a model with the same architecture
        as the training model (same class/configuration); its weights are
        overwritten by the quantized snapshot.
    precision:
        One of ``"int8"``, ``"int4"``, ``"float16"``, ``"float32"``
        (Table 2 precisions).
    device:
        ``"cpu"`` (default) or ``"gpu"`` — only affects the simulated-cost
        accounting; §4.1.3 allows GPU execution when CPUs are scarce.
    """

    def __init__(self, model_factory, precision: str = "int8", device: str = "cpu"):
        if precision not in PRECISIONS:
            raise ValueError(f"unknown precision {precision!r}; expected one of {sorted(PRECISIONS)}")
        self.model_factory = model_factory
        self.spec: QuantizationSpec = PRECISIONS[precision]
        self.device = device
        self.model: Optional[Module] = None
        self.recorder: Optional[ActivationRecorder] = None
        self.stats = ReferenceModelStats()
        self._monitored_paths: List[str] = []

    # ------------------------------------------------------------------ #
    # Generation / update
    # ------------------------------------------------------------------ #
    def generate(self, training_model: Module, iteration: int = 0) -> Module:
        """Create (or re-create) the reference model from a training snapshot."""
        start = time.perf_counter()
        snapshot = training_model.state_dict()
        quantized = quantize_state_dict(snapshot, self.spec)
        self.model = self.model_factory()
        self.model.load_state_dict(quantized)
        self.model.eval()
        if self._monitored_paths:
            self.recorder = ActivationRecorder(self.model, self._monitored_paths)
        elapsed = time.perf_counter() - start
        self.stats.generations += 1
        self.stats.total_generation_seconds += elapsed
        self.stats.last_snapshot_iteration = iteration
        return self.model

    def update(self, training_model: Module, iteration: int) -> Module:
        """Refresh the reference from the latest snapshot (periodic update)."""
        if self.model is None:
            return self.generate(training_model, iteration)
        start = time.perf_counter()
        quantized = quantize_state_dict(training_model.state_dict(), self.spec)
        self.model.load_state_dict(quantized)
        elapsed = time.perf_counter() - start
        self.stats.updates += 1
        self.stats.total_generation_seconds += elapsed
        self.stats.last_snapshot_iteration = iteration
        return self.model

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, object]:
        """Quantized snapshot weights, monitored paths and statistics.

        The reference weights must be checkpointed verbatim (not regenerated
        from the restored training model) because plasticity readings — and
        hence freezing decisions — depend on exactly this quantized snapshot,
        taken at an earlier iteration than the checkpoint.
        """
        return {
            "model": None if self.model is None else dict(self.model.state_dict()),
            "monitored_paths": list(self._monitored_paths),
            "stats": self.stats.as_dict(),
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        stats = dict(state.get("stats") or {})
        self.stats = ReferenceModelStats(
            generations=int(stats.get("generations", 0)),
            updates=int(stats.get("updates", 0)),
            forward_passes=int(stats.get("forward_passes", 0)),
            total_generation_seconds=float(stats.get("total_generation_seconds", 0.0)),
            total_forward_seconds=float(stats.get("total_forward_seconds", 0.0)),
            last_snapshot_iteration=int(stats.get("last_snapshot_iteration", -1)),
        )
        self._monitored_paths = list(state.get("monitored_paths") or [])
        if self.recorder is not None:
            self.recorder.remove()
            self.recorder = None
        snapshot = state.get("model")
        if snapshot is None:
            self.model = None
            return
        self.model = self.model_factory()
        self.model.load_state_dict(snapshot)
        self.model.eval()
        if self._monitored_paths:
            self.recorder = ActivationRecorder(self.model, self._monitored_paths)

    def staleness(self, current_iteration: int) -> int:
        """Iterations elapsed since the last snapshot was taken."""
        if self.stats.last_snapshot_iteration < 0:
            return current_iteration
        return current_iteration - self.stats.last_snapshot_iteration

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def monitor(self, module_paths: List[str]) -> None:
        """Hook the given module paths on the reference model."""
        self._monitored_paths = list(module_paths)
        if self.model is not None:
            if self.recorder is not None:
                self.recorder.remove()
            self.recorder = ActivationRecorder(self.model, self._monitored_paths)

    def forward(self, *inputs) -> Dict[str, np.ndarray]:
        """Run a forward pass and return the hooked activations.

        The pass runs under ``no_grad`` — the reference model only ever
        performs inference (that is what makes int8 quantization applicable).
        """
        if self.model is None:
            raise RuntimeError("reference model has not been generated yet")
        if self.recorder is None:
            raise RuntimeError("no monitored module paths; call monitor() first")
        start = time.perf_counter()
        self.recorder.clear()
        with no_grad():
            self.model(*inputs)
        self.stats.forward_passes += 1
        self.stats.total_forward_seconds += time.perf_counter() - start
        return self.recorder.activations()

    # ------------------------------------------------------------------ #
    # Cost accounting (used by §6.5 / Table 2 benches)
    # ------------------------------------------------------------------ #
    @property
    def cpu_speedup(self) -> float:
        """Relative CPU inference speed versus a float32 reference (Table 2)."""
        return self.spec.cpu_speedup

    @property
    def memory_ratio(self) -> float:
        """Memory footprint relative to the float32 model."""
        return self.spec.memory_ratio

    def estimated_forward_seconds(self, full_precision_forward_seconds: float) -> float:
        """Simulated reference forward time given the fp32 forward time."""
        return full_precision_forward_seconds / self.spec.cpu_speedup

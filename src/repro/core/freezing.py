"""The layer-freezing decision engine (Algorithm 1 of the paper).

The engine tracks the frontmost active layer module, feeds its plasticity
readings into a :class:`~repro.core.plasticity.PlasticityTracker`, counts how
many consecutive evaluations the windowed slope stayed below the tolerance
``T``, and freezes the module once the count reaches ``W``.  Monitoring then
advances to the next module ("Egeria monitors the frontmost active layer
module to avoid a fragmented frozen model").

Unfreezing (§4.2.2): with annealing-style LR schedules, all frozen modules are
unfrozen when the learning rate has dropped by at least a factor of 10 since
the frontmost module froze; the counter and history window ``W`` are halved
for the subsequent re-freezing.  Cyclical schedules instead call a
user-provided ``custom_unfreeze`` hook.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from .config import EgeriaConfig
from .modules import LayerModule
from .plasticity import PlasticityTracker, sp_loss

__all__ = ["FreezeEvent", "FreezingEngine"]


@dataclass
class FreezeEvent:
    """A freezing/unfreezing decision, recorded for Figure 11-style timelines."""

    iteration: int
    action: str  # "freeze" | "unfreeze" | "refreeze"
    module_name: str
    module_index: int
    active_parameter_fraction: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "iteration": self.iteration,
            "action": self.action,
            "module": self.module_name,
            "module_index": self.module_index,
            "active_parameter_fraction": self.active_parameter_fraction,
        }


class FreezingEngine:
    """Implements Algorithm 1 over an ordered list of layer modules.

    Parameters
    ----------
    layer_modules:
        Front-to-back ordering produced by
        :func:`repro.core.modules.parse_layer_modules`.
    config:
        Hyperparameters (``W``, tolerance coefficient, unfreeze factor, ...).
    metric:
        Plasticity metric; defaults to SP loss.  The Skip-Conv baseline swaps
        in a direct-difference metric here.
    custom_unfreeze:
        Optional callback invoked for cyclical LR schedules instead of the
        LR-drop rule (the paper leaves this policy to the user).
    """

    def __init__(self, layer_modules: Sequence[LayerModule], config: Optional[EgeriaConfig] = None,
                 metric: Callable[[np.ndarray, np.ndarray], float] = sp_loss,
                 custom_unfreeze: Optional[Callable[["FreezingEngine", int], None]] = None):
        self.layer_modules: List[LayerModule] = list(layer_modules)
        if not self.layer_modules:
            raise ValueError("freezing engine needs at least one layer module")
        self.config = config or EgeriaConfig()
        self.metric = metric
        self.custom_unfreeze = custom_unfreeze

        self.window = self.config.freeze_window
        self.frontmost_active = 0
        self.stale_counter = 0
        self.trackers: Dict[int, PlasticityTracker] = {
            module.index: PlasticityTracker(
                window=self.window,
                tolerance_coefficient=self.config.tolerance_coefficient,
                initial_readings=self.config.initial_readings_for_tolerance,
                relative_slope_floor=self.config.relative_slope_floor,
            )
            for module in self.layer_modules
        }
        self.events: List[FreezeEvent] = []
        self._lr_at_first_freeze: Optional[float] = None
        self._unfreeze_count = 0
        self.total_params = sum(m.num_params for m in self.layer_modules)

    # ------------------------------------------------------------------ #
    # State inspection
    # ------------------------------------------------------------------ #
    @property
    def monitored_module(self) -> Optional[LayerModule]:
        """The frontmost active layer module, or ``None`` if all freezable ones froze."""
        if self.frontmost_active >= self.num_freezable_modules:
            return None
        return self.layer_modules[self.frontmost_active]

    @property
    def num_freezable_modules(self) -> int:
        """All but the last ``min_active_modules`` modules may freeze."""
        return max(len(self.layer_modules) - self.config.min_active_modules, 0)

    def frozen_modules(self) -> List[LayerModule]:
        return [m for m in self.layer_modules if m.is_frozen()]

    def num_frozen(self) -> int:
        return len(self.frozen_modules())

    def frozen_parameter_fraction(self) -> float:
        """Fraction of layer-module parameters currently frozen."""
        if self.total_params == 0:
            return 0.0
        return sum(m.num_params for m in self.frozen_modules()) / self.total_params

    def active_parameter_fraction(self) -> float:
        return 1.0 - self.frozen_parameter_fraction()

    def frozen_prefix_length(self) -> int:
        """Number of consecutive frozen modules from the front (cacheable prefix)."""
        count = 0
        for module in self.layer_modules:
            if module.is_frozen():
                count += 1
            else:
                break
        return count

    # ------------------------------------------------------------------ #
    # Algorithm 1: checkPlasticity
    # ------------------------------------------------------------------ #
    def check_plasticity(self, training_activation, reference_activation, iteration: int) -> Optional[float]:
        """One plasticity evaluation of the frontmost active module.

        Returns the smoothed plasticity value (or ``None`` when every
        freezable module is already frozen).  Freezing happens as a side
        effect once the stale counter reaches ``W``.
        """
        module = self.monitored_module
        if module is None:
            return None

        tracker = self.trackers[module.index]
        if self.stale_counter < self.window:
            raw = self.metric(training_activation, reference_activation)
            smoothed = tracker.record(raw, iteration)
            if tracker.is_stationary():
                self.stale_counter += 1
            else:
                self.stale_counter = 0
            if self.stale_counter >= self.window:
                self._freeze_frontmost(iteration)
            return smoothed

        # Counter already reached W (e.g. via an external decision): freeze now.
        self._freeze_frontmost(iteration)
        return tracker.latest()

    def _freeze_frontmost(self, iteration: int) -> None:
        module = self.monitored_module
        if module is None:
            return
        module.freeze()
        if self._lr_at_first_freeze is None:
            self._lr_at_first_freeze = self._current_lr
        action = "refreeze" if self._unfreeze_count > 0 else "freeze"
        self.events.append(FreezeEvent(
            iteration=iteration,
            action=action,
            module_name=module.name,
            module_index=module.index,
            active_parameter_fraction=self.active_parameter_fraction(),
        ))
        self.frontmost_active += 1
        self.stale_counter = 0

    # Placeholder updated by observe_lr(); kept separate so the engine can be
    # driven without any scheduler in unit tests.
    _current_lr: Optional[float] = None

    # ------------------------------------------------------------------ #
    # Unfreezing (LR-based and cyclical)
    # ------------------------------------------------------------------ #
    def observe_lr(self, lr: float, iteration: int, cyclical: bool = False) -> bool:
        """Feed the current learning rate; returns True if an unfreeze happened.

        Implements lines 19–26 of Algorithm 1: for annealing schedules, once
        the LR has decayed by ``unfreeze_lr_drop_factor`` (10x) relative to
        the LR at the time of the first freeze, every frozen module is
        unfrozen, monitoring restarts from the front, and the window/counter
        are halved for faster re-freezing.
        """
        self._current_lr = lr
        if cyclical:
            if self.custom_unfreeze is not None and self.num_frozen() > 0:
                self.custom_unfreeze(self, iteration)
                return True
            return False
        if self._lr_at_first_freeze is None or self.num_frozen() == 0:
            return False
        # Small tolerance so e.g. 0.05 * 0.1 (= 0.005000000000000001) still
        # counts as a 10x drop from 0.05.
        threshold = self._lr_at_first_freeze / self.config.unfreeze_lr_drop_factor
        if lr > threshold * (1.0 + 1e-6):
            return False
        self.unfreeze_all(iteration)
        return True

    def unfreeze_all(self, iteration: int) -> None:
        """Unfreeze every module, reset monitoring to the front, halve ``W``."""
        for module in self.layer_modules:
            if module.is_frozen():
                module.unfreeze()
        self.events.append(FreezeEvent(
            iteration=iteration,
            action="unfreeze",
            module_name="all",
            module_index=-1,
            active_parameter_fraction=1.0,
        ))
        self.frontmost_active = 0
        self.stale_counter = 0
        self._unfreeze_count += 1
        self._lr_at_first_freeze = None
        new_window = max(int(round(self.window * self.config.refreeze_window_factor)), 1)
        self.window = new_window
        for tracker in self.trackers.values():
            tracker.reset_window(new_window)
            tracker.reset_history(keep_tolerance=True)

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, object]:
        """Serializable snapshot of every decision-relevant field.

        Restoring this state (into an engine built over the same layer-module
        decomposition) and replaying the same plasticity readings reproduces
        the exact freeze/unfreeze sequence — the property the checkpoint
        subsystem's bit-exact resume guarantee rests on.
        """
        return {
            "window": int(self.window),
            "frontmost_active": int(self.frontmost_active),
            "stale_counter": int(self.stale_counter),
            "unfreeze_count": int(self._unfreeze_count),
            "lr_at_first_freeze": self._lr_at_first_freeze,
            "current_lr": self._current_lr,
            "frozen": [bool(module.is_frozen()) for module in self.layer_modules],
            "events": [event.as_dict() for event in self.events],
            "trackers": {str(module.index): self.trackers[module.index].state_dict()
                         for module in self.layer_modules},
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        frozen = list(state["frozen"])
        if len(frozen) != len(self.layer_modules):
            raise ValueError(f"state has {len(frozen)} layer modules, engine has "
                             f"{len(self.layer_modules)}")
        for module, is_frozen in zip(self.layer_modules, frozen):
            if is_frozen:
                module.freeze()
            else:
                module.unfreeze()
        self.window = int(state["window"])
        self.frontmost_active = int(state["frontmost_active"])
        self.stale_counter = int(state["stale_counter"])
        self._unfreeze_count = int(state["unfreeze_count"])
        lr_at_first_freeze = state.get("lr_at_first_freeze")
        self._lr_at_first_freeze = None if lr_at_first_freeze is None else float(lr_at_first_freeze)
        current_lr = state.get("current_lr")
        self._current_lr = None if current_lr is None else float(current_lr)
        self.events = [FreezeEvent(
            iteration=int(event["iteration"]),
            action=str(event["action"]),
            module_name=str(event["module"]),
            module_index=int(event["module_index"]),
            active_parameter_fraction=float(event["active_parameter_fraction"]),
        ) for event in state["events"]]
        for module in self.layer_modules:
            self.trackers[module.index].load_state_dict(state["trackers"][str(module.index)])

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def timeline(self) -> List[Dict[str, object]]:
        """Freeze/unfreeze events as dictionaries (Figure 11 input)."""
        return [event.as_dict() for event in self.events]

    def summary(self) -> Dict[str, object]:
        return {
            "num_modules": len(self.layer_modules),
            "num_frozen": self.num_frozen(),
            "frontmost_active": self.frontmost_active,
            "frozen_parameter_fraction": self.frozen_parameter_fraction(),
            "window": self.window,
            "unfreeze_count": self._unfreeze_count,
            "events": len(self.events),
        }

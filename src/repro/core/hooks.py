"""Forward-hook utilities for capturing intermediate activations.

Egeria's worker "uses hooks to obtain the intermediate activation tensors"
(§4.1.1) from both the training model and the reference model — the same hook
set is added to both so their activations can be compared layer by layer
(§5).  :class:`ActivationRecorder` wraps that pattern: attach it to a set of
module paths, run a forward pass, read the captured activations, detach when
done.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from ..nn.module import Module

__all__ = ["ActivationRecorder"]


class ActivationRecorder:
    """Capture the outputs of named submodules during forward passes.

    Parameters
    ----------
    model:
        The model whose submodules should be hooked.
    module_paths:
        Dotted paths (as accepted by ``Module.get_submodule``) of the blocks
        whose output activations should be recorded.  For Egeria these are the
        *tail* blocks of the layer modules being monitored.
    detach:
        Store plain numpy copies (default) rather than graph-connected
        tensors; plasticity evaluation never needs gradients.
    """

    def __init__(self, model: Module, module_paths: Iterable[str], detach: bool = True):
        self.model = model
        self.module_paths: List[str] = list(module_paths)
        self.detach = detach
        self._activations: Dict[str, np.ndarray] = {}
        self._handles = []
        self._attach()

    def _attach(self) -> None:
        for path in self.module_paths:
            module = self.model.get_submodule(path)

            def hook(_module, _inputs, output, _path=path):
                data = output.data if hasattr(output, "data") else np.asarray(output)
                self._activations[_path] = np.array(data, copy=True) if self.detach else data

            self._handles.append(module.register_forward_hook(hook))

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def get(self, path: str) -> Optional[np.ndarray]:
        """Activation captured for ``path`` in the most recent forward pass."""
        return self._activations.get(path)

    def activations(self) -> Dict[str, np.ndarray]:
        """All captured activations keyed by module path."""
        return dict(self._activations)

    def clear(self) -> None:
        """Drop captured activations (keeps hooks attached)."""
        self._activations.clear()

    def remove(self) -> None:
        """Detach all hooks."""
        for handle in self._handles:
            handle.remove()
        self._handles.clear()

    def retarget(self, module_paths: Iterable[str]) -> None:
        """Re-attach the recorder to a different set of module paths.

        Used when the frontmost active layer module advances: Egeria only
        needs the activation of the module currently being monitored.
        """
        self.remove()
        self.clear()
        self.module_paths = list(module_paths)
        self._attach()

    def __enter__(self) -> "ActivationRecorder":
        return self

    def __exit__(self, *exc_info) -> None:
        self.remove()

"""Activation cache with prefetching to skip the frozen layers' forward pass.

§4.3 of the paper: once the front layer modules are frozen they produce the
same output for the same (deterministically augmented) input, so Egeria
saves the frozen prefix's output activations to disk, keyed by sample ID,
and prefetches the activations of upcoming mini-batches into GPU memory —
the data loader "knows the future" sample indices.  Only the most recent few
mini-batches are kept in memory (the paper keeps five); the bulk lives on
disk.

Two classes:

* :class:`ActivationCache` — the disk store + bounded in-memory table, with
  hit/miss/byte accounting used by the §6.5 overhead analysis (activation
  storage is 1.5x–5.3x the input size for ResNet-50);
* :class:`Prefetcher` — pulls the activations for the next mini-batches
  (obtained from ``DataLoader.peek_future_indices``) into the in-memory table
  ahead of time.

Cache entries are invalidated whenever the frozen prefix changes (a new module
freezes, or an unfreeze occurs) because the cached tensor is the output of a
specific prefix of layers.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

__all__ = ["CacheStats", "ActivationCache", "Prefetcher"]


@dataclass
class CacheStats:
    """Hit/miss and storage accounting for the activation cache."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidations: int = 0
    bytes_written: int = 0
    prefetches: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalidations": self.invalidations,
            "bytes_written": self.bytes_written,
            "prefetches": self.prefetches,
            "hit_rate": self.hit_rate,
        }


class ActivationCache:
    """Disk-backed store of frozen-prefix activations keyed by sample ID.

    Parameters
    ----------
    cache_dir:
        Directory for the ``.npy`` files; a temporary directory is created
        (and removed on :meth:`close`) when omitted.
    memory_batches:
        Number of recent/prefetched mini-batches' activations kept in the
        in-memory table (the simulated GPU-memory hash table of Figure 7).
    batch_size:
        Used only to size the in-memory table (``memory_batches * batch_size``
        entries).
    max_disk_bytes:
        Optional storage budget; stores beyond the budget are rejected
        (counted as misses later) — the paper lets users cap activation
        storage at up to one epoch's worth.
    """

    def __init__(self, cache_dir: Optional[str] = None, memory_batches: int = 5, batch_size: int = 16,
                 max_disk_bytes: Optional[int] = None):
        self._owns_dir = cache_dir is None
        self.cache_dir = cache_dir or tempfile.mkdtemp(prefix="egeria_cache_")
        os.makedirs(self.cache_dir, exist_ok=True)
        self.memory_capacity = max(memory_batches * batch_size, 1)
        self.max_disk_bytes = max_disk_bytes
        self.stats = CacheStats()
        #: Length of the frozen prefix the cached activations belong to
        #: (descriptive only; validity is keyed by ``generation``).
        self.prefix_version = 0
        #: Monotonically increasing generation counter.  Every prefix change
        #: — freeze *or* unfreeze — bumps it, so a version number that
        #: numerically recurs (e.g. refreezing back to the same prefix length
        #: after an unfreeze) can never alias entries from an earlier era.
        self.generation = 0
        self._memory: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self._on_disk: Dict[int, str] = {}
        self._entry_bytes: Dict[int, int] = {}
        self._disk_bytes = 0

    # ------------------------------------------------------------------ #
    # Keying / versioning
    # ------------------------------------------------------------------ #
    def set_prefix_version(self, version: int) -> None:
        """Invalidate everything when the frozen prefix changes."""
        if version != self.prefix_version:
            self.prefix_version = version
            self.new_generation()

    def new_generation(self) -> int:
        """Unconditionally start a fresh cache generation (drops everything).

        Unlike :meth:`set_prefix_version` this invalidates even when the
        nominal prefix length is unchanged — the unfreeze path relies on it,
        because after unfreeze → refreeze the prefix *length* may repeat while
        the frozen weights (and hence the cached activations) differ.
        """
        self.invalidate()
        self.generation += 1
        return self.generation

    def invalidate(self) -> None:
        """Drop all cached activations (memory and disk)."""
        self._memory.clear()
        for path in self._on_disk.values():
            try:
                os.remove(path)
            except OSError:
                pass
        self._on_disk.clear()
        self._entry_bytes.clear()
        self._disk_bytes = 0
        self.stats.invalidations += 1

    def _path_for(self, sample_id: int) -> str:
        return os.path.join(self.cache_dir, f"sample_{int(sample_id)}_g{self.generation}.npy")

    # ------------------------------------------------------------------ #
    # Store / load
    # ------------------------------------------------------------------ #
    def store(self, sample_id: int, activation: np.ndarray) -> bool:
        """Persist one sample's frozen-prefix activation to disk.

        Re-storing an existing sample id overwrites its file, so only the
        *delta* counts against ``max_disk_bytes`` and ``_disk_bytes`` —
        previously the old array's bytes were double-counted, silently
        shrinking the storage budget and inflating ``storage_ratio()``.
        """
        sample_id = int(sample_id)
        array = np.asarray(activation, dtype=np.float32)
        previous_bytes = self._entry_bytes.get(sample_id, 0)
        if self.max_disk_bytes is not None and \
                self._disk_bytes - previous_bytes + array.nbytes > self.max_disk_bytes:
            return False
        path = self._path_for(sample_id)
        np.save(path, array)
        self._on_disk[sample_id] = path
        self._entry_bytes[sample_id] = array.nbytes
        self._disk_bytes += array.nbytes - previous_bytes
        if sample_id in self._memory:
            # Keep the in-memory table coherent with the overwritten file.
            self._memory[sample_id] = array
        self.stats.stores += 1
        self.stats.bytes_written += array.nbytes
        return True

    def store_batch(self, sample_ids: Sequence[int], activations: np.ndarray) -> int:
        """Store a whole mini-batch; returns how many samples were persisted."""
        stored = 0
        for row, sample_id in enumerate(sample_ids):
            if self.store(int(sample_id), activations[row]):
                stored += 1
        return stored

    def contains(self, sample_id: int) -> bool:
        sample_id = int(sample_id)
        return sample_id in self._memory or sample_id in self._on_disk

    def load(self, sample_id: int) -> Optional[np.ndarray]:
        """Load one sample's activation (memory first, then disk)."""
        sample_id = int(sample_id)
        if sample_id in self._memory:
            self.stats.hits += 1
            self._memory.move_to_end(sample_id)
            return self._memory[sample_id]
        path = self._on_disk.get(sample_id)
        if path is None or not os.path.exists(path):
            self.stats.misses += 1
            return None
        activation = np.load(path)
        self.stats.hits += 1
        self._insert_memory(sample_id, activation)
        return activation

    def load_batch(self, sample_ids: Sequence[int]) -> Optional[np.ndarray]:
        """Load a full mini-batch; returns ``None`` unless *every* sample hits."""
        rows: List[np.ndarray] = []
        for sample_id in sample_ids:
            activation = self.load(int(sample_id))
            if activation is None:
                return None
            rows.append(activation)
        return np.stack(rows, axis=0)

    def _insert_memory(self, sample_id: int, activation: np.ndarray) -> None:
        self._memory[sample_id] = activation
        self._memory.move_to_end(sample_id)
        while len(self._memory) > self.memory_capacity:
            self._memory.popitem(last=False)

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def manifest(self) -> Dict[str, object]:
        """Serializable description of the cache contents (not the tensors).

        The activations themselves live on disk and are *reconstructable* (a
        cache miss just recomputes the frozen prefix), so a checkpoint only
        records the manifest: versioning counters, statistics and the byte
        sizes of the on-disk entries.  Restoring into a cache pointed at the
        same ``cache_dir`` re-attaches any entry whose file survived.
        """
        return {
            "generation": int(self.generation),
            "prefix_version": int(self.prefix_version),
            "stats": {
                "hits": int(self.stats.hits),
                "misses": int(self.stats.misses),
                "stores": int(self.stats.stores),
                "invalidations": int(self.stats.invalidations),
                "bytes_written": int(self.stats.bytes_written),
                "prefetches": int(self.stats.prefetches),
            },
            "entries": {str(sample_id): int(nbytes)
                        for sample_id, nbytes in sorted(self._entry_bytes.items())},
        }

    def load_manifest(self, manifest: Dict[str, object]) -> int:
        """Restore versioning/statistics and re-attach surviving disk entries.

        Returns the number of entries re-attached; entries whose files are
        gone (e.g. the checkpoint was restored on another machine) are simply
        dropped and will be recomputed as misses.
        """
        self._memory.clear()
        self._on_disk.clear()
        self._entry_bytes.clear()
        self._disk_bytes = 0
        self.generation = int(manifest["generation"])
        self.prefix_version = int(manifest["prefix_version"])
        stats = dict(manifest.get("stats") or {})
        self.stats = CacheStats(
            hits=int(stats.get("hits", 0)),
            misses=int(stats.get("misses", 0)),
            stores=int(stats.get("stores", 0)),
            invalidations=int(stats.get("invalidations", 0)),
            bytes_written=int(stats.get("bytes_written", 0)),
            prefetches=int(stats.get("prefetches", 0)),
        )
        reattached = 0
        for key, nbytes in dict(manifest.get("entries") or {}).items():
            sample_id = int(key)
            path = self._path_for(sample_id)
            if os.path.exists(path):
                self._on_disk[sample_id] = path
                self._entry_bytes[sample_id] = int(nbytes)
                self._disk_bytes += int(nbytes)
                reattached += 1
        return reattached

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def disk_bytes(self) -> int:
        """Bytes currently stored on disk."""
        return self._disk_bytes

    @property
    def memory_entries(self) -> int:
        return len(self._memory)

    def storage_ratio(self, input_bytes_per_sample: int) -> float:
        """Activation bytes per cached sample relative to the raw input size (§6.5)."""
        if not self._on_disk or input_bytes_per_sample <= 0:
            return 0.0
        per_sample = self._disk_bytes / len(self._on_disk)
        return per_sample / input_bytes_per_sample

    def close(self) -> None:
        """Remove the temporary cache directory if this cache owns it."""
        if self._owns_dir and os.path.isdir(self.cache_dir):
            shutil.rmtree(self.cache_dir, ignore_errors=True)

    def __enter__(self) -> "ActivationCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class Prefetcher:
    """Warms the cache's in-memory table with upcoming mini-batches' activations.

    ``prefetch(future_index_batches)`` walks the index lists returned by
    ``DataLoader.peek_future_indices`` and pulls every already-persisted
    activation into memory, so the training loop's ``load_batch`` call is a
    pure memory lookup — modelling the paper's overlap of disk access with
    GPU compute.
    """

    def __init__(self, cache: ActivationCache, lookahead_batches: int = 2):
        self.cache = cache
        self.lookahead_batches = max(lookahead_batches, 1)

    def prefetch(self, future_index_batches: Iterable[Sequence[int]]) -> int:
        """Prefetch the given future batches; returns the number of samples loaded."""
        loaded = 0
        for batch_indices in list(future_index_batches)[: self.lookahead_batches]:
            for sample_id in batch_indices:
                sample_id = int(sample_id)
                if sample_id in self.cache._memory:
                    continue
                path = self.cache._on_disk.get(sample_id)
                if path is None or not os.path.exists(path):
                    continue
                self.cache._insert_memory(sample_id, np.load(path))
                loaded += 1
        self.cache.stats.prefetches += loaded
        return loaded

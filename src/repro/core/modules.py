"""Layer-module parsing: turning a model into Egeria's freezable units.

Egeria "obtains the layer modules by parsing the model definition" (§5) and
freezes at the granularity of *layer modules* — consecutive layers defined
together, e.g. residual blocks or Transformer encoder layers (§4.2.1).
Figure 11 additionally shows size-aware grouping for ResNet-56: stage 3 holds
~75% of the parameters and is split into finer similar-sized modules, while
stages 1 and 2 (5% / 20%) are each evaluated as a whole.

:func:`parse_layer_modules` reproduces that behaviour:

1. obtain the ordered building blocks either from the model's
   ``module_sequence`` attribute (all models in :mod:`repro.models` provide
   one) or from its top-level children;
2. optionally filter/split by a user regular expression (the paper's
   configuration hook, "e.g. evaluating every convolutional layer");
3. group consecutive blocks so that no group exceeds ``max_fraction`` of the
   total parameters (big stages get split finer), never grouping across a
   stage boundary.

The result is an ordered list of :class:`LayerModule` objects that the
freezing engine walks front-to-back.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from ..nn.module import Module

__all__ = ["LayerModule", "parse_layer_modules", "building_blocks"]


@dataclass
class LayerModule:
    """A freezable group of consecutive building blocks.

    Attributes
    ----------
    name:
        Human-readable name, e.g. ``"layer3.0-layer3.4"``.
    paths:
        Dotted paths of the building blocks inside the model.
    blocks:
        The corresponding submodules, in forward order.
    num_params:
        Total scalar parameter count of the group.
    index:
        Position of this module in the front-to-back ordering.
    """

    name: str
    paths: List[str]
    blocks: List[Module]
    num_params: int
    index: int = 0

    def freeze(self) -> None:
        """Set ``requires_grad = False`` on every parameter of the group."""
        for block in self.blocks:
            block.freeze()

    def unfreeze(self) -> None:
        """Re-enable gradients for every parameter of the group."""
        for block in self.blocks:
            block.unfreeze()

    def is_frozen(self) -> bool:
        """True when every parameterised block in the group is frozen."""
        frozen_states = [block.is_frozen() for block in self.blocks if any(True for _ in block.parameters())]
        return bool(frozen_states) and all(frozen_states)

    @property
    def tail_block(self) -> Module:
        """The last building block — its output activation is what plasticity compares."""
        return self.blocks[-1]

    @property
    def tail_path(self) -> str:
        return self.paths[-1]

    def __repr__(self) -> str:
        return f"LayerModule({self.name}, params={self.num_params}, frozen={self.is_frozen()})"


def building_blocks(model: Module, pattern: Optional[str] = None) -> List[str]:
    """Return the ordered building-block paths of a model.

    Uses the model's ``module_sequence`` attribute when available, otherwise
    its direct children.  ``pattern`` (a regular expression) filters the
    paths — the paper's user-facing granularity hook.
    """
    if hasattr(model, "module_sequence"):
        paths = list(model.module_sequence)
    else:
        paths = [name for name, _ in model.named_children()]
    if pattern is not None:
        matcher = re.compile(pattern)
        paths = [p for p in paths if matcher.search(p)]
    if not paths:
        raise ValueError("no building blocks found (empty module_sequence or over-restrictive pattern)")
    return paths


def _stage_of(path: str) -> str:
    """Stage key of a block path: everything before the final index component."""
    parts = path.split(".")
    if len(parts) == 1:
        return parts[0]
    return ".".join(parts[:-1])


def _param_count(module: Module) -> int:
    return sum(p.size for p in module.parameters())


def parse_layer_modules(model: Module, max_fraction: float = 0.25, pattern: Optional[str] = None,
                        exclude_last: bool = True, min_params: int = 1) -> List[LayerModule]:
    """Parse a model into an ordered list of freezable :class:`LayerModule` groups.

    Parameters
    ----------
    model:
        The model to parse.
    max_fraction:
        Maximum fraction of the total parameter count a single group may hold;
        larger stages are split into several similar-sized groups (Figure 11).
    pattern:
        Optional regular expression applied to block paths before grouping.
    exclude_last:
        Keep the final building block (the classifier/generator head) out of
        the freezable list — Algorithm 1 asserts the monitored layer "is not
        the last layer".
    min_params:
        Blocks with fewer parameters than this are merged into their
        neighbouring group rather than forming one of their own (individual
        small layers "are less stable in SGD training", §4.2.1).
    """
    paths = building_blocks(model, pattern=pattern)
    if exclude_last and len(paths) > 1:
        paths = paths[:-1]

    blocks = [(path, model.get_submodule(path)) for path in paths]
    counts = [_param_count(block) for _, block in blocks]
    total = sum(counts)
    if total == 0:
        raise ValueError("model has no parameters in its building blocks")
    budget = max(int(total * max_fraction), 1)

    groups: List[List[int]] = []
    current: List[int] = []
    current_params = 0
    current_stage: Optional[str] = None
    for idx, (path, _block) in enumerate(blocks):
        stage = _stage_of(path)
        block_params = counts[idx]
        stage_changed = current_stage is not None and stage != current_stage
        over_budget = current_params + block_params > budget and current_params >= min_params
        if current and (stage_changed or over_budget):
            groups.append(current)
            current, current_params = [], 0
        current.append(idx)
        current_params += block_params
        current_stage = stage
    if current:
        groups.append(current)

    # Merge any group made solely of near-parameterless blocks into the next group.
    merged: List[List[int]] = []
    for group in groups:
        group_params = sum(counts[i] for i in group)
        if merged and group_params < min_params:
            merged[-1].extend(group)
        elif group_params < min_params and not merged:
            # Defer: prepend to the following group once it exists.
            merged.append(group)
        else:
            if merged and sum(counts[i] for i in merged[-1]) < min_params:
                group = merged.pop() + group
            merged.append(group)

    layer_modules: List[LayerModule] = []
    for module_index, group in enumerate(merged):
        group_paths = [blocks[i][0] for i in group]
        group_blocks = [blocks[i][1] for i in group]
        name = group_paths[0] if len(group_paths) == 1 else f"{group_paths[0]}-{group_paths[-1]}"
        layer_modules.append(LayerModule(
            name=name,
            paths=group_paths,
            blocks=group_blocks,
            num_params=sum(counts[i] for i in group),
            index=module_index,
        ))
    return layer_modules


def total_parameters(layer_modules: Sequence[LayerModule]) -> int:
    """Sum of parameters across an iterable of layer modules."""
    return sum(m.num_params for m in layer_modules)


def active_parameter_fraction(layer_modules: Sequence[LayerModule], model: Module) -> float:
    """Fraction of the *model's* parameters that currently require gradients.

    This is the quantity plotted on the y-axis of Figure 11.
    """
    total = sum(p.size for p in model.parameters())
    if total == 0:
        return 0.0
    active = sum(p.size for p in model.parameters() if p.requires_grad)
    return active / total

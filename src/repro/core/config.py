"""Configuration for Egeria's knowledge-guided training.

The paper uses three hyperparameters (§4.2.2 "Hyperparameters guideline"):

* ``n`` — plasticity-evaluation interval (iterations), also the monitoring
  interval of the bootstrapping stage;
* ``T`` — tolerance on the plasticity slope, set per layer module to 20% of
  the maximal plasticity slope observed in its initial 3 readings;
* ``W`` — number of consecutive low-slope evaluations required to freeze, and
  the history-buffer length used for smoothing.

plus the reference-model update period and the bootstrapping exit criterion
(training-loss changing rate below 10%).  :class:`EgeriaConfig` collects all
of them with the paper's defaults, and provides the recommended-``n``
calculator from the guideline formula.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["EgeriaConfig"]


@dataclass
class EgeriaConfig:
    """Hyperparameters and feature switches for :class:`repro.core.EgeriaTrainer`.

    Attributes
    ----------
    eval_interval_iters:
        ``n`` — run a plasticity evaluation every this many iterations.
    freeze_window:
        ``W`` — history-buffer length and the number of consecutive
        below-tolerance slope readings needed to freeze a module.
    tolerance_coefficient:
        ``T`` is set per module to this fraction (default 0.2 = 20%) of the
        maximum absolute plasticity slope over the module's initial readings.
    initial_readings_for_tolerance:
        How many initial plasticity readings are used to calibrate ``T``
        (paper: 3).
    bootstrap_loss_change_threshold:
        The bootstrapping stage ends once the relative change of the smoothed
        training loss between consecutive monitoring windows falls below this
        value (paper: 10%).
    bootstrap_min_evaluations:
        Minimum number of loss observations before the bootstrapping stage may
        end (guards against exiting on the very first window).
    reference_update_interval:
        Update the reference model from the latest training snapshot every
        this many plasticity evaluations (the paper updates every ``W``
        iterations worth of evaluations; frequency is insensitive, §4.1.3).
    reference_precision:
        ``"int8"`` (default), ``"int4"``, ``"float16"`` or ``"float32"``.
    unfreeze_lr_drop_factor:
        Unfreeze all frozen modules when the LR has dropped by at least this
        factor since the frontmost module froze (paper: 10x).
    refreeze_window_factor:
        After an unfreeze, ``W`` is multiplied by this factor (paper: halved).
    enable_fp_caching:
        Cache and prefetch frozen layers' activations to skip their forward
        pass (§4.3).
    cache_memory_batches:
        Number of recent mini-batches kept in (simulated GPU) memory by the
        prefetcher (paper: 5).
    cache_dir:
        Directory for the on-disk activation cache; ``None`` uses a
        temporary directory.
    min_cached_modules:
        FP caching is only enabled once at least this many front modules are
        frozen ("at the early training stage, we disable prefetching if the
        forward pass of a few layers is faster").
    freeze_last_module:
        Never true in practice — the final classifier must stay trainable; the
        engine always keeps at least ``min_active_modules`` active.
    """

    eval_interval_iters: int = 20
    freeze_window: int = 5
    tolerance_coefficient: float = 0.2
    relative_slope_floor: float = 0.1
    initial_readings_for_tolerance: int = 3
    bootstrap_loss_change_threshold: float = 0.10
    bootstrap_min_evaluations: int = 3
    reference_update_interval: int = 5
    reference_precision: str = "int8"
    reference_device: str = "cpu"
    unfreeze_lr_drop_factor: float = 10.0
    refreeze_window_factor: float = 0.5
    enable_fp_caching: bool = True
    cache_memory_batches: int = 5
    cache_dir: Optional[str] = None
    min_cached_modules: int = 1
    min_active_modules: int = 1
    max_cpu_load_for_reference: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.eval_interval_iters <= 0:
            raise ValueError("eval_interval_iters must be positive")
        if self.freeze_window <= 0:
            raise ValueError("freeze_window must be positive")
        if not 0.0 < self.tolerance_coefficient < 1.0:
            raise ValueError("tolerance_coefficient must be in (0, 1)")
        if self.unfreeze_lr_drop_factor <= 1.0:
            raise ValueError("unfreeze_lr_drop_factor must exceed 1")
        if self.reference_precision not in ("int8", "int4", "float16", "float32"):
            raise ValueError(f"unknown reference precision {self.reference_precision!r}")

    @staticmethod
    def recommended_eval_interval(total_iterations: int, num_layer_modules: int, freeze_window: int = 10,
                                  has_lr_schedule: bool = True) -> int:
        """Guideline value of ``n`` from §4.2.2.

        The paper's worked example: ResNet-56, 7 layer modules, W=10,
        ~78k iterations → n ≈ 78k / (10*2) / 7 / (1 + 0.5 + 0.25) ≈ 300.
        The ``(1 + 0.5 + 0.25)`` term accounts for bootstrapping, smoothing
        delay and the window halving after unfreezes.
        """
        denominator = (freeze_window * 2) * max(num_layer_modules, 1) * (1 + 0.5 + 0.25)
        if not has_lr_schedule:
            denominator = (freeze_window * 2) * max(num_layer_modules, 1)
        return max(int(round(total_iterations / denominator)), 1)

    def scaled_for(self, total_iterations: int, num_layer_modules: int) -> "EgeriaConfig":
        """Return a copy with ``eval_interval_iters`` set by the guideline."""
        interval = self.recommended_eval_interval(total_iterations, num_layer_modules, self.freeze_window)
        return EgeriaConfig(**{**self.__dict__, "eval_interval_iters": interval})

"""Training loops: the generic baseline trainer and the Egeria trainer.

:class:`BaseTrainer` runs a standard epoch/iteration loop over a task adapter
(forward, loss, backward, optimizer step, LR schedule, periodic evaluation)
while accounting both wall-clock time and *simulated* time through the
:class:`repro.sim.CostModel` — the simulated times are what the paper-style
TTA/speedup numbers are computed from (see DESIGN.md's substitution table).

:class:`EgeriaTrainer` extends it with the two-stage life cycle of Figure 3:

1. **Bootstrapping stage** — monitor the training-loss changing rate; no layer
   is eligible for freezing during the critical period (§3).
2. **Knowledge-guided stage** — generate the quantized reference model,
   periodically evaluate the frontmost active layer module's plasticity
   through the controller/worker queues, freeze converged modules, cache and
   prefetch frozen-prefix activations, and unfreeze on large LR drops.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..data.dataloader import DataLoader
from ..metrics.tracking import EpochRecord, RunHistory
from ..nn.module import Module
from ..optim.lr_scheduler import LRScheduler
from ..optim.optimizer import Optimizer
from ..sim.cost_model import CostModel
from ..sim.engine import EventDrivenEngine
from ..sim.timeline import SchedulePolicy
from .cache import ActivationCache, Prefetcher
from .config import EgeriaConfig
from .controller import EgeriaController
from .freezing import FreezingEngine
from .hooks import ActivationRecorder
from .modules import LayerModule, parse_layer_modules
from .queues import EvaluationChannels
from .reference import ReferenceModel
from .tasks import TaskAdapter
from .worker import EgeriaWorker

__all__ = ["BaseTrainer", "EgeriaTrainer"]


class BaseTrainer:
    """Plain training loop with simulated-time accounting.

    Parameters
    ----------
    model, task, train_loader, eval_loader, optimizer:
        The usual training ingredients; ``task`` supplies per-task forward,
        loss and evaluation logic.
    scheduler:
        Optional LR scheduler stepped once per epoch.
    cost_model:
        Optional :class:`~repro.sim.CostModel`; when omitted one is built from
        the model's layer modules.
    comm_seconds_per_byte:
        Per-byte gradient synchronization cost (0 for single-GPU training).
    name:
        Label recorded in the run history.
    """

    def __init__(self, model: Module, task: TaskAdapter, train_loader: DataLoader,
                 eval_loader: Optional[DataLoader] = None, optimizer: Optional[Optimizer] = None,
                 scheduler: Optional[LRScheduler] = None, cost_model: Optional[CostModel] = None,
                 layer_modules: Optional[Sequence[LayerModule]] = None,
                 comm_seconds_per_byte: float = 0.0, name: str = "baseline"):
        if optimizer is None:
            raise ValueError("an optimizer is required")
        self.model = model
        self.task = task
        self.train_loader = train_loader
        self.eval_loader = eval_loader
        self.optimizer = optimizer
        self.scheduler = scheduler
        self.layer_modules: List[LayerModule] = list(layer_modules) if layer_modules is not None \
            else parse_layer_modules(model)
        self.cost_model = cost_model or CostModel(self.layer_modules, batch_size=train_loader.batch_size)
        self.comm_seconds_per_byte = comm_seconds_per_byte
        self.name = name

        #: Simulated-time backend: "event" (discrete-event engine, the
        #: default) or "closed_form" (analytical fast mode, validated against
        #: the engine to within 5%); see :meth:`configure_simulation`.
        self.sim_backend = "event"
        self.sim_engine: Optional[EventDrivenEngine] = EventDrivenEngine()
        self.sim_workers = None
        self.sim_policy = SchedulePolicy.VANILLA

        self.iteration = 0
        self.simulated_time = 0.0
        self.history = RunHistory(name=name, metric_name=task.metric_name,
                                  higher_is_better=task.higher_is_better)
        self._wall_start: Optional[float] = None
        self._epoch_losses: List[float] = []

    # ------------------------------------------------------------------ #
    # Hooks overridden by subclasses
    # ------------------------------------------------------------------ #
    def on_epoch_start(self, epoch: int, lr: float) -> None:
        """Called after the LR schedule step, before the epoch's iterations."""

    def on_iteration_end(self, batch, loss_value: float) -> None:
        """Called after the optimizer step of every iteration."""

    def frozen_prefix(self) -> int:
        """Number of consecutive frozen front modules (0 for the baseline)."""
        return 0

    def uses_cached_fp(self) -> bool:
        """Whether the frozen prefix's forward pass is served from cache."""
        return False

    def frozen_fraction(self) -> float:
        """Fraction of layer-module parameters currently frozen."""
        total = sum(m.num_params for m in self.layer_modules)
        frozen = sum(m.num_params for m in self.layer_modules if m.is_frozen())
        return frozen / total if total else 0.0

    def include_reference_overhead(self) -> bool:
        return False

    # ------------------------------------------------------------------ #
    # Core loop
    # ------------------------------------------------------------------ #
    def train_one_iteration(self, batch) -> float:
        """Forward, loss, backward and optimizer step for one mini-batch."""
        outputs = self.task.forward(self.model, batch)
        loss = self.task.loss(outputs, batch)
        self.optimizer.zero_grad()
        loss.backward()
        self.optimizer.step()
        return float(loss.item())

    def configure_simulation(self, backend: str = "event", engine: Optional[EventDrivenEngine] = None,
                             workers=None, policy: str = SchedulePolicy.VANILLA) -> None:
        """Select how simulated iteration time is accounted.

        ``backend="event"`` (the construction-time default) replays every
        iteration through the discrete-event
        :class:`~repro.sim.engine.EventDrivenEngine`, which prices per-GPU
        compute and per-link communication events and therefore reflects
        stragglers, heterogeneous GPU speeds and bucket serialization.
        ``backend="closed_form"`` uses the analytical :class:`CostModel`
        fast mode, validated against the engine to within 5% on single-job
        configurations.
        """
        if backend not in ("closed_form", "event"):
            raise ValueError(f"unknown simulation backend {backend!r}")
        self.sim_backend = backend
        self.sim_engine = engine or (EventDrivenEngine() if backend == "event" else None)
        self.sim_workers = list(workers) if workers else None
        if self.sim_workers is not None and len(self.sim_workers) > 1 and \
                (self.sim_engine is None or self.sim_engine.allreduce is None):
            # Without an all-reduce model every gradient bucket would be
            # priced at zero and communication silently vanish from the
            # simulated time — require a cluster-backed engine instead.
            raise ValueError("multi-worker event simulation requires an engine built over a "
                             "Cluster (EventDrivenEngine(cluster)) so communication can be priced")
        self.sim_policy = policy

    def _account_iteration_time(self) -> None:
        if self.sim_backend == "event":
            # Multi-worker runs price communication through the engine's
            # all-reduce model; single-worker runs reuse the trainer's linear
            # per-byte coefficient so both backends stay comparable.
            scalar_comm = self.comm_seconds_per_byte if self.sim_workers is None else None
            result = self.sim_engine.simulate_iteration(
                self.cost_model,
                workers=self.sim_workers,
                frozen_prefix=self.frozen_prefix(),
                cached_fp=self.uses_cached_fp(),
                policy=self.sim_policy,
                include_reference_overhead=self.include_reference_overhead(),
                comm_seconds_per_byte=scalar_comm,
            )
            self.simulated_time += result.total
            return
        breakdown = self.cost_model.iteration(
            frozen_prefix=self.frozen_prefix(),
            cached_fp=self.uses_cached_fp(),
            comm_seconds_per_byte=self.comm_seconds_per_byte,
            include_reference_overhead=self.include_reference_overhead(),
        )
        self.simulated_time += breakdown.total

    def train_epoch(self, epoch: int) -> float:
        """Run one epoch; returns the mean training loss."""
        lr = self.scheduler.step(epoch) if self.scheduler is not None else self.optimizer.lr
        self.on_epoch_start(epoch, lr)
        self._epoch_losses = []
        self.train_loader.set_epoch(epoch)
        while True:
            batch = self.train_loader.next_batch()
            if batch is None:
                break
            self.iteration += 1
            loss_value = self.train_one_iteration(batch)
            self._epoch_losses.append(loss_value)
            self._account_iteration_time()
            self.on_iteration_end(batch, loss_value)
        return float(np.mean(self._epoch_losses)) if self._epoch_losses else 0.0

    def evaluate(self) -> float:
        """Task metric on the evaluation loader (NaN when absent)."""
        if self.eval_loader is None:
            return float("nan")
        return self.task.evaluate(self.model, iter(self.eval_loader))

    def fit(self, num_epochs: int, eval_every: int = 1, target_metric: Optional[float] = None,
            stop_at_target: bool = False) -> RunHistory:
        """Train for ``num_epochs`` epochs, recording per-epoch history.

        When ``target_metric`` is given and ``stop_at_target`` is True the run
        stops at the first epoch that reaches the target (TTA measurement).
        """
        self._wall_start = time.perf_counter()
        last_metric = float("nan")
        for epoch in range(num_epochs):
            mean_loss = self.train_epoch(epoch)
            if self.eval_loader is not None and (epoch % eval_every == 0 or epoch == num_epochs - 1):
                last_metric = self.evaluate()
            self.history.add(EpochRecord(
                epoch=epoch,
                train_loss=mean_loss,
                metric=last_metric,
                simulated_time=self.simulated_time,
                wall_time=time.perf_counter() - self._wall_start,
                learning_rate=self.optimizer.lr,
                frozen_fraction=self.frozen_fraction(),
                cached_fp=self.uses_cached_fp(),
            ))
            if target_metric is not None and stop_at_target and not np.isnan(last_metric):
                if self.task.better(last_metric, target_metric) or last_metric == target_metric:
                    break
        return self.history


class EgeriaTrainer(BaseTrainer):
    """Knowledge-guided training with layer freezing, as described in §3–§4.

    Additional parameters
    ---------------------
    model_factory:
        Callable building a model with the same architecture, used to host the
        quantized reference snapshot.
    config:
        :class:`EgeriaConfig` hyperparameters.
    """

    BOOTSTRAPPING = "bootstrapping"
    KNOWLEDGE_GUIDED = "knowledge_guided"

    def __init__(self, model: Module, model_factory, task: TaskAdapter, train_loader: DataLoader,
                 eval_loader: Optional[DataLoader] = None, optimizer: Optional[Optimizer] = None,
                 scheduler: Optional[LRScheduler] = None, config: Optional[EgeriaConfig] = None,
                 cost_model: Optional[CostModel] = None, layer_modules: Optional[Sequence[LayerModule]] = None,
                 comm_seconds_per_byte: float = 0.0, name: str = "egeria"):
        super().__init__(model, task, train_loader, eval_loader, optimizer, scheduler, cost_model,
                         layer_modules, comm_seconds_per_byte, name=name)
        self.config = config or EgeriaConfig()
        self.engine = FreezingEngine(self.layer_modules, self.config)
        self.channels = EvaluationChannels()
        self.reference = ReferenceModel(model_factory, precision=self.config.reference_precision,
                                        device=self.config.reference_device)
        self.controller = EgeriaController(self.engine, self.reference, self.channels, self.config)
        self.worker = EgeriaWorker(model, self.engine, self.channels)
        self.cache = ActivationCache(cache_dir=self.config.cache_dir,
                                     memory_batches=self.config.cache_memory_batches,
                                     batch_size=train_loader.batch_size)
        self.prefetcher = Prefetcher(self.cache, lookahead_batches=2)
        self._cache_recorder: Optional[ActivationRecorder] = None

        self.stage = self.BOOTSTRAPPING
        self._bootstrap_losses: List[float] = []
        self._bootstrap_window_means: List[float] = []
        self._num_frozen_seen = 0
        self.fp_skipped_iterations = 0
        self.stage_transitions: List[Dict[str, object]] = []

    # ------------------------------------------------------------------ #
    # Overridden accounting hooks
    # ------------------------------------------------------------------ #
    def frozen_prefix(self) -> int:
        return self.engine.frozen_prefix_length()

    def uses_cached_fp(self) -> bool:
        if not self.config.enable_fp_caching:
            return False
        return self.frozen_prefix() >= self.config.min_cached_modules

    def frozen_fraction(self) -> float:
        return self.engine.frozen_parameter_fraction()

    def include_reference_overhead(self) -> bool:
        return self.stage == self.KNOWLEDGE_GUIDED

    # ------------------------------------------------------------------ #
    # Stage management
    # ------------------------------------------------------------------ #
    def _bootstrap_step(self, loss_value: float) -> None:
        """Track the loss changing rate; leave the critical period when stable."""
        self._bootstrap_losses.append(loss_value)
        interval = self.config.eval_interval_iters
        if len(self._bootstrap_losses) % interval != 0:
            return
        window_mean = float(np.mean(self._bootstrap_losses[-interval:]))
        self._bootstrap_window_means.append(window_mean)
        if len(self._bootstrap_window_means) < self.config.bootstrap_min_evaluations:
            return
        previous, current = self._bootstrap_window_means[-2], self._bootstrap_window_means[-1]
        if previous <= 0:
            return
        change_rate = abs(previous - current) / abs(previous)
        if change_rate < self.config.bootstrap_loss_change_threshold:
            self._enter_knowledge_guided_stage()

    def _enter_knowledge_guided_stage(self) -> None:
        self.stage = self.KNOWLEDGE_GUIDED
        self.controller.initialize_reference(self.model, self.iteration)
        self.stage_transitions.append({
            "iteration": self.iteration,
            "stage": self.KNOWLEDGE_GUIDED,
        })

    # ------------------------------------------------------------------ #
    # Epoch / iteration hooks
    # ------------------------------------------------------------------ #
    def on_epoch_start(self, epoch: int, lr: float) -> None:
        cyclical = bool(self.scheduler is not None and self.scheduler.cyclical)
        unfroze = self.controller.observe_lr(lr, self.iteration, cyclical=cyclical)
        if unfroze:
            self.worker.restore_training_mode()
            # A fresh generation (not prefix_version + 1, which could later
            # collide with a legitimate frozen_prefix_length and alias stale
            # pre-unfreeze activations as hits) unconditionally invalidates.
            self.cache.prefix_version = 0
            self.cache.new_generation()
            # Stop recording/serving the old prefix tail: its modules are
            # training again, so cached outputs would be stale immediately.
            self._retarget_cache_recorder()
            self._num_frozen_seen = 0

    def on_iteration_end(self, batch, loss_value: float) -> None:
        if self.stage == self.BOOTSTRAPPING:
            self._bootstrap_step(loss_value)
            return

        # Knowledge-guided stage: periodic plasticity evaluation.
        if self.iteration % self.config.eval_interval_iters == 0 and self.engine.monitored_module is not None:
            inputs = self.task.input_tensors(batch)
            self.worker.submit_evaluation(inputs, self.iteration)
        self.controller.step(self.model)

        num_frozen = self.engine.num_frozen()
        if num_frozen != self._num_frozen_seen:
            self.worker.apply_decisions()
            self.cache.set_prefix_version(self.engine.frozen_prefix_length())
            self._retarget_cache_recorder()
            self._num_frozen_seen = num_frozen

        self._maybe_cache_activations(batch)

    # ------------------------------------------------------------------ #
    # Activation caching / prefetching
    # ------------------------------------------------------------------ #
    def _retarget_cache_recorder(self) -> None:
        """Hook the tail of the frozen prefix so its output can be cached."""
        prefix = self.engine.frozen_prefix_length()
        if not self.config.enable_fp_caching or prefix < self.config.min_cached_modules:
            if self._cache_recorder is not None:
                self._cache_recorder.remove()
                self._cache_recorder = None
            return
        tail_path = self.layer_modules[prefix - 1].tail_path
        if self._cache_recorder is None:
            self._cache_recorder = ActivationRecorder(self.model, [tail_path])
        else:
            self._cache_recorder.retarget([tail_path])

    def _maybe_cache_activations(self, batch) -> None:
        if self._cache_recorder is None:
            return
        # Read path: a full-batch hit means this iteration's frozen-prefix
        # forward pass could be served from the cache (the saving the cost
        # model accounts for when ``uses_cached_fp`` is True).
        cached = self.cache.load_batch(batch.indices)
        if cached is not None:
            self.fp_skipped_iterations += 1
        tail_path = self._cache_recorder.module_paths[0]
        activation = self._cache_recorder.get(tail_path)
        if activation is None:
            return
        if cached is None:
            self.cache.store_batch(batch.indices, activation)
        future = self.train_loader.peek_future_indices(num_batches=self.prefetcher.lookahead_batches)
        self.prefetcher.prefetch(future)

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def freezing_timeline(self) -> List[Dict[str, object]]:
        """Freeze/unfreeze events (Figure 11 input)."""
        return self.engine.timeline()

    def summary(self) -> Dict[str, object]:
        return {
            "stage": self.stage,
            "iteration": self.iteration,
            "frozen_prefix": self.frozen_prefix(),
            "frozen_fraction": self.frozen_fraction(),
            "fp_skipped_iterations": self.fp_skipped_iterations,
            "controller": self.controller.summary(),
            "cache": self.cache.stats.as_dict(),
            "stage_transitions": self.stage_transitions,
        }

    def close(self) -> None:
        """Release the on-disk activation cache."""
        self.cache.close()

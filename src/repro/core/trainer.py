"""Training loops: the generic baseline trainer and the Egeria trainer.

:class:`BaseTrainer` runs a standard epoch/iteration loop over a task adapter
(forward, loss, backward, optimizer step, LR schedule, periodic evaluation)
while accounting both wall-clock time and *simulated* time through the
:class:`repro.sim.CostModel` — the simulated times are what the paper-style
TTA/speedup numbers are computed from (see DESIGN.md's substitution table).

:class:`EgeriaTrainer` extends it with the two-stage life cycle of Figure 3:

1. **Bootstrapping stage** — monitor the training-loss changing rate; no layer
   is eligible for freezing during the critical period (§3).
2. **Knowledge-guided stage** — generate the quantized reference model,
   periodically evaluate the frontmost active layer module's plasticity
   through the controller/worker queues, freeze converged modules, cache and
   prefetch frozen-prefix activations, and unfreeze on large LR drops.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..data.dataloader import DataLoader
from ..metrics.tracking import EpochRecord, RunHistory
from ..nn.module import Module
from ..optim.lr_scheduler import LRScheduler
from ..optim.optimizer import Optimizer
from ..sim.cost_model import CostModel
from ..sim.engine import EventDrivenEngine
from ..sim.timeline import SchedulePolicy
from .cache import ActivationCache, Prefetcher
from .config import EgeriaConfig
from .controller import EgeriaController
from .freezing import FreezingEngine
from .hooks import ActivationRecorder
from .modules import LayerModule, parse_layer_modules
from .queues import EvaluationChannels
from .reference import ReferenceModel
from .tasks import TaskAdapter
from .worker import EgeriaWorker

__all__ = ["BaseTrainer", "EgeriaTrainer"]


def _capture_rng_state() -> Dict[str, object]:
    """Snapshot numpy's global RNG stream (part of the deterministic state)."""
    name, keys, pos, has_gauss, cached_gaussian = np.random.get_state()
    return {
        "name": str(name),
        "keys": np.array(keys, copy=True),
        "pos": int(pos),
        "has_gauss": int(has_gauss),
        "cached_gaussian": float(cached_gaussian),
    }


def _restore_rng_state(state: Dict[str, object]) -> None:
    np.random.set_state((
        str(state["name"]),
        np.asarray(state["keys"], dtype=np.uint32),
        int(state["pos"]),
        int(state["has_gauss"]),
        float(state["cached_gaussian"]),
    ))


def _capture_module_rng_states(model: Module) -> Dict[str, Dict]:
    """Per-layer RNG streams (e.g. Dropout mask generators), keyed by path.

    ``Generator.bit_generator.state`` is a plain nested dict of ints/strings,
    so it serializes as checkpoint metadata; without it, a restored run's
    dropout masks would restart from the layer seed instead of the mid-run
    stream position, breaking the bit-exact resume guarantee.
    """
    states: Dict[str, Dict] = {}
    for path, module in model.named_modules():
        rng = getattr(module, "_rng", None)
        if isinstance(rng, np.random.Generator):
            states[path] = rng.bit_generator.state
    return states


def _restore_module_rng_states(model: Module, states: Dict[str, Dict]) -> None:
    for path, module in model.named_modules():
        rng = getattr(module, "_rng", None)
        if isinstance(rng, np.random.Generator) and path in states:
            rng.bit_generator.state = states[path]


class BaseTrainer:
    """Plain training loop with simulated-time accounting.

    Parameters
    ----------
    model, task, train_loader, eval_loader, optimizer:
        The usual training ingredients; ``task`` supplies per-task forward,
        loss and evaluation logic.
    scheduler:
        Optional LR scheduler stepped once per epoch.
    cost_model:
        Optional :class:`~repro.sim.CostModel`; when omitted one is built from
        the model's layer modules.
    comm_seconds_per_byte:
        Per-byte gradient synchronization cost (0 for single-GPU training).
    name:
        Label recorded in the run history.
    """

    def __init__(self, model: Module, task: TaskAdapter, train_loader: DataLoader,
                 eval_loader: Optional[DataLoader] = None, optimizer: Optional[Optimizer] = None,
                 scheduler: Optional[LRScheduler] = None, cost_model: Optional[CostModel] = None,
                 layer_modules: Optional[Sequence[LayerModule]] = None,
                 comm_seconds_per_byte: float = 0.0, name: str = "baseline"):
        if optimizer is None:
            raise ValueError("an optimizer is required")
        self.model = model
        self.task = task
        self.train_loader = train_loader
        self.eval_loader = eval_loader
        self.optimizer = optimizer
        self.scheduler = scheduler
        self.layer_modules: List[LayerModule] = list(layer_modules) if layer_modules is not None \
            else parse_layer_modules(model)
        self.cost_model = cost_model or CostModel(self.layer_modules, batch_size=train_loader.batch_size)
        self.comm_seconds_per_byte = comm_seconds_per_byte
        self.name = name

        #: Simulated-time backend: "event" (discrete-event engine, the
        #: default) or "closed_form" (analytical fast mode, validated against
        #: the engine to within 5%); see :meth:`configure_simulation`.
        self.sim_backend = "event"
        self.sim_engine: Optional[EventDrivenEngine] = EventDrivenEngine()
        self.sim_workers = None
        self.sim_policy = SchedulePolicy.VANILLA

        self.iteration = 0
        self.simulated_time = 0.0
        self.history = RunHistory(name=name, metric_name=task.metric_name,
                                  higher_is_better=task.higher_is_better)
        self._wall_start: Optional[float] = None
        self._epoch_losses: List[float] = []

        #: Checkpointing hooks (see :meth:`configure_checkpointing`): when a
        #: manager is attached, a snapshot is saved every
        #: ``checkpoint_every`` completed epochs and :meth:`restore` resumes
        #: bit-exactly from the latest (or a named) checkpoint.
        self.checkpoint_manager = None
        self.checkpoint_every = 1
        self._next_epoch = 0

    # ------------------------------------------------------------------ #
    # Hooks overridden by subclasses
    # ------------------------------------------------------------------ #
    def on_epoch_start(self, epoch: int, lr: float) -> None:
        """Called after the LR schedule step, before the epoch's iterations."""

    def on_iteration_end(self, batch, loss_value: float) -> None:
        """Called after the optimizer step of every iteration."""

    def frozen_prefix(self) -> int:
        """Number of consecutive frozen front modules (0 for the baseline)."""
        return 0

    def uses_cached_fp(self) -> bool:
        """Whether the frozen prefix's forward pass is served from cache."""
        return False

    def frozen_fraction(self) -> float:
        """Fraction of layer-module parameters currently frozen."""
        total = sum(m.num_params for m in self.layer_modules)
        frozen = sum(m.num_params for m in self.layer_modules if m.is_frozen())
        return frozen / total if total else 0.0

    def include_reference_overhead(self) -> bool:
        return False

    # ------------------------------------------------------------------ #
    # Core loop
    # ------------------------------------------------------------------ #
    def train_one_iteration(self, batch) -> float:
        """Forward, loss, backward and optimizer step for one mini-batch."""
        outputs = self.task.forward(self.model, batch)
        loss = self.task.loss(outputs, batch)
        self.optimizer.zero_grad()
        loss.backward()
        self.optimizer.step()
        return float(loss.item())

    def configure_simulation(self, backend: str = "event", engine: Optional[EventDrivenEngine] = None,
                             workers=None, policy: str = SchedulePolicy.VANILLA) -> None:
        """Select how simulated iteration time is accounted.

        ``backend="event"`` (the construction-time default) replays every
        iteration through the discrete-event
        :class:`~repro.sim.engine.EventDrivenEngine`, which prices per-GPU
        compute and per-link communication events and therefore reflects
        stragglers, heterogeneous GPU speeds and bucket serialization.
        ``backend="closed_form"`` uses the analytical :class:`CostModel`
        fast mode, validated against the engine to within 5% on single-job
        configurations.
        """
        if backend not in ("closed_form", "event"):
            raise ValueError(f"unknown simulation backend {backend!r}")
        self.sim_backend = backend
        self.sim_engine = engine or (EventDrivenEngine() if backend == "event" else None)
        self.sim_workers = list(workers) if workers else None
        if self.sim_workers is not None and len(self.sim_workers) > 1 and \
                (self.sim_engine is None or self.sim_engine.allreduce is None):
            # Without an all-reduce model every gradient bucket would be
            # priced at zero and communication silently vanish from the
            # simulated time — require a cluster-backed engine instead.
            raise ValueError("multi-worker event simulation requires an engine built over a "
                             "Cluster (EventDrivenEngine(cluster)) so communication can be priced")
        self.sim_policy = policy

    def _account_iteration_time(self) -> None:
        if self.sim_backend == "event":
            # Multi-worker runs price communication through the engine's
            # all-reduce model; single-worker runs reuse the trainer's linear
            # per-byte coefficient so both backends stay comparable.
            scalar_comm = self.comm_seconds_per_byte if self.sim_workers is None else None
            result = self.sim_engine.simulate_iteration(
                self.cost_model,
                workers=self.sim_workers,
                frozen_prefix=self.frozen_prefix(),
                cached_fp=self.uses_cached_fp(),
                policy=self.sim_policy,
                include_reference_overhead=self.include_reference_overhead(),
                comm_seconds_per_byte=scalar_comm,
            )
            self.simulated_time += result.total
            return
        breakdown = self.cost_model.iteration(
            frozen_prefix=self.frozen_prefix(),
            cached_fp=self.uses_cached_fp(),
            comm_seconds_per_byte=self.comm_seconds_per_byte,
            include_reference_overhead=self.include_reference_overhead(),
        )
        self.simulated_time += breakdown.total

    def train_epoch(self, epoch: int) -> float:
        """Run one epoch; returns the mean training loss."""
        lr = self.scheduler.step(epoch) if self.scheduler is not None else self.optimizer.lr
        self.on_epoch_start(epoch, lr)
        self._epoch_losses = []
        self.train_loader.set_epoch(epoch)
        while True:
            batch = self.train_loader.next_batch()
            if batch is None:
                break
            self.iteration += 1
            loss_value = self.train_one_iteration(batch)
            self._epoch_losses.append(loss_value)
            self._account_iteration_time()
            self.on_iteration_end(batch, loss_value)
        return float(np.mean(self._epoch_losses)) if self._epoch_losses else 0.0

    def evaluate(self) -> float:
        """Task metric on the evaluation loader (NaN when absent)."""
        if self.eval_loader is None:
            return float("nan")
        return self.task.evaluate(self.model, iter(self.eval_loader))

    def fit(self, num_epochs: int, eval_every: int = 1, target_metric: Optional[float] = None,
            stop_at_target: bool = False) -> RunHistory:
        """Train for ``num_epochs`` epochs, recording per-epoch history.

        When ``target_metric`` is given and ``stop_at_target`` is True the run
        stops at the first epoch that reaches the target (TTA measurement).
        After a :meth:`restore`, training resumes at the checkpointed epoch
        and continues up to ``num_epochs``.
        """
        self._wall_start = time.perf_counter()
        last_metric = self.history.records[-1].metric if self.history.records else float("nan")
        for epoch in range(self._next_epoch, num_epochs):
            mean_loss = self.train_epoch(epoch)
            if self.eval_loader is not None and (epoch % eval_every == 0 or epoch == num_epochs - 1):
                last_metric = self.evaluate()
            self.history.add(EpochRecord(
                epoch=epoch,
                train_loss=mean_loss,
                metric=last_metric,
                simulated_time=self.simulated_time,
                wall_time=time.perf_counter() - self._wall_start,
                learning_rate=self.optimizer.lr,
                frozen_fraction=self.frozen_fraction(),
                cached_fp=self.uses_cached_fp(),
            ))
            self._next_epoch = epoch + 1
            if self.checkpoint_manager is not None and (epoch + 1) % self.checkpoint_every == 0:
                self.save_checkpoint()
            if target_metric is not None and stop_at_target and not np.isnan(last_metric):
                if self.task.better(last_metric, target_metric) or last_metric == target_metric:
                    break
        return self.history

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def configure_checkpointing(self, manager, checkpoint_every: int = 1) -> None:
        """Attach a :class:`~repro.ckpt.CheckpointManager`.

        A full training-state snapshot is saved every ``checkpoint_every``
        completed epochs during :meth:`fit`; checkpoints are taken at epoch
        boundaries, where the controller/worker queues are drained, so a
        restored run is bit-exact.
        """
        if checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be positive")
        self.checkpoint_manager = manager
        self.checkpoint_every = int(checkpoint_every)

    def save_checkpoint(self):
        """Snapshot the complete training state; returns the CheckpointInfo."""
        if self.checkpoint_manager is None:
            raise RuntimeError("no checkpoint manager configured; call configure_checkpointing")
        return self.checkpoint_manager.save(
            self.state_dict(), step=self.iteration,
            meta={
                "name": self.name,
                "epoch": self._next_epoch - 1,
                "iteration": self.iteration,
                "frozen_prefix": self.frozen_prefix(),
                "frozen_fraction": self.frozen_fraction(),
            })

    def restore(self, checkpoint_id: Optional[str] = None) -> "BaseTrainer":
        """Load a checkpoint (latest by default) and resume from it."""
        if self.checkpoint_manager is None:
            raise RuntimeError("no checkpoint manager configured; call configure_checkpointing")
        self.load_state_dict(self.checkpoint_manager.restore(checkpoint_id))
        return self

    def state_dict(self) -> Dict[str, object]:
        """Complete, deterministic training state (see docs/checkpointing.md).

        Covers model weights/buffers, optimizer moments, LR-scheduler
        position, the numpy RNG stream, loop counters and the recorded
        history; :class:`EgeriaTrainer` extends it with the freezing-engine,
        reference-model and activation-cache state.
        """
        return {
            "format": "repro.trainer/1",
            "name": self.name,
            "iteration": int(self.iteration),
            "simulated_time": float(self.simulated_time),
            "next_epoch": int(self._next_epoch),
            "model": dict(self.model.state_dict()),
            "optimizer": self.optimizer.state_dict(),
            "scheduler": None if self.scheduler is None else self.scheduler.state_dict(),
            "rng": _capture_rng_state(),
            "module_rng": _capture_module_rng_states(self.model),
            "history": [record.as_dict() for record in self.history.records],
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        self.model.load_state_dict(state["model"])
        self.optimizer.load_state_dict(state["optimizer"])
        if self.scheduler is not None and state.get("scheduler") is not None:
            self.scheduler.load_state_dict(state["scheduler"])
        self.iteration = int(state["iteration"])
        self.simulated_time = float(state["simulated_time"])
        self._next_epoch = int(state["next_epoch"])
        _restore_rng_state(state["rng"])
        _restore_module_rng_states(self.model, dict(state.get("module_rng") or {}))
        self.history.records = [EpochRecord(
            epoch=int(record["epoch"]),
            train_loss=float(record["train_loss"]),
            metric=float(record["metric"]),
            simulated_time=float(record["simulated_time"]),
            wall_time=float(record["wall_time"]),
            learning_rate=float(record["learning_rate"]),
            frozen_fraction=float(record["frozen_fraction"]),
            cached_fp=bool(record["cached_fp"]),
        ) for record in state["history"]]


class EgeriaTrainer(BaseTrainer):
    """Knowledge-guided training with layer freezing, as described in §3–§4.

    Additional parameters
    ---------------------
    model_factory:
        Callable building a model with the same architecture, used to host the
        quantized reference snapshot.
    config:
        :class:`EgeriaConfig` hyperparameters.
    """

    BOOTSTRAPPING = "bootstrapping"
    KNOWLEDGE_GUIDED = "knowledge_guided"

    def __init__(self, model: Module, model_factory, task: TaskAdapter, train_loader: DataLoader,
                 eval_loader: Optional[DataLoader] = None, optimizer: Optional[Optimizer] = None,
                 scheduler: Optional[LRScheduler] = None, config: Optional[EgeriaConfig] = None,
                 cost_model: Optional[CostModel] = None, layer_modules: Optional[Sequence[LayerModule]] = None,
                 comm_seconds_per_byte: float = 0.0, name: str = "egeria"):
        super().__init__(model, task, train_loader, eval_loader, optimizer, scheduler, cost_model,
                         layer_modules, comm_seconds_per_byte, name=name)
        self.config = config or EgeriaConfig()
        self.engine = FreezingEngine(self.layer_modules, self.config)
        self.channels = EvaluationChannels()
        self.reference = ReferenceModel(model_factory, precision=self.config.reference_precision,
                                        device=self.config.reference_device)
        self.controller = EgeriaController(self.engine, self.reference, self.channels, self.config)
        self.worker = EgeriaWorker(model, self.engine, self.channels)
        self.cache = ActivationCache(cache_dir=self.config.cache_dir,
                                     memory_batches=self.config.cache_memory_batches,
                                     batch_size=train_loader.batch_size)
        self.prefetcher = Prefetcher(self.cache, lookahead_batches=2)
        self._cache_recorder: Optional[ActivationRecorder] = None

        self.stage = self.BOOTSTRAPPING
        self._bootstrap_losses: List[float] = []
        self._bootstrap_window_means: List[float] = []
        self._num_frozen_seen = 0
        self.fp_skipped_iterations = 0
        self.stage_transitions: List[Dict[str, object]] = []

    # ------------------------------------------------------------------ #
    # Overridden accounting hooks
    # ------------------------------------------------------------------ #
    def frozen_prefix(self) -> int:
        return self.engine.frozen_prefix_length()

    def uses_cached_fp(self) -> bool:
        if not self.config.enable_fp_caching:
            return False
        return self.frozen_prefix() >= self.config.min_cached_modules

    def frozen_fraction(self) -> float:
        return self.engine.frozen_parameter_fraction()

    def include_reference_overhead(self) -> bool:
        return self.stage == self.KNOWLEDGE_GUIDED

    # ------------------------------------------------------------------ #
    # Stage management
    # ------------------------------------------------------------------ #
    def _bootstrap_step(self, loss_value: float) -> None:
        """Track the loss changing rate; leave the critical period when stable."""
        self._bootstrap_losses.append(loss_value)
        interval = self.config.eval_interval_iters
        if len(self._bootstrap_losses) % interval != 0:
            return
        window_mean = float(np.mean(self._bootstrap_losses[-interval:]))
        self._bootstrap_window_means.append(window_mean)
        if len(self._bootstrap_window_means) < self.config.bootstrap_min_evaluations:
            return
        previous, current = self._bootstrap_window_means[-2], self._bootstrap_window_means[-1]
        if previous <= 0:
            return
        change_rate = abs(previous - current) / abs(previous)
        if change_rate < self.config.bootstrap_loss_change_threshold:
            self._enter_knowledge_guided_stage()

    def _enter_knowledge_guided_stage(self) -> None:
        self.stage = self.KNOWLEDGE_GUIDED
        self.controller.initialize_reference(self.model, self.iteration)
        self.stage_transitions.append({
            "iteration": self.iteration,
            "stage": self.KNOWLEDGE_GUIDED,
        })

    # ------------------------------------------------------------------ #
    # Epoch / iteration hooks
    # ------------------------------------------------------------------ #
    def on_epoch_start(self, epoch: int, lr: float) -> None:
        cyclical = bool(self.scheduler is not None and self.scheduler.cyclical)
        unfroze = self.controller.observe_lr(lr, self.iteration, cyclical=cyclical)
        if unfroze:
            self.worker.restore_training_mode()
            # A fresh generation (not prefix_version + 1, which could later
            # collide with a legitimate frozen_prefix_length and alias stale
            # pre-unfreeze activations as hits) unconditionally invalidates.
            self.cache.prefix_version = 0
            self.cache.new_generation()
            # Stop recording/serving the old prefix tail: its modules are
            # training again, so cached outputs would be stale immediately.
            self._retarget_cache_recorder()
            self._num_frozen_seen = 0

    def on_iteration_end(self, batch, loss_value: float) -> None:
        if self.stage == self.BOOTSTRAPPING:
            self._bootstrap_step(loss_value)
            return

        # Knowledge-guided stage: periodic plasticity evaluation.
        if self.iteration % self.config.eval_interval_iters == 0 and self.engine.monitored_module is not None:
            inputs = self.task.input_tensors(batch)
            self.worker.submit_evaluation(inputs, self.iteration)
        self.controller.step(self.model)

        num_frozen = self.engine.num_frozen()
        if num_frozen != self._num_frozen_seen:
            self.worker.apply_decisions()
            self.cache.set_prefix_version(self.engine.frozen_prefix_length())
            self._retarget_cache_recorder()
            self._num_frozen_seen = num_frozen

        self._maybe_cache_activations(batch)

    # ------------------------------------------------------------------ #
    # Activation caching / prefetching
    # ------------------------------------------------------------------ #
    def _retarget_cache_recorder(self) -> None:
        """Hook the tail of the frozen prefix so its output can be cached."""
        prefix = self.engine.frozen_prefix_length()
        if not self.config.enable_fp_caching or prefix < self.config.min_cached_modules:
            if self._cache_recorder is not None:
                self._cache_recorder.remove()
                self._cache_recorder = None
            return
        tail_path = self.layer_modules[prefix - 1].tail_path
        if self._cache_recorder is None:
            self._cache_recorder = ActivationRecorder(self.model, [tail_path])
        else:
            self._cache_recorder.retarget([tail_path])

    def _maybe_cache_activations(self, batch) -> None:
        if self._cache_recorder is None:
            return
        # Read path: a full-batch hit means this iteration's frozen-prefix
        # forward pass could be served from the cache (the saving the cost
        # model accounts for when ``uses_cached_fp`` is True).
        cached = self.cache.load_batch(batch.indices)
        if cached is not None:
            self.fp_skipped_iterations += 1
        tail_path = self._cache_recorder.module_paths[0]
        activation = self._cache_recorder.get(tail_path)
        if activation is None:
            return
        if cached is None:
            self.cache.store_batch(batch.indices, activation)
        future = self.train_loader.peek_future_indices(num_batches=self.prefetcher.lookahead_batches)
        self.prefetcher.prefetch(future)

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, object]:
        state = super().state_dict()
        state["egeria"] = {
            "stage": self.stage,
            "bootstrap_losses": [float(v) for v in self._bootstrap_losses],
            "bootstrap_window_means": [float(v) for v in self._bootstrap_window_means],
            "num_frozen_seen": int(self._num_frozen_seen),
            "fp_skipped_iterations": int(self.fp_skipped_iterations),
            "stage_transitions": [dict(t) for t in self.stage_transitions],
            "engine": self.engine.state_dict(),
            "controller": {
                "evaluations_done": int(self.controller.evaluations_done),
                "evaluations_skipped_cpu": int(self.controller.evaluations_skipped_cpu),
                "reference_updates": int(self.controller.reference_updates),
            },
            "reference": self.reference.state_dict(),
            "cache": self.cache.manifest(),
        }
        return state

    def load_state_dict(self, state: Dict[str, object]) -> None:
        super().load_state_dict(state)
        egeria = state["egeria"]
        self.stage = str(egeria["stage"])
        self._bootstrap_losses = [float(v) for v in egeria["bootstrap_losses"]]
        self._bootstrap_window_means = [float(v) for v in egeria["bootstrap_window_means"]]
        self.fp_skipped_iterations = int(egeria["fp_skipped_iterations"])
        self.stage_transitions = [dict(t) for t in egeria["stage_transitions"]]

        # Engine first (it sets the requires_grad flags the worker reads) ...
        self.engine.load_state_dict(egeria["engine"])
        # ... then the reference snapshot, exactly as quantized at save time
        # (regenerating from the restored weights would change plasticity
        # readings and hence future freezing decisions).
        self.reference.load_state_dict(egeria["reference"])
        controller_state = dict(egeria["controller"])
        self.controller.evaluations_done = int(controller_state["evaluations_done"])
        self.controller.evaluations_skipped_cpu = int(controller_state["evaluations_skipped_cpu"])
        self.controller.reference_updates = int(controller_state["reference_updates"])
        self.controller._pending_reference.clear()
        self.channels.clear()

        # Re-derive the runtime side: BatchNorm/Dropout inference mode on
        # frozen modules, worker hook on the monitored module, cache recorder
        # on the frozen prefix tail.
        self.model.train()
        self.worker.apply_decisions()
        if self.reference.model is not None:
            self.controller._sync_reference_hooks()
        self._num_frozen_seen = int(egeria["num_frozen_seen"])
        self.cache.load_manifest(egeria["cache"])
        self._retarget_cache_recorder()

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def freezing_timeline(self) -> List[Dict[str, object]]:
        """Freeze/unfreeze events (Figure 11 input)."""
        return self.engine.timeline()

    def summary(self) -> Dict[str, object]:
        return {
            "stage": self.stage,
            "iteration": self.iteration,
            "frozen_prefix": self.frozen_prefix(),
            "frozen_fraction": self.frozen_fraction(),
            "fp_skipped_iterations": self.fp_skipped_iterations,
            "controller": self.controller.summary(),
            "cache": self.cache.stats.as_dict(),
            "stage_transitions": self.stage_transitions,
        }

    def close(self) -> None:
        """Release the on-disk activation cache."""
        self.cache.close()

"""Single-producer/single-consumer queues for the controller–worker protocol.

The paper implements non-blocking plasticity evaluation with three
multiprocessing queues (§4.1.2, Figure 6):

* **IQ** (input queue) — the worker puts the mini-batch that should be used
  for the next plasticity evaluation;
* **TOQ** (training-output queue) — the worker puts the training model's
  hooked activation ``A_T`` and continues its loop without blocking;
* **ROQ** (reference-output queue) — the controller puts the reference
  model's activation ``A_R`` after running its forward pass.

Because the reproduction runs in a single process, these are in-memory deques
with the same non-blocking ``put``/``get`` semantics, a bounded capacity and
drop counting — sufficient to preserve (and test) the asynchronous protocol:
the worker never waits on the controller, and evaluations whose data has not
been consumed yet are simply superseded.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Generic, Optional, TypeVar

__all__ = ["SPSCQueue", "EvaluationChannels"]

T = TypeVar("T")


class SPSCQueue(Generic[T]):
    """Bounded non-blocking FIFO queue.

    ``put`` returns ``False`` (and counts a drop) when the queue is full
    instead of blocking — the worker must never stall the training loop on
    controller slowness.
    """

    def __init__(self, maxsize: int = 8, name: str = "queue"):
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self.name = name
        self._items: Deque[T] = deque()
        self.put_count = 0
        self.get_count = 0
        self.dropped = 0

    def put(self, item: T) -> bool:
        """Enqueue without blocking; returns whether the item was accepted."""
        if len(self._items) >= self.maxsize:
            self.dropped += 1
            return False
        self._items.append(item)
        self.put_count += 1
        return True

    def get(self) -> Optional[T]:
        """Dequeue without blocking; returns ``None`` when empty."""
        if not self._items:
            return None
        self.get_count += 1
        return self._items.popleft()

    def peek(self) -> Optional[T]:
        """Look at the head of the queue without removing it."""
        return self._items[0] if self._items else None

    def __len__(self) -> int:
        return len(self._items)

    def empty(self) -> bool:
        return not self._items

    def full(self) -> bool:
        return len(self._items) >= self.maxsize

    def clear(self) -> None:
        self._items.clear()

    def __repr__(self) -> str:
        return f"SPSCQueue({self.name}, size={len(self)}/{self.maxsize}, dropped={self.dropped})"


@dataclass
class EvaluationChannels:
    """The IQ/TOQ/ROQ triple connecting one worker to the controller."""

    input_queue: SPSCQueue = field(default_factory=lambda: SPSCQueue(maxsize=4, name="IQ"))
    training_output_queue: SPSCQueue = field(default_factory=lambda: SPSCQueue(maxsize=4, name="TOQ"))
    reference_output_queue: SPSCQueue = field(default_factory=lambda: SPSCQueue(maxsize=4, name="ROQ"))

    def pending_evaluations(self) -> int:
        """Number of worker-submitted activations awaiting controller matching."""
        return len(self.training_output_queue)

    def clear(self) -> None:
        self.input_queue.clear()
        self.training_output_queue.clear()
        self.reference_output_queue.clear()

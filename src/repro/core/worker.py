"""Egeria worker: the training-side half of the controller–worker framework.

Each training process runs an Egeria worker (§4.1.1).  "In addition to the
original training operations, it performs Egeria tasks, including transmitting
data and handling controller decisions.  The updated ``forward()`` method uses
hooks to obtain the intermediate activation tensors.  The ``freeze()`` and
``unfreeze()`` methods will be called by the controller and apply on target
layers."

Concretely the worker here:

* hooks the tail block of the frontmost active layer module on the training
  model and captures its activation during the normal forward pass;
* pushes ``(mini-batch inputs, A_T)`` onto the IQ/TOQ queues when a plasticity
  evaluation is due, without blocking the training loop;
* applies controller decisions: advancing the monitored module after a
  freeze, switching frozen BatchNorm layers to inference mode (required for
  activation caching, §4.3), and rebuilding the (simulated) gradient
  communication bucket after the set of trainable parameters changes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..nn.layers import BatchNorm2d, Dropout
from ..nn.module import Module
from .freezing import FreezingEngine
from .hooks import ActivationRecorder
from .modules import LayerModule
from .queues import EvaluationChannels

__all__ = ["EgeriaWorker"]


class EgeriaWorker:
    """Training-side agent that feeds the controller and applies its decisions."""

    def __init__(self, model: Module, engine: FreezingEngine, channels: Optional[EvaluationChannels] = None,
                 worker_id: int = 0):
        self.model = model
        self.engine = engine
        self.channels = channels or EvaluationChannels()
        self.worker_id = worker_id
        self.recorder: Optional[ActivationRecorder] = None
        self._monitored_path: Optional[str] = None
        self._comm_rebuilds = 0
        self.retarget()

    # ------------------------------------------------------------------ #
    # Hook management
    # ------------------------------------------------------------------ #
    @property
    def monitored_path(self) -> Optional[str]:
        """Dotted path of the block whose activation is currently captured."""
        return self._monitored_path

    def retarget(self) -> None:
        """Point the forward hook at the frontmost active layer module's tail."""
        module = self.engine.monitored_module
        path = module.tail_path if module is not None else None
        if path == self._monitored_path and self.recorder is not None:
            return
        if self.recorder is not None:
            self.recorder.remove()
            self.recorder = None
        self._monitored_path = path
        if path is not None:
            self.recorder = ActivationRecorder(self.model, [path])

    def captured_activation(self) -> Optional[np.ndarray]:
        """Activation captured by the hook in the most recent forward pass."""
        if self.recorder is None or self._monitored_path is None:
            return None
        return self.recorder.get(self._monitored_path)

    # ------------------------------------------------------------------ #
    # Queue protocol (non-blocking)
    # ------------------------------------------------------------------ #
    def submit_evaluation(self, batch_inputs: Tuple, iteration: int) -> bool:
        """Push the current batch and hooked activation for controller evaluation.

        Returns False (and drops the evaluation) when either queue is full —
        the worker never blocks on the controller.
        """
        activation = self.captured_activation()
        if activation is None or self._monitored_path is None:
            return False
        accepted_input = self.channels.input_queue.put({
            "iteration": iteration,
            "inputs": batch_inputs,
            "worker_id": self.worker_id,
        })
        if not accepted_input:
            return False
        accepted_output = self.channels.training_output_queue.put({
            "iteration": iteration,
            "path": self._monitored_path,
            "activation": activation,
            "worker_id": self.worker_id,
        })
        return accepted_output

    # ------------------------------------------------------------------ #
    # Decision application
    # ------------------------------------------------------------------ #
    def apply_decisions(self) -> Dict[str, int]:
        """Synchronise the worker with the engine's current freezing state.

        Called after every controller step; idempotent.  Returns a small
        summary used for logging/tests.
        """
        frozen_modules = self.engine.frozen_modules()
        bn_switched = 0
        for layer_module in frozen_modules:
            bn_switched += self._set_frozen_module_inference(layer_module)
        self.retarget()
        self._comm_rebuilds += 1
        return {
            "frozen_modules": len(frozen_modules),
            "batchnorm_inference": bn_switched,
            "comm_rebuilds": self._comm_rebuilds,
        }

    @staticmethod
    def _set_frozen_module_inference(layer_module: LayerModule) -> int:
        """Switch BatchNorm (and Dropout) submodules of a frozen module to eval mode.

        §4.3: "we set these layers to the inference mode, using the dataset
        statistics to normalize the input rather than the specific batch" so
        that cached activations remain valid.
        """
        switched = 0
        for block in layer_module.blocks:
            for submodule in block.modules():
                if isinstance(submodule, (BatchNorm2d, Dropout)) and submodule.training:
                    submodule.eval()
                    switched += 1
        return switched

    def restore_training_mode(self) -> None:
        """Re-enable training mode everywhere (after an unfreeze-all event)."""
        self.model.train()
        self.retarget()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def summary(self) -> Dict[str, object]:
        return {
            "worker_id": self.worker_id,
            "monitored_path": self._monitored_path,
            "pending_evaluations": self.channels.pending_evaluations(),
            "dropped_inputs": self.channels.input_queue.dropped,
        }

"""Training plasticity: the SP-loss metric and its time-series analysis.

The heart of Egeria (§4.2).  A layer module's *plasticity* at iteration ``i``
is the Similarity-Preserving (SP) loss between the module's intermediate
activation in the training model and in the reference model for the same
mini-batch (Equation 1):

    P_i(l) = SP_loss(A_T(l), A_R(l))

SP loss (Tung & Mori, ICCV 2019) aligns each activation tensor to a ``b x b``
pair-wise similarity matrix over the mini-batch (rows L2-normalised) and takes
the mean squared Frobenius difference between the two matrices — it captures
*semantic* similarity rather than raw value differences, which is why the
paper prefers it over gradient norms or direct tensor subtraction
(Skip-Conv/FitNets style).

The time-series side implements Equation 2 (moving-average smoothing over a
window ``W``) and the windowed least-squares slope fit whose magnitude is
compared against the tolerance ``T`` in Algorithm 1.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Sequence

import numpy as np

__all__ = [
    "sp_loss",
    "similarity_matrix",
    "direct_difference_loss",
    "PlasticityTracker",
    "windowed_slope",
    "moving_average",
]


def _as_array(activation) -> np.ndarray:
    """Accept either a Tensor or an ndarray."""
    data = activation.data if hasattr(activation, "data") else activation
    return np.asarray(data, dtype=np.float32)


def similarity_matrix(activation) -> np.ndarray:
    """Pair-wise similarity matrix G of shape ``(b, b)`` from an activation tensor.

    The activation ``(b, ...)`` is flattened per sample, G = A A^T is computed
    and each row is L2-normalised, following the SP-loss definition.
    """
    array = _as_array(activation)
    batch = array.shape[0]
    flat = array.reshape(batch, -1)
    gram = flat @ flat.T
    norms = np.linalg.norm(gram, axis=1, keepdims=True)
    norms = np.where(norms > 0, norms, 1.0)
    return gram / norms


def sp_loss(training_activation, reference_activation) -> float:
    """Similarity-Preserving loss between two activation tensors (Equation 1).

    Both tensors must share the batch dimension; their trailing shapes may
    differ (e.g. a quantized reference with folded layers), since only the
    ``b x b`` similarity structure is compared.
    """
    g_train = similarity_matrix(training_activation)
    g_ref = similarity_matrix(reference_activation)
    if g_train.shape != g_ref.shape:
        raise ValueError(f"batch sizes differ: {g_train.shape[0]} vs {g_ref.shape[0]}")
    batch = g_train.shape[0]
    diff = g_train - g_ref
    return float(np.sum(diff * diff) / (batch * batch))


def direct_difference_loss(training_activation, reference_activation) -> float:
    """Mean squared direct difference between activations.

    This is the Skip-Conv / FitNets-style metric the paper compares against
    (§6.2 "Compared to freezing alternatives"); it is provided so the
    baselines can reuse the same plumbing with a different metric.
    """
    a = _as_array(training_activation)
    b = _as_array(reference_activation)
    if a.shape != b.shape:
        raise ValueError(f"activation shapes differ: {a.shape} vs {b.shape}")
    diff = a - b
    return float(np.mean(diff * diff))


def moving_average(values: Sequence[float], window: int) -> float:
    """Equation 2: mean of the last ``window`` values (all values if fewer)."""
    if not values:
        raise ValueError("moving_average of empty history")
    recent = list(values)[-window:] if window > 0 else list(values)
    return float(np.mean(recent))


def windowed_slope(values: Sequence[float], window: int) -> float:
    """Least-squares slope of the last ``window`` smoothed plasticity values.

    Returns 0.0 when fewer than two points are available (no trend yet).
    """
    points = list(values)[-window:] if window > 0 else list(values)
    if len(points) < 2:
        return 0.0
    x = np.arange(len(points), dtype=np.float64)
    y = np.asarray(points, dtype=np.float64)
    x_centered = x - x.mean()
    denom = float(np.sum(x_centered * x_centered))
    if denom == 0.0:
        return 0.0
    return float(np.sum(x_centered * (y - y.mean())) / denom)


@dataclass
class PlasticityTracker:
    """Per-layer-module plasticity history with smoothing and slope analysis.

    One tracker exists per layer module; the freezing engine feeds it raw
    SP-loss readings and queries the smoothed value, the windowed slope and
    the auto-calibrated tolerance ``T``.

    Parameters
    ----------
    window:
        ``W`` — both the smoothing window of Equation 2 and the slope-fit
        window of Algorithm 1.
    tolerance_coefficient:
        ``T`` is set to this fraction of the maximum absolute slope observed
        over the first ``initial_readings`` raw readings (per-module
        calibration, §4.2.2).
    """

    window: int = 10
    tolerance_coefficient: float = 0.2
    initial_readings: int = 3
    #: A layer also counts as stationary when the slope magnitude is below
    #: this fraction of the current plasticity level.  This keeps the
    #: criterion meaningful when a layer is already near-converged at the
    #: time monitoring starts (its initial slope — and hence ``T`` — is then
    #: pure noise of the same magnitude as later readings).
    relative_slope_floor: float = 0.1
    raw_history: List[float] = field(default_factory=list)
    smoothed_history: List[float] = field(default_factory=list)
    iteration_history: List[int] = field(default_factory=list)
    _tolerance: Optional[float] = None

    def record(self, plasticity: float, iteration: int) -> float:
        """Add a raw reading; returns the smoothed value (Equation 2)."""
        if not np.isfinite(plasticity):
            raise ValueError(f"non-finite plasticity reading: {plasticity}")
        self.raw_history.append(float(plasticity))
        self.iteration_history.append(int(iteration))
        smoothed = moving_average(self.raw_history, self.window)
        self.smoothed_history.append(smoothed)
        self._maybe_calibrate_tolerance()
        return smoothed

    def _maybe_calibrate_tolerance(self) -> None:
        """Set ``T`` once enough initial readings exist (20% of the max initial slope)."""
        if self._tolerance is not None:
            return
        if len(self.smoothed_history) < max(self.initial_readings, 2):
            return
        initial = self.smoothed_history[: self.initial_readings]
        slopes = [abs(initial[i + 1] - initial[i]) for i in range(len(initial) - 1)]
        max_slope = max(slopes) if slopes else 0.0
        if max_slope == 0.0:
            # Degenerate flat start — fall back to a small absolute tolerance.
            max_slope = max(abs(self.smoothed_history[0]), 1e-6)
        self._tolerance = self.tolerance_coefficient * max_slope

    @property
    def tolerance(self) -> Optional[float]:
        """The calibrated tolerance ``T``; ``None`` until calibration completes."""
        return self._tolerance

    def slope(self) -> float:
        """Windowed least-squares slope of the smoothed plasticity curve."""
        return windowed_slope(self.smoothed_history, self.window)

    def is_stationary(self) -> bool:
        """True when the plasticity trend is within tolerance.

        The layer is considered stationary when the windowed slope magnitude
        is below the calibrated tolerance ``T`` *or* below
        ``relative_slope_floor`` x the current smoothed plasticity level
        (which covers layers that were already converged when monitoring
        began).
        """
        if self._tolerance is None or len(self.smoothed_history) < 2:
            return False
        slope_magnitude = abs(self.slope())
        if slope_magnitude < self._tolerance:
            return True
        latest = abs(self.smoothed_history[-1])
        return slope_magnitude < self.relative_slope_floor * latest

    def latest(self) -> Optional[float]:
        """Most recent smoothed plasticity value."""
        return self.smoothed_history[-1] if self.smoothed_history else None

    def state_dict(self) -> dict:
        """Serializable history/calibration snapshot (checkpointing)."""
        return {
            "window": int(self.window),
            "tolerance": None if self._tolerance is None else float(self._tolerance),
            "raw_history": [float(v) for v in self.raw_history],
            "smoothed_history": [float(v) for v in self.smoothed_history],
            "iteration_history": [int(v) for v in self.iteration_history],
        }

    def load_state_dict(self, state: dict) -> None:
        self.window = int(state["window"])
        tolerance = state.get("tolerance")
        self._tolerance = None if tolerance is None else float(tolerance)
        self.raw_history = [float(v) for v in state["raw_history"]]
        self.smoothed_history = [float(v) for v in state["smoothed_history"]]
        self.iteration_history = [int(v) for v in state["iteration_history"]]

    def reset_window(self, new_window: int) -> None:
        """Shrink/extend the window (used when unfreezing halves ``W``)."""
        if new_window <= 0:
            raise ValueError("window must be positive")
        self.window = new_window

    def reset_history(self, keep_tolerance: bool = True) -> None:
        """Clear histories, e.g. after an unfreeze, optionally keeping ``T``."""
        self.raw_history.clear()
        self.smoothed_history.clear()
        self.iteration_history.clear()
        if not keep_tolerance:
            self._tolerance = None

    def __len__(self) -> int:
        return len(self.raw_history)

"""Beyond the paper — freezing-aware checkpoints and cluster fault tolerance.

Three scenarios exercise the checkpoint subsystem end to end:

* **Overhead curve** (next to the Figure 9 breakdown): an Egeria run
  checkpoints every epoch into a content-addressed store; the model+optimizer
  bytes each checkpoint writes must fall monotonically as the frozen prefix
  advances, the storage analogue of the shrinking iteration time.
* **Failure injection**: a deterministic scheduler run kills a GPU mid-job;
  resuming from the last periodic checkpoint must beat restarting from
  scratch on makespan, with checkpoint/restore costs charged as link-bytes.
* **Trainer-backed failure injection**: the same failure against a *live*
  Egeria trainer (``TrainerJob``): the rollback restores the real trainer
  from the matching content-addressed snapshot and re-seeks the data loader,
  so the recovered run reproduces the clean run's final weights **bit for
  bit** — and still finishes earlier than restarting from scratch.
"""

from conftest import print_rows

from repro.experiments import (
    run_checkpoint_overhead,
    run_fault_tolerance,
    run_trainer_fault_tolerance,
)


def test_checkpoint_overhead_curve(benchmark, scale):
    data = benchmark.pedantic(lambda: run_checkpoint_overhead(scale=scale, seed=0),
                              rounds=1, iterations=1)
    rows = data["rows"]
    print_rows("Freezing-aware checkpoint overhead (per-epoch snapshots)", rows,
               keys=["step", "epoch", "frozen_prefix", "frozen_fraction",
                     "bytes_written", "model_state_bytes", "payload_bytes"])

    assert rows, "no checkpoints recorded"
    # The first checkpoint writes the full payload (nothing to deduplicate).
    assert rows[0]["bytes_written"] == rows[0]["payload_bytes"]
    # The run must actually freeze modules for the claim to be meaningful.
    prefixes = sorted({row["frozen_prefix"] for row in rows})
    assert len(prefixes) >= 2, "frozen prefix never advanced"

    # Steady-state model+optimizer write volume falls monotonically with the
    # prefix.  Transient checkpoints (the epoch a module froze or an unfreeze
    # rewound the prefix) still write the just-changed tensors, so compare
    # each prefix level's steady-state (minimum) volume.
    steady = {}
    for row in rows:
        prefix = row["frozen_prefix"]
        steady[prefix] = min(steady.get(prefix, row["model_state_bytes"]), row["model_state_bytes"])
    for smaller, larger in zip(prefixes, prefixes[1:]):
        assert steady[larger] < steady[smaller], (
            f"checkpoint bytes did not shrink: prefix {smaller} -> {steady[smaller]}, "
            f"prefix {larger} -> {steady[larger]}")
    # Incremental checkpoints always beat re-writing the full payload.
    assert any(row["bytes_written"] < row["payload_bytes"] for row in rows[1:])


def test_fault_tolerance_resume_beats_scratch(benchmark, scale):
    data = benchmark.pedantic(lambda: run_fault_tolerance(scale=scale, seed=0),
                              rounds=1, iterations=1)
    rerun = run_fault_tolerance(scale=scale, seed=0)
    # Bit-for-bit determinism across two runs of the same scenario.
    assert data == rerun

    with_ckpt = data["with_checkpoint"]["jobs"]["job"]
    from_scratch = data["from_scratch"]["jobs"]["job"]
    print_rows("Failure injection: resume-from-checkpoint vs restart-from-scratch",
               [dict(variant="with_checkpoint", makespan=data["with_checkpoint"]["makespan"],
                     **{k: with_ckpt[k] for k in ("iterations_done", "checkpoints_taken",
                                                  "restores", "checkpoint_seconds",
                                                  "restore_seconds", "failures")}),
                dict(variant="from_scratch", makespan=data["from_scratch"]["makespan"],
                     **{k: from_scratch[k] for k in ("iterations_done", "checkpoints_taken",
                                                     "restores", "checkpoint_seconds",
                                                     "restore_seconds", "failures")})],
               keys=["variant", "makespan", "iterations_done", "checkpoints_taken",
                     "restores", "checkpoint_seconds", "restore_seconds", "failures"])

    # Both variants survive the failure and complete every iteration.
    assert with_ckpt["iterations_done"] == data["iterations"]
    assert from_scratch["iterations_done"] == data["iterations"]
    assert with_ckpt["failures"] == 1 and from_scratch["failures"] == 1
    # The checkpointed job paid for its snapshots and one restore read ...
    assert with_ckpt["checkpoints_taken"] > 0
    assert with_ckpt["restores"] == 1 and with_ckpt["restore_seconds"] > 0.0
    # ... and still finishes earlier than the from-scratch restart.
    assert data["with_checkpoint"]["makespan"] < data["from_scratch"]["makespan"]
    assert data["makespan_saving"] > 0.0


def test_trainer_backed_fault_injection_bit_exact_resume(benchmark, scale):
    data = benchmark.pedantic(lambda: run_trainer_fault_tolerance(scale=scale, seed=0),
                              rounds=1, iterations=1)

    rows = []
    for variant in ("clean", "resumed", "scratch"):
        record = data[variant]["result"]["jobs"]["trainer"]
        rows.append(dict(variant=variant, makespan=data[variant]["result"]["makespan"],
                         **{key: record[key] for key in
                            ("iterations_done", "checkpoints_taken", "restores",
                             "restore_seconds", "failures")}))
    print_rows("Trainer-backed failure injection: bit-exact resume vs restart", rows,
               keys=["variant", "makespan", "iterations_done", "checkpoints_taken",
                     "restores", "restore_seconds", "failures"])

    resumed = data["resumed"]["result"]["jobs"]["trainer"]
    scratch = data["scratch"]["result"]["jobs"]["trainer"]
    # Both failure variants survive and complete every iteration.
    assert resumed["failures"] == 1 and scratch["failures"] == 1
    assert resumed["iterations_done"] == data["resumed"]["iterations"]
    assert scratch["iterations_done"] == data["scratch"]["iterations"]
    # The checkpointed trainer paid real snapshots and one restore read ...
    assert data["resumed"]["num_checkpoints"] > 0
    assert resumed["restores"] == 1 and resumed["restore_seconds"] > 0.0
    # Acceptance: the rollback restored the live trainer bit-exactly — the
    # recovered run reproduces the clean run's final weights ...
    assert data["bit_exact_resume"], "resumed weights diverged from the clean run"
    # ... and resume still beats restarting the simulated job from scratch.
    assert data["resumed"]["result"]["makespan"] < data["scratch"]["result"]["makespan"]
    assert data["makespan_saving"] > 0.0

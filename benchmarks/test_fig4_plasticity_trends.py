"""Figure 4 — plasticity of layer modules during training.

Plasticity (SP loss against a partially-trained reference model) drops quickly
for the front modules and stays low, while the deep modules keep changing —
the signal Egeria exploits to decide which modules are safe to freeze.
"""

import numpy as np
from conftest import print_rows

from repro.experiments import run_fig4_plasticity_trends


def test_fig4_plasticity_trends(benchmark, scale):
    result = benchmark.pedantic(lambda: run_fig4_plasticity_trends(scale=scale), rounds=1, iterations=1)

    rows = []
    for name in result["module_names"]:
        series = result["plasticity"].get(name, [])
        if not series:
            continue
        rows.append({
            "module": name,
            "initial_plasticity": series[0],
            "final_plasticity": series[-1],
            "mean_late_half": float(np.mean(series[len(series) // 2:])),
        })
    print_rows("Figure 4: plasticity per layer module", rows)
    print(f"validation accuracy curve: {[round(a, 2) for a in result['accuracy']]}")

    assert rows, "no plasticity series recorded"
    # Plasticity is a non-negative SP loss.
    for name, series in result["plasticity"].items():
        assert all(value >= 0.0 for value in series)
    # The paper's Figure 4 observation: the front module's plasticity sits far
    # below the deepest monitored module's plasticity in the later training
    # stages (front layers converge first, deep layers keep moving).
    front = result["module_names"][0]
    deep = result["module_names"][-1]
    front_series = result["plasticity"][front]
    deep_series = result["plasticity"][deep]
    front_late = float(np.mean(front_series[len(front_series) // 2:]))
    deep_late = float(np.mean(deep_series[len(deep_series) // 2:]))
    assert front_late < deep_late
    # Accuracy improves over training alongside the plasticity evolution.
    assert result["accuracy"][-1] >= result["accuracy"][0]

"""Figure 8 — end-to-end accuracy curves: Egeria vs AutoFreeze vs Skip-Conv.

The paper shows that Egeria reaches the full-training accuracy while the
transfer-learning freezing baselines (gradient-metric AutoFreeze, Skip-Conv
direct-difference gating) lose accuracy when tuned to a similar speedup.
"""

from conftest import print_rows

from repro.experiments import run_fig8_end_to_end


def test_fig8_end_to_end_resnet(benchmark, scale):
    result = benchmark.pedantic(
        lambda: run_fig8_end_to_end(scale=scale, workload_name="resnet50_imagenet"),
        rounds=1, iterations=1,
    )
    print_rows(f"Figure 8a: {result['workload']} ({result['metric']})", result["rows"])
    for system, curve in result["curves"].items():
        print(f"{system:>12}: {[round(v, 2) for v in curve]}")

    systems = {row["system"] for row in result["rows"]}
    assert systems == {"vanilla", "egeria", "autofreeze", "skipconv"}
    rows = {row["system"]: row for row in result["rows"]}
    # Egeria reaches the vanilla-derived target accuracy (no accuracy sacrifice).
    assert rows["egeria"]["reached_target"]
    # Egeria's final accuracy is at least as good as the aggressive freezing
    # baselines' (the paper's 1.5%+/2.6% gaps for AutoFreeze / Skip-Conv).
    assert rows["egeria"]["final_metric"] >= rows["autofreeze"]["final_metric"] - 1e-6
    # Every curve covers the full training run.
    lengths = {len(curve) for curve in result["curves"].values()}
    assert len(lengths) == 1

"""Figure 12 — sensitivity of the hyperparameters n (interval), W (window), T (tolerance).

Following the guideline values balances accuracy and speed; doubling W or n
trains longer without accuracy gain, while halving W or doubling T freezes
more eagerly (faster but riskier), and halving T virtually disables freezing.
"""

from conftest import print_rows

from repro.experiments import run_fig12_hyperparameters


def test_fig12_hyperparameters(benchmark, scale):
    rows = benchmark.pedantic(lambda: run_fig12_hyperparameters(scale=scale), rounds=1, iterations=1)
    print_rows("Figure 12: hyperparameter sensitivity", rows,
               keys=["variant", "final_metric", "simulated_time", "frozen_fraction", "time_to_target"])

    by_variant = {row["variant"]: row for row in rows}
    expected = {"chosen", "n_doubled", "n_halved", "W_doubled", "W_halved", "T_doubled", "T_halved"}
    assert set(by_variant) == expected

    chosen = by_variant["chosen"]
    # The chosen configuration freezes a meaningful share of the model.
    assert chosen["frozen_fraction"] > 0.0
    # More eager variants (W halved / T doubled) freeze at least as much as
    # more conservative ones (W doubled / T halved).
    assert by_variant["T_doubled"]["frozen_fraction"] >= by_variant["T_halved"]["frozen_fraction"] - 1e-9
    assert by_variant["W_halved"]["frozen_fraction"] >= by_variant["W_doubled"]["frozen_fraction"] - 1e-9
    # No variant catastrophically destroys accuracy on this workload (>20% drop).
    for row in rows:
        assert row["final_metric"] >= chosen["final_metric"] - 0.25

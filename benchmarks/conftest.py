"""Shared configuration for the benchmark suite.

Every benchmark regenerates one table or figure of the paper (see DESIGN.md's
per-experiment index) on the scaled synthetic workloads.  The experiment scale
can be raised with ``REPRO_BENCH_SCALE=small`` for longer, closer-to-paper
runs; the default ``tiny`` keeps the whole suite in the minutes range.
"""

import os

import pytest


@pytest.fixture(scope="session")
def scale() -> str:
    """Workload scale for the experiment harnesses ("tiny" or "small")."""
    return os.environ.get("REPRO_BENCH_SCALE", "tiny")


def print_rows(title, rows, keys=None):
    """Pretty-print a list of dict rows below the benchmark output."""
    print(f"\n=== {title} ===")
    if not rows:
        print("(no rows)")
        return
    keys = keys or list(rows[0].keys())
    header = " | ".join(f"{k:>18}" for k in keys)
    print(header)
    print("-" * len(header))
    for row in rows:
        cells = []
        for key in keys:
            value = row.get(key, "")
            if isinstance(value, float):
                cells.append(f"{value:>18.4f}")
            else:
                cells.append(f"{str(value):>18}")
        print(" | ".join(cells))

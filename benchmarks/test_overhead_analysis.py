"""§6.5 — system overhead: reference-model cost and activation-cache storage.

The paper measures: reference generation/update takes 0.5–1.5 s, running it on
CPU adds at most ~1.5% to training time, and cached activations occupy
1.5x–5.3x the input size for ResNet-50 (model dependent).
"""

from conftest import print_rows

from repro.experiments import run_overhead_analysis


def test_overhead_analysis(benchmark, scale):
    result = benchmark.pedantic(lambda: run_overhead_analysis(scale=scale), rounds=1, iterations=1)
    print_rows("§6.5 overhead analysis", [result])

    # Reference generation is cheap at this scale (well under a second per update).
    assert result["reference_generation_seconds_mean"] < 1.5
    # The cost model budgets the reference overhead at ~1.5% of iteration time.
    assert result["reference_overhead_fraction_model"] <= 0.05
    # The activation cache stored something and its per-sample footprint is a
    # small multiple of the input size (paper: 1.5x-5.3x for ResNet-50).
    assert result["cache_bytes_written"] > 0
    assert 0.1 <= result["activation_to_input_ratio"] <= 10.0
    # The forward pass is a minority—but substantial—share of an iteration
    # (paper: up to ~35%).
    assert 0.2 <= result["fp_fraction_of_iteration"] <= 0.5

"""Overhead budget of SimSan on the Table 1 event-backend stream.

The CI acceptance criterion for the sanitizer: running the memoized Table 1
iteration stream with ``REPRO_SIMSAN``-style checking enabled must cost at
most 2x the unsanitized wall-clock, while staying bit-identical and still
performing real work (reserve audits and fast-forward spot checks).
"""

import time

from conftest import print_rows
from repro.core import parse_layer_modules
from repro.experiments import build_workload
from repro.sim import CostModel, EventDrivenEngine

#: A representative subset of the Table 1 workloads (full set lives in
#: benchmarks/test_fast_forward.py; the overhead ratio is per-iteration and
#: does not depend on how many workloads we average over).
_WORKLOADS = ("resnet56_cifar10", "mobilenet_v2_cifar10", "bert_squad")
_ITERATIONS = 1500
_FREEZE_EVERY = 300

#: CI overhead budget: sanitized wall-clock / plain wall-clock.
_MAX_OVERHEAD = 2.0


def _table1_cost_model(name):
    workload = build_workload(name, scale="small", seed=0)
    modules = parse_layer_modules(workload.make_model())
    return CostModel(modules, batch_size=workload.batch_size)


def _replay_table1_stream(engine, cost_model):
    num_modules = len(cost_model.layer_modules)
    totals = []
    for iteration in range(_ITERATIONS):
        prefix = min(iteration // _FREEZE_EVERY, max(num_modules - 1, 0))
        result = engine.simulate_iteration(
            cost_model, frozen_prefix=prefix, cached_fp=prefix > 0,
            include_reference_overhead=True, comm_seconds_per_byte=1e-10)
        totals.append(result.as_dict())
    return totals


def test_table1_sanitizer_overhead(benchmark):
    """Sanitized Table 1 stream: <= 2x overhead, bit-identical output."""
    cost_models = {name: _table1_cost_model(name) for name in _WORKLOADS}
    rows = []

    def run_all():
        plain_seconds = sanitized_seconds = 0.0
        for name, cost_model in cost_models.items():
            # Best-of-3 per configuration: the streams are only tens of
            # milliseconds, so a single stray scheduler tick would dominate
            # the ratio.
            plain_best = sanitized_best = float("inf")
            for _ in range(3):
                plain_engine = EventDrivenEngine()
                start = time.perf_counter()
                plain = _replay_table1_stream(plain_engine, cost_model)
                plain_best = min(plain_best, time.perf_counter() - start)

                sanitized_engine = EventDrivenEngine(sanitize=True)
                start = time.perf_counter()
                sanitized = _replay_table1_stream(sanitized_engine, cost_model)
                sanitized_best = min(sanitized_best, time.perf_counter() - start)
            plain_seconds += plain_best
            sanitized_seconds += sanitized_best

            assert sanitized == plain, f"{name}: sanitizer perturbed the simulation"
            sanitizer = sanitized_engine.sanitizer
            rows.append({
                "workload": name,
                "iterations": _ITERATIONS,
                "checks": sanitizer.checks_performed,
                "spot_checks": sanitizer.spot_checks_performed,
            })
            assert sanitizer.checks_performed > 0
            assert sanitizer.spot_checks_performed > 0
        return plain_seconds, sanitized_seconds

    plain_seconds, sanitized_seconds = benchmark.pedantic(run_all, rounds=1, iterations=1)
    overhead = sanitized_seconds / plain_seconds
    print_rows("Table 1 SimSan overhead (bit-identical)", rows)
    print(f"\nplain {plain_seconds:.3f}s vs sanitized {sanitized_seconds:.3f}s "
          f"-> {overhead:.2f}x (budget {_MAX_OVERHEAD:.1f}x)")
    assert overhead <= _MAX_OVERHEAD, (
        f"sanitizer overhead {overhead:.2f}x exceeds the {_MAX_OVERHEAD:.1f}x budget")

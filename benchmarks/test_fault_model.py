"""Beyond the paper — the structured fault model under measurement.

Two deterministic comparative claims, each repeated N times with summary
statistics (the sim is bit-reproducible, so the repetitions double as a
determinism audit — max == min or the benchmark fails):

* **Proactive spot checkpoints beat reactive rollback.**  Under identical
  eviction schedules, the run whose eviction notice triggers a proactive
  checkpoint restarts from a strictly later iteration and finishes strictly
  earlier than the run that only has its periodic checkpoints to fall back
  on (``docs/faults.md``).
* **Placement bounds blast radius.**  The same rack failure hits every job
  under spread placement but only the rack's residents under ``tor_pack`` —
  and the packed run finishes no later.
"""

import statistics

from conftest import print_rows

from repro.core.modules import LayerModule
from repro.sim import Cluster, ClusterScheduler, ClusterSpec, CostModel, SimJob

REPETITIONS = 5


def _cost_model():
    modules = [LayerModule(name=f"m{i}", paths=[], blocks=[], num_params=int(c), index=i)
               for i, c in enumerate((400_000, 800_000, 600_000))]
    return CostModel(modules, batch_size=4)


def _two_rack_cluster(**overrides):
    spec = dict(num_machines=4, gpus_per_machine=2, num_tor_switches=2,
                nic_gbps=20.0, tor_uplink_gbps=1.0, core_gbps=0.5,
                storage_gbps=20.0, per_tor_fabric=True)
    spec.update(overrides)
    return Cluster(ClusterSpec(**spec))


def _run_spot(notice_steps: float):
    """One spot-eviction run; the notice length is the only variable."""
    # Clean per-iteration seconds for this job shape (measured, not guessed,
    # so the eviction always lands mid-run).
    probe = ClusterScheduler(_two_rack_cluster(), placement="tor_pack")
    probe.submit(SimJob("job", _cost_model(), num_workers=2, iterations=30,
                        checkpoint_every=10, storage="ckpt-store"))
    step = probe.run().jobs["job"].finish_time / 30

    scheduler = ClusterScheduler(_two_rack_cluster(), placement="tor_pack")
    scheduler.submit(SimJob("job", _cost_model(), num_workers=2, iterations=30,
                            checkpoint_every=10, storage="ckpt-store"))
    scheduler.mark_preemptible(["node0:gpu0"], notice_seconds=notice_steps * step)
    scheduler.evict_spot("node0:gpu0", at_time=16.5 * step, rejoin_at=20.0 * step)
    scheduler.set_restart_backoff(base_seconds=0.5 * step, cap_seconds=4.0 * step)
    result = scheduler.run()
    evicted = [e for e in result.trace if e["kind"] == "job_evicted"]
    return {"makespan": result.makespan,
            "restart_iteration": evicted[0]["restart_iteration"],
            "evictions": result.jobs["job"].evictions,
            "checkpoints_taken": result.jobs["job"].checkpoints_taken,
            "iterations_done": result.jobs["job"].iterations_done}


def test_spot_proactive_checkpoint_beats_reactive_rollback(benchmark):
    def run_pair():
        return {"proactive": _run_spot(notice_steps=3.0),
                "reactive": _run_spot(notice_steps=0.0)}

    data = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    repeats = [run_pair() for _ in range(REPETITIONS)]
    assert all(repeat == data for repeat in repeats)  # bit-reproducible

    proactive, reactive = data["proactive"], data["reactive"]
    rows = [dict(variant=name, **values) for name, values in data.items()]
    for row in rows:
        row["lost_iterations"] = 16 - row["restart_iteration"]
    makespans = [repeat["proactive"]["makespan"] for repeat in repeats]
    print_rows(
        f"Spot eviction: proactive notice vs reactive rollback "
        f"(N={REPETITIONS}, stdev={statistics.pstdev(makespans):.2e})",
        rows, keys=["variant", "makespan", "restart_iteration", "lost_iterations",
                    "evictions", "checkpoints_taken", "iterations_done"])

    # Both runs survive the eviction and finish every iteration.
    for values in data.values():
        assert values["evictions"] == 1
        assert values["iterations_done"] == 30
    # The reactive run can only fall back to its last periodic checkpoint
    # (every 10 iterations); the proactive write snapshots progress at the
    # notice instant, strictly later.
    assert reactive["restart_iteration"] == 10
    assert proactive["restart_iteration"] > reactive["restart_iteration"]
    # Less lost work is less re-execution: strictly better makespan.
    assert proactive["makespan"] < reactive["makespan"]
    # And the repetitions were genuinely identical, not just close.
    assert statistics.pstdev(makespans) == 0.0


def _run_rack_failure(placement: str):
    """Two 4-worker jobs, one rack failure; who gets hit depends on placement."""
    scheduler = ClusterScheduler(_two_rack_cluster(), placement=placement)
    for name in ("a", "b"):
        scheduler.submit(SimJob(name, _cost_model(), num_workers=4, iterations=20,
                                checkpoint_every=5, storage="ckpt-store"))
    # Fail rack 0 once both jobs are in steady state; recover later.
    scheduler.fail_rack(0, at_time=0.35, recover_at=0.9)
    result = scheduler.run()
    return {"makespan": result.makespan,
            "victims": sum(1 for rec in result.jobs.values() if rec.failures),
            "total_failures": sum(rec.failures for rec in result.jobs.values()),
            "iterations_done": sum(rec.iterations_done for rec in result.jobs.values())}


def test_rack_failure_blast_radius_tor_pack_vs_spread(benchmark):
    def run_pair():
        return {"tor_pack": _run_rack_failure("tor_pack"),
                "round_robin": _run_rack_failure("round_robin")}

    data = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    repeats = [run_pair() for _ in range(REPETITIONS)]
    assert all(repeat == data for repeat in repeats)  # bit-reproducible

    rows = [dict(placement=name, **values) for name, values in data.items()]
    makespans = [repeat["tor_pack"]["makespan"] for repeat in repeats]
    print_rows(
        f"Rack failure blast radius by placement "
        f"(N={REPETITIONS}, stdev={statistics.pstdev(makespans):.2e})",
        rows, keys=["placement", "makespan", "victims", "total_failures",
                    "iterations_done"])

    packed, spread = data["tor_pack"], data["round_robin"]
    # Every job finishes either way — the fault model costs time, not work.
    assert packed["iterations_done"] == spread["iterations_done"] == 40
    # Packed placement confines the rack failure to the resident job;
    # spreading exposes both jobs to the same single-rack fault.
    assert packed["victims"] == 1
    assert spread["victims"] == 2
    assert packed["total_failures"] < spread["total_failures"]
    assert statistics.pstdev(makespans) == 0.0

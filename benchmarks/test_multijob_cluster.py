"""Multi-job cluster scenario on the event-driven simulation engine.

Beyond the paper's single-job experiments: an Egeria job and a vanilla job
share the 5-machine testbed while a third job queues for GPUs, one GPU is a
straggler, and the vanilla job elastically gives up two workers mid-run.
The scenario must run end-to-end and be bit-for-bit deterministic across two
runs with the same seed — the contract that makes the simulated cluster
results reproducible.
"""

import numpy as np
from conftest import print_rows

from repro.experiments import run_freezing_replay, run_multijob_cluster


def test_multijob_cluster_deterministic_and_sane(benchmark, scale):
    result = benchmark.pedantic(lambda: run_multijob_cluster(scale=scale, seed=0),
                                rounds=1, iterations=1)
    rerun = run_multijob_cluster(scale=scale, seed=0)

    # Bit-for-bit determinism across two runs with the same seed.
    assert result == rerun

    jobs = result["result"]["jobs"]
    print_rows("Multi-job cluster scenario (per-job records)",
               [jobs[name] for name in sorted(jobs)],
               keys=["name", "start_time", "finish_time", "iterations_done",
                     "queueing_delay", "throughput"])

    # All three jobs ran to completion.
    assert set(jobs) == {"egeria", "vanilla", "queued"}
    for job in jobs.values():
        assert job["finish_time"] is not None
        assert job["iterations_done"] > 0

    # The contended job could not start immediately: it waited until the
    # elastic leave (or a job finish) freed enough GPUs.
    assert jobs["queued"]["queueing_delay"] > 0.0

    # Both resident jobs made progress at a positive per-iteration rate.
    assert jobs["egeria"]["mean_iteration_seconds"] > 0.0
    assert jobs["vanilla"]["mean_iteration_seconds"] > 0.0

    # Utilization is a sane fraction everywhere.
    for value in result["result"]["utilization"].values():
        assert 0.0 <= value <= 1.0 + 1e-9

    # The makespan covers every job's finish time.
    makespan = result["result"]["makespan"]
    assert all(job["finish_time"] <= makespan + 1e-12 for job in jobs.values())


def test_freezing_timeline_replay_shortens_iterations(benchmark, scale):
    """Replay a real Egeria freezing timeline through ``SimJob.frozen_prefix``.

    The trainer's freeze/unfreeze events become an ``iteration -> prefix``
    callable fed to the cluster simulator, so the simulated job's iteration
    time drops mid-run exactly when the real run froze modules.
    """
    data = benchmark.pedantic(lambda: run_freezing_replay(scale=scale, seed=0),
                              rounds=1, iterations=1)
    prefix_series = data["prefix_series"]
    iteration_seconds = data["iteration_seconds"]
    print_rows("Egeria freezing-timeline replay (first/last phase means)", [{
        "total_iterations": data["total_iterations"],
        "freeze_events": data["num_freeze_events"],
        "max_prefix": max(prefix_series),
        "first_iteration_seconds": iteration_seconds[0],
        "last_iteration_seconds": iteration_seconds[-1],
        "makespan": data["makespan"],
    }])

    assert data["num_freeze_events"] > 0, "the Egeria run never froze a module"
    assert max(prefix_series) > 0
    assert len(iteration_seconds) == data["total_iterations"]

    # Iterations executed at a deeper frozen prefix must be faster than the
    # unfrozen ones — the frozen-prefix progression shortens simulated
    # iterations mid-run.
    unfrozen = [s for s, p in zip(iteration_seconds, prefix_series) if p == 0]
    deepest = max(prefix_series)
    frozen = [s for s, p in zip(iteration_seconds, prefix_series) if p == deepest]
    assert unfrozen and frozen
    assert float(np.mean(frozen)) < float(np.mean(unfrozen))
    assert min(frozen) < min(unfrozen)

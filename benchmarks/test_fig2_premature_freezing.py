"""Figure 2 — premature freezing with transfer-learning techniques hurts accuracy.

The paper freezes layer modules statically at an early epoch (and with a
gradient-based metric) and observes up to ~2% final-accuracy loss versus the
no-freeze baseline — the motivation for plasticity-guided freezing.
"""

from conftest import print_rows

from repro.experiments import run_fig2_premature_freezing


def test_fig2_premature_freezing(benchmark, scale):
    result = benchmark.pedantic(lambda: run_fig2_premature_freezing(scale=scale), rounds=1, iterations=1)

    rows = [
        {"system": name, "final_accuracy": final,
         "accuracy_drop_vs_baseline": result["accuracy_drop"].get(name, 0.0),
         "frozen_fraction": result["frozen_fraction"].get(name, 0.0)}
        for name, final in result["final"].items()
    ]
    print_rows("Figure 2: premature freezing vs no-freeze baseline", rows)

    assert set(result["curves"]) == {"no_freeze", "static_freeze", "gradient_metric"}
    assert all(len(curve) == len(result["epochs"]) for curve in result["curves"].values())
    # The premature-freezing runs actually froze a substantial share of the model.
    assert result["frozen_fraction"]["static_freeze"] > 0.0
    # Shape check: the aggressive freezing baselines do not *beat* the full
    # baseline, and at least one of them loses accuracy (the paper's ~1-2%).
    baseline = result["final"]["no_freeze"]
    assert result["final"]["static_freeze"] <= baseline + 0.05
    assert result["final"]["gradient_metric"] <= baseline + 0.05

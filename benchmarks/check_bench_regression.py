#!/usr/bin/env python
"""Bench-regression gate: compare a pytest-benchmark artifact to a baseline.

CI runs the bench-smoke subset with ``--benchmark-json=bench-smoke.json`` and
then calls this script to compare the artifact against the committed
baseline (``benchmarks/bench_baseline.json``):

* every benchmark present in the baseline must still exist (a silently
  dropped benchmark is a regression in coverage);
* no benchmark's mean time may exceed ``baseline_mean * tolerance``.

The tolerance is deliberately coarse (CI machines vary widely); the gate is
a smoke alarm for order-of-magnitude blowups — e.g. an accidental O(n^2)
hot loop — not a precision performance tracker.  Sub-millisecond entries
are pure timer/interpreter noise at this granularity (a structural check
recorded at ~5e-7 s can "regress" 100x by cache weather alone), so baseline
means are floored at ``--min-seconds`` (default 0.05 s) before the ratio is
taken: an entry only fails the gate once its *absolute* mean exceeds
``max(baseline, floor) * tolerance``.

Usage::

    python benchmarks/check_bench_regression.py bench-smoke.json \
        --baseline benchmarks/bench_baseline.json --tolerance 10

    # refresh the committed baseline from a fresh local artifact
    python benchmarks/check_bench_regression.py bench-smoke.json \
        --baseline benchmarks/bench_baseline.json --update-baseline
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict


def load_means(path: str) -> Dict[str, float]:
    """``fullname -> mean seconds`` from a pytest-benchmark JSON artifact
    (or from a baseline file previously written by ``--update-baseline``)."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    benchmarks = data.get("benchmarks", [])
    if isinstance(benchmarks, dict):  # simplified baseline layout
        return {str(name): float(mean) for name, mean in benchmarks.items()}
    return {entry["fullname"]: float(entry["stats"]["mean"]) for entry in benchmarks}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="pytest-benchmark JSON artifact to check")
    parser.add_argument("--baseline", required=True, help="committed baseline JSON")
    parser.add_argument("--tolerance", type=float, default=10.0,
                        help="allowed mean-time ratio vs baseline (default 10x)")
    parser.add_argument("--min-seconds", type=float, default=0.05,
                        help="noise floor: baseline means below this are floored to it "
                             "before the ratio check (default 0.05 s)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from the current artifact and exit")
    args = parser.parse_args(argv)

    current = load_means(args.current)
    if not current:
        print(f"error: no benchmarks found in {args.current}", file=sys.stderr)
        return 2

    if args.update_baseline:
        payload = {"format": "repro.bench_baseline/1",
                   "tolerance_hint": args.tolerance,
                   "benchmarks": {name: current[name] for name in sorted(current)}}
        with open(args.baseline, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"baseline updated: {len(current)} benchmarks -> {args.baseline}")
        return 0

    baseline = load_means(args.baseline)
    if not baseline:
        print(f"error: empty baseline {args.baseline}", file=sys.stderr)
        return 2

    missing = sorted(set(baseline) - set(current))
    regressions = []
    print(f"{'benchmark':<72} {'base':>10} {'now':>10} {'ratio':>7}")
    for name in sorted(baseline):
        if name in missing:
            continue
        # Floor the reference at the noise threshold: comparing two
        # sub-millisecond timings is comparing jitter, not performance.
        reference = max(baseline[name], args.min_seconds)
        ratio = current[name] / reference if reference > 0 else float("inf")
        floored = " (floored)" if baseline[name] < args.min_seconds else ""
        flag = " <-- REGRESSION" if ratio > args.tolerance else ""
        print(f"{name:<72} {baseline[name]:>10.4g} {current[name]:>10.4g} "
              f"{ratio:>6.2f}x{floored}{flag}")
        if ratio > args.tolerance:
            regressions.append((name, ratio))

    ok = True
    if missing:
        ok = False
        print(f"\nFAIL: {len(missing)} baseline benchmark(s) missing from the artifact:",
              file=sys.stderr)
        for name in missing:
            print(f"  - {name}", file=sys.stderr)
    if regressions:
        ok = False
        print(f"\nFAIL: {len(regressions)} benchmark(s) exceed {args.tolerance}x the baseline mean:",
              file=sys.stderr)
        for name, ratio in regressions:
            print(f"  - {name}: {ratio:.2f}x", file=sys.stderr)
    if ok:
        new_benchmarks = sorted(set(current) - set(baseline))
        if new_benchmarks:
            print(f"\nnote: {len(new_benchmarks)} new benchmark(s) not yet in the baseline "
                  f"(run --update-baseline to include them)")
        print(f"\nOK: {len(baseline)} benchmarks within {args.tolerance}x of the baseline")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())

"""Beyond the paper — shared-resource contention and trainer-backed jobs.

Three deterministic scenarios exercise the shared-resource core end to end:

* **Storage contention**: two identical jobs checkpoint to the same storage
  resource.  Arriving concurrently, every periodic write collides and the
  second writer queues — the jobs finish later than when their checkpoints
  are staggered by one iteration.  Async (overlapped) writes recover most of
  the loss.  A lone job stays within 5% of the closed-form model — the
  no-contention contract.
* **Topology interference**: on a per-ToR fabric, two rack-local jobs on
  separate ToRs queue on disjoint uplinks and finish measurably earlier than
  the same jobs placed cross-rack (sharing both uplinks and the core) —
  under both the FIFO and the fair-share (processor-sharing) disciplines,
  which move identical bytes and differ only in timing.
* **Trainer-backed job**: a live Egeria trainer runs inside the scheduler;
  its freezing decisions shorten the simulated iterations, and the simulated
  checkpoint volume equals the ``CheckpointManager``'s actual incremental
  (content-addressed) bytes, not an estimate.
"""

from conftest import print_rows

from repro.core import parse_layer_modules
from repro.experiments import (
    build_workload,
    run_storage_contention,
    run_topology_interference,
    run_trainer_backed_job,
)
from repro.sim import AllReduceModel, CostModel, EventDrivenEngine, paper_testbed_cluster


def test_storage_contention_concurrent_vs_staggered(benchmark, scale):
    data = benchmark.pedantic(lambda: run_storage_contention(scale=scale, seed=0),
                              rounds=1, iterations=1)
    rerun = run_storage_contention(scale=scale, seed=0)
    # Bit-for-bit determinism across two runs of the same scenario.
    assert data == rerun

    variants = {name: data[name] for name in ("concurrent", "staggered", "concurrent_async")}
    print_rows("Storage contention: per-variant job b record", [
        dict(variant=name,
             makespan=variant["makespan"],
             completion=variant["jobs"]["b"]["completion_seconds"],
             ckpt_seconds=variant["jobs"]["b"]["checkpoint_seconds"],
             ckpt_bytes=variant["jobs"]["b"]["checkpoint_bytes_written"],
             storage_bytes=variant["resources"][data["storage_resource"]]["total_bytes"])
        for name, variant in variants.items()],
        keys=["variant", "makespan", "completion", "ckpt_seconds", "ckpt_bytes", "storage_bytes"])

    concurrent, staggered = data["concurrent"], data["staggered"]
    asynchronous = data["concurrent_async"]

    # Acceptance: concurrent checkpointers to the same storage resource
    # finish later than staggered checkpointers.
    assert concurrent["jobs"]["b"]["completion_seconds"] > \
        staggered["jobs"]["b"]["completion_seconds"]
    assert concurrent["jobs"]["b"]["checkpoint_seconds"] > \
        staggered["jobs"]["b"]["checkpoint_seconds"]
    # Staggered writes pay the same storage bytes — only the queueing differs.
    storage = data["storage_resource"]
    assert concurrent["resources"][storage]["total_bytes"] == \
        staggered["resources"][storage]["total_bytes"]
    # Overlapped (async) writes release compute at the iteration boundary:
    # never slower than synchronous writes under the same collision pattern,
    # and the same snapshots still happen.
    assert asynchronous["makespan"] <= concurrent["makespan"]
    assert asynchronous["jobs"]["a"]["checkpoints_taken"] == \
        concurrent["jobs"]["a"]["checkpoints_taken"]


def test_topology_interference_rack_local_vs_cross_rack(benchmark):
    data = benchmark.pedantic(lambda: run_topology_interference(seed=0),
                              rounds=1, iterations=1)
    rerun = run_topology_interference(seed=0)
    # Bit-for-bit determinism across two runs of the same scenario.
    assert data == rerun

    core = data["core_resource"]
    print_rows("Per-ToR fabric: rack-local (tor_pack) vs cross-rack (round_robin)", [
        dict(variant=name,
             makespan=variant["makespan"],
             b_completion=variant["jobs"]["b"]["completion_seconds"],
             core_bytes=variant["resources"][core]["total_bytes"],
             tor0_bytes=variant["resources"]["tor0-uplink"]["total_bytes"])
        for name, variant in data["variants"].items()],
        keys=["variant", "makespan", "b_completion", "core_bytes", "tor0_bytes"])

    for policy in data["policies"]:
        local = data["variants"][f"{policy}/tor_pack"]
        cross = data["variants"][f"{policy}/round_robin"]
        # Acceptance: rack-local jobs on separate ToRs interfere measurably
        # less than the same jobs placed cross-rack — under every discipline.
        assert local["makespan"] < cross["makespan"] * 0.9, \
            f"rack-local not measurably faster under policy {policy!r}"
        assert local["jobs"]["b"]["completion_seconds"] < \
            cross["jobs"]["b"]["completion_seconds"]
        # Rack-local traffic never touches the core; cross-rack always does.
        assert local["resources"][core]["total_bytes"] == 0
        assert cross["resources"][core]["total_bytes"] > 0
    # The discipline changes timing only: per-link byte totals are identical
    # between FIFO and fair-share for the same placement (byte conservation).
    for placement in ("tor_pack", "round_robin"):
        fifo_bytes = {name: res["total_bytes"] for name, res
                      in data["variants"][f"fifo/{placement}"]["resources"].items()}
        fair_bytes = {name: res["total_bytes"] for name, res
                      in data["variants"][f"fair/{placement}"]["resources"].items()}
        assert fifo_bytes == fair_bytes


def test_single_job_no_contention_within_5pct_of_closed_form(scale):
    """The no-contention path: fabric-routed engine vs the closed-form model."""
    workload = build_workload("resnet50_imagenet", scale=scale, seed=0)
    modules = parse_layer_modules(workload.make_model())
    cost_model = CostModel(modules, batch_size=workload.batch_size)
    cluster = paper_testbed_cluster()
    workers = cluster.workers(num_machines=2, gpus_per_machine=2)
    spb = AllReduceModel(cluster).seconds_per_byte(workers)

    engine = EventDrivenEngine(cluster)
    event = engine.simulate_iteration(cost_model, workers=workers,
                                      comm_seconds_per_byte=spb,
                                      link_resource="fabric", job_name="solo").total
    closed = cost_model.iteration(comm_seconds_per_byte=spb,
                                  include_reference_overhead=False).total
    assert abs(event - closed) / closed <= 0.05


def test_trainer_backed_job_deterministic_and_bytes_match(benchmark, scale):
    data = benchmark.pedantic(lambda: run_trainer_backed_job(scale=scale, seed=0),
                              rounds=1, iterations=1)
    rerun = run_trainer_backed_job(scale=scale, seed=0)
    # Acceptance: a trainer-backed job run through the scheduler is
    # deterministic — every record, byte count and prefix decision matches.
    assert data == rerun

    record = data["result"]["jobs"]["trainer"]
    print_rows("Trainer-backed cluster job", [{
        "iterations": record["iterations_done"],
        "checkpoints": data["num_checkpoints"],
        "sim_ckpt_bytes": data["simulated_checkpoint_bytes"],
        "actual_ckpt_bytes": data["actual_checkpoint_bytes"],
        "max_prefix": data["max_frozen_prefix"],
        "frozen_fraction": data["final_frozen_fraction"],
        "makespan": data["result"]["makespan"],
    }])

    assert record["iterations_done"] == data["iterations"]
    # Acceptance: simulated checkpoint bytes equal the CheckpointManager's
    # actual incremental (content-addressed) bytes.
    assert data["simulated_checkpoint_bytes"] == data["actual_checkpoint_bytes"]
    assert data["num_checkpoints"] > 0
    # The live freezing decisions reached the simulated job: the prefix
    # advanced, and iterations executed at the deepest prefix are faster
    # than the unfrozen ones.
    assert data["max_frozen_prefix"] > 0
    assert len(data["prefix_series"]) == data["iterations"]
    # Incremental snapshots beat the full payload once the prefix froze.
    assert data["actual_checkpoint_bytes"] < sum(data["actual_payload_bytes"])

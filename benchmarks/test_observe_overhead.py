"""Overhead budget of SimScope on a multi-job fault-injection scenario.

The CI acceptance criterion for the observability layer: running a scenario
with the full observer attached (tracer + metrics) must cost at most 1.3x
the plain wall-clock, the constructed-but-disabled null sink at most 1.05x —
while both stay bit-identical to the plain run and the full observer still
records real data (spans, instants, metric series).
"""

import copy
import json
import time

from conftest import print_rows
from repro.sim import run_scenario

_ITERATIONS = 150

#: Two ToR-colocated jobs plus a cross-rack one, periodic checkpoints, one
#: mid-run GPU failure with recovery and one preempt/resume cycle — enough
#: event diversity to exercise every observer hook on the hot path.
_SCENARIO = {
    "cluster": {"num_machines": 4, "gpus_per_machine": 2, "num_tor_switches": 2,
                "nic_gbps": 1.0, "tor_uplink_gbps": 1.0, "core_gbps": 0.5,
                "per_tor_fabric": True},
    "placement": "round_robin",
    "jobs": [
        {"name": "a", "modules": [400000, 800000, 600000], "batch_size": 4,
         "num_workers": 4, "iterations": _ITERATIONS, "policy": "egeria",
         "frozen_prefix": 1, "checkpoint_every": 25, "storage": "ckpt-store"},
        {"name": "b", "modules": [500000, 500000, 500000], "batch_size": 4,
         "num_workers": 4, "iterations": _ITERATIONS, "arrival_time": 0.5,
         "checkpoint_every": 30, "storage": "ckpt-store"},
    ],
    "failures": [{"gpu": "node0:gpu0", "at_time": 3.0, "recover_at": 6.0}],
    "preemptions": [{"job": "b", "at_time": 4.0}],
    "resumes": [{"job": "b", "at_time": 7.0}],
}

#: CI overhead budgets: observed wall-clock / plain wall-clock.
_MAX_TRACED_OVERHEAD = 1.30
_MAX_NULL_SINK_OVERHEAD = 1.05


def _run(observe):
    """One scenario run with the given ``observe`` setting; returns the report."""
    spec = copy.deepcopy(_SCENARIO)
    if observe is not None:
        spec["observe"] = observe
    return run_scenario(spec)


def _comparable(report):
    """The report as a canonical JSON string, minus observer-only keys."""
    stripped = {key: value for key, value in report.items() if key != "metrics"}
    return json.dumps(stripped, sort_keys=True)


def test_observe_overhead_and_transparency(benchmark):
    """Traced run <= 1.3x plain, null sink <= 1.05x, both bit-identical."""

    def run_all():
        # Best-of-5 per configuration: a run is tens of milliseconds, so a
        # single stray scheduler tick would dominate the ratios.
        seconds = {"plain": float("inf"), "null": float("inf"), "traced": float("inf")}
        reports = {}
        for _ in range(5):
            for label, observe in (("plain", None),
                                   ("null", {"trace": False, "metrics": False}),
                                   ("traced", True)):
                start = time.perf_counter()
                reports[label] = _run(observe)
                seconds[label] = min(seconds[label], time.perf_counter() - start)
        return seconds, reports

    seconds, reports = benchmark.pedantic(run_all, rounds=1, iterations=1)

    assert _comparable(reports["null"]) == _comparable(reports["plain"]), \
        "null-sink observer perturbed the simulation"
    assert _comparable(reports["traced"]) == _comparable(reports["plain"]), \
        "full observer perturbed the simulation"
    # The full observer must have done real work, not short-circuited.
    assert reports["traced"]["metrics"], "traced run recorded no metrics"
    assert "metrics" not in reports["plain"]

    null_overhead = seconds["null"] / seconds["plain"]
    traced_overhead = seconds["traced"] / seconds["plain"]
    print_rows("SimScope overhead (bit-identical)", [
        {"config": label, "seconds": seconds[label],
         "overhead": seconds[label] / seconds["plain"]}
        for label in ("plain", "null", "traced")])
    assert traced_overhead <= _MAX_TRACED_OVERHEAD, (
        f"traced overhead {traced_overhead:.2f}x exceeds the "
        f"{_MAX_TRACED_OVERHEAD:.2f}x budget")
    assert null_overhead <= _MAX_NULL_SINK_OVERHEAD, (
        f"null-sink overhead {null_overhead:.2f}x exceeds the "
        f"{_MAX_NULL_SINK_OVERHEAD:.2f}x budget")

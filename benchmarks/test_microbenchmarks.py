"""Micro-benchmarks of Egeria's hot paths.

Not a paper table/figure, but the per-call costs that §6.5's overhead argument
rests on: SP-loss plasticity evaluation, PWCCA (the ~10x more expensive post
hoc alternative), reference-model quantization, activation cache store/load,
and the ring all-reduce cost model.
"""

import heapq

import numpy as np
import pytest

from repro import models
from repro.analysis import pwcca_distance
from repro.core import ActivationCache, sp_loss
from repro.core.modules import LayerModule
from repro.core.reference import ReferenceModel
from repro.quantization import INT8, fake_quantize
from repro.sim import (
    AllReduceModel,
    Cluster,
    ClusterSpec,
    CostModel,
    EventDrivenEngine,
    paper_testbed_cluster,
)


@pytest.fixture(scope="module")
def activations():
    rng = np.random.default_rng(0)
    a = rng.standard_normal((16, 16, 8, 8)).astype(np.float32)
    b = a + 0.05 * rng.standard_normal(a.shape).astype(np.float32)
    return a, b


def test_sp_loss_speed(benchmark, activations):
    a, b = activations
    value = benchmark(sp_loss, a, b)
    assert value >= 0.0


def test_pwcca_speed(benchmark, activations):
    a, b = activations
    value = benchmark(pwcca_distance, a, b)
    assert 0.0 <= value <= 1.0


def test_sp_loss_cheaper_than_pwcca(activations):
    """The paper motivates SP loss partly by its ~10x lower cost than PWCCA."""
    import time

    a, b = activations

    def timed(fn, repeats=5):
        start = time.perf_counter()
        for _ in range(repeats):
            fn(a, b)
        return (time.perf_counter() - start) / repeats

    assert timed(sp_loss) < timed(pwcca_distance)


def test_int8_quantization_speed(benchmark):
    rng = np.random.default_rng(1)
    weights = rng.standard_normal((64, 64, 3, 3)).astype(np.float32)
    out = benchmark(fake_quantize, weights, INT8)
    assert out.shape == weights.shape


def test_reference_generation_speed(benchmark):
    model = models.resnet8(num_classes=10, seed=0)
    reference = ReferenceModel(lambda: models.resnet8(num_classes=10, seed=0), precision="int8")
    benchmark(reference.generate, model)
    assert reference.model is not None


def test_cache_store_load_speed(benchmark, tmp_path):
    cache = ActivationCache(cache_dir=str(tmp_path), memory_batches=5, batch_size=16)
    activation = np.random.default_rng(2).standard_normal((16, 8, 8)).astype(np.float32)

    def store_and_load():
        cache.store(0, activation)
        return cache.load(0)

    loaded = benchmark(store_and_load)
    assert loaded is not None and loaded.shape == activation.shape


def test_allreduce_model_speed(benchmark):
    cluster = paper_testbed_cluster()
    allreduce = AllReduceModel(cluster)
    workers = cluster.workers(num_machines=5, gpus_per_machine=2)
    seconds = benchmark(allreduce.allreduce_seconds, 25_000_000 * 4, workers)
    assert seconds > 0.0


# --------------------------------------------------------------------------- #
# Event-engine hot loop on a wide, deep configuration
# --------------------------------------------------------------------------- #
def _deep_cost_model(num_modules=96, params_per_module=5000, batch_size=16):
    modules = [LayerModule(name=f"m{i}", paths=[], blocks=[], num_params=params_per_module,
                           index=i) for i in range(num_modules)]
    return CostModel(modules, batch_size=batch_size)


def test_event_engine_wide_hot_loop(benchmark):
    """Hot-loop cost of one iteration on 64 workers x 96 modules.

    This is the configuration the bucket-queue perf fix targets: tens of
    thousands of segment events and ~100 pending gradient buckets per
    iteration.  The pending-bucket queue is a heap — popping the next bucket
    is O(log n) instead of re-sorting the whole list on every arrival.
    """
    cluster = Cluster(ClusterSpec(num_machines=32, gpus_per_machine=2))
    engine = EventDrivenEngine(cluster)
    cost_model = _deep_cost_model()
    workers = cluster.workers(num_machines=32, gpus_per_machine=2)

    result = benchmark.pedantic(
        lambda: engine.simulate_iteration(cost_model, workers=workers),
        rounds=3, iterations=1)
    # 64 workers x (96 forward + 96 backward) segments plus bucket traffic.
    assert result.num_events > 64 * 96 * 2
    assert result.communication > 0.0


def test_bucket_heap_beats_resort():
    """The heap-backed bucket queue outperforms sort-on-every-arrival.

    Replays the engine's exact access pattern — push one ready bucket, pop
    the minimum — over a long arrival stream, comparing the old
    ``list.sort() + pop(0)`` discipline against the heap.  The margin is
    orders of magnitude at this size, so the assertion is timing-robust.
    """
    import time

    # Buckets become ready faster than the link drains them (the wide-model
    # regime): push two arrivals per pop, then drain — the pending queue
    # grows to ~n/2 before it empties.
    arrivals = [((i * 7919) % 104729, i) for i in range(4000)]

    start = time.perf_counter()
    pending = []
    sorted_order = []
    for index, item in enumerate(arrivals):
        pending.append(item)
        pending.sort()
        if index % 2:
            sorted_order.append(pending.pop(0))
    while pending:
        pending.sort()
        sorted_order.append(pending.pop(0))
    resort_seconds = time.perf_counter() - start

    start = time.perf_counter()
    heap = []
    heap_order = []
    for index, item in enumerate(arrivals):
        heapq.heappush(heap, item)
        if index % 2:
            heap_order.append(heapq.heappop(heap))
    while heap:
        heap_order.append(heapq.heappop(heap))
    heap_seconds = time.perf_counter() - start

    assert heap_order == sorted_order  # identical scheduling decisions
    assert heap_seconds < resort_seconds

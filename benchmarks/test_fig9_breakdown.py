"""Figure 9 — performance breakdown: backward freezing vs forward caching.

The paper decomposes Egeria's speedup into (a) skipping the frozen layers'
backward pass and (b) additionally serving their forward pass from the
activation cache; FP caching contributes more for CNNs than language models
but stays below ~10% of the iteration time.
"""

from conftest import print_rows

from repro.experiments import run_fig9_breakdown


def test_fig9_breakdown(benchmark, scale):
    rows = benchmark.pedantic(lambda: run_fig9_breakdown(scale=scale), rounds=1, iterations=1)
    print_rows("Figure 9: normalised iteration time (baseline = 1.0)", rows)

    assert rows
    for row in rows:
        # Freezing alone reduces iteration time; caching reduces it further.
        assert row["freezing_only"] < row["baseline"]
        assert row["freezing_plus_caching"] <= row["freezing_only"]
        # FP caching's extra contribution stays below ~10% of the iteration
        # (paper: "generally contributes more for CNN models ... but all less
        # than 10%").
        assert 0.0 <= row["fp_caching_extra_saving"] <= 0.12
        # The closed-form CostModel fast path stays within 5% of the
        # event-driven engine on these single-job configurations.
        assert row["closed_form_deviation"] <= 0.05

"""Microbenchmarks of the steady-state fast-forward layer and parallel sweeps.

The acceptance criteria of the fast-forward work, asserted as benchmarks:

* replaying the Table 1 event-backend iteration streams (an Egeria-style
  progressive-freezing schedule over thousands of iterations) is **>= 5x
  faster** with memoization on, with **bit-identical** per-iteration timing;
* a multi-job scheduler run is measurably faster end to end, again with a
  bit-identical :class:`SchedulerResult`;
* a 4-cell ``core_gbps`` oversubscription sweep on 2 workers merges to the
  exact serial output **> 1.5x faster**.
"""

import json
import os
import time

from conftest import print_rows

from repro.core.modules import parse_layer_modules
from repro.experiments import build_workload
from repro.sim import (
    ClusterScheduler,
    CostModel,
    EventDrivenEngine,
    SimJob,
    paper_testbed_cluster,
    run_sweep,
)

#: The Table 1 workloads the TTA/agreement benches drive through the event
#: backend (matching benchmarks/test_table1_tta_speedup.py).
_WORKLOADS = (
    "resnet56_cifar10",
    "resnet50_imagenet",
    "mobilenet_v2_cifar10",
    "transformer_tiny_wmt16",
    "bert_squad",
)

#: Iterations per workload and freezing cadence of the replayed schedule.
_ITERATIONS = 1500
_FREEZE_EVERY = 300


def _table1_cost_model(name):
    workload = build_workload(name, scale="small", seed=0)
    modules = parse_layer_modules(workload.make_model())
    return CostModel(modules, batch_size=workload.batch_size)


def _replay_table1_stream(engine, cost_model):
    """The Table 1 event-backend iteration stream: one engine call per
    iteration, frozen prefix advancing every ``_FREEZE_EVERY`` iterations —
    exactly what the trainers' ``sim_backend="event"`` accounting does."""
    num_modules = len(cost_model.layer_modules)
    totals = []
    for iteration in range(_ITERATIONS):
        prefix = min(iteration // _FREEZE_EVERY, max(num_modules - 1, 0))
        result = engine.simulate_iteration(
            cost_model, frozen_prefix=prefix, cached_fp=prefix > 0,
            include_reference_overhead=True, comm_seconds_per_byte=1e-10)
        totals.append(result.as_dict())
    return totals


def test_table1_event_backend_fast_forward_speedup(benchmark):
    """>= 5x on the Table 1 event-backend streams, bit-identical timing."""
    cost_models = {name: _table1_cost_model(name) for name in _WORKLOADS}
    rows = []

    def run_all():
        reference_seconds = memoized_seconds = 0.0
        for name, cost_model in cost_models.items():
            reference_engine = EventDrivenEngine(memoize=False)
            start = time.perf_counter()
            reference = _replay_table1_stream(reference_engine, cost_model)
            reference_seconds += time.perf_counter() - start

            memoized_engine = EventDrivenEngine()
            start = time.perf_counter()
            memoized = _replay_table1_stream(memoized_engine, cost_model)
            memoized_seconds += time.perf_counter() - start

            assert memoized == reference, f"{name}: fast-forward diverged"
            perf = memoized_engine.perf_counters()
            rows.append({
                "workload": name,
                "iterations": _ITERATIONS,
                "fast_forwarded": perf["iterations_fast_forwarded"],
                "cache_hit_rate": perf["cache_hit_rate"],
                "events_processed": perf["events_processed"],
            })
        return reference_seconds, memoized_seconds

    reference_seconds, memoized_seconds = benchmark.pedantic(run_all, rounds=1, iterations=1)
    speedup = reference_seconds / memoized_seconds
    print_rows("Table 1 event-backend fast-forward (bit-identical)", rows)
    print(f"\nevent-by-event {reference_seconds:.3f}s vs fast-forward {memoized_seconds:.3f}s "
          f"-> {speedup:.1f}x")
    for row in rows:
        # Only the freeze transitions re-simulate: 5 distinct prefixes.
        assert row["fast_forwarded"] == _ITERATIONS - _ITERATIONS // _FREEZE_EVERY
    assert speedup >= 5.0, f"fast-forward speedup {speedup:.1f}x below the 5x floor"


def test_table1_multijob_scheduler_fast_forward(benchmark):
    """A multi-job cluster run: bit-identical SchedulerResult, faster wall-clock."""
    cost_models = [_table1_cost_model(name) for name in _WORKLOADS[:3]]

    def run(memoize):
        cluster = paper_testbed_cluster()
        scheduler = ClusterScheduler(cluster, engine=EventDrivenEngine(cluster, memoize=memoize))
        for index, cost_model in enumerate(cost_models):
            scheduler.submit(SimJob(f"job{index}", cost_model, num_workers=2,
                                    iterations=300, checkpoint_every=50,
                                    frozen_prefix=lambda i: min(i // 100, 2)))
        start = time.perf_counter()
        result = scheduler.run()
        return time.perf_counter() - start, result

    def run_both():
        reference_seconds, reference = run(memoize=False)
        memoized_seconds, memoized = run(memoize=True)
        return reference_seconds, reference, memoized_seconds, memoized

    reference_seconds, reference, memoized_seconds, memoized = benchmark.pedantic(
        run_both, rounds=1, iterations=1)
    expected, observed = reference.as_dict(), memoized.as_dict()
    expected.pop("perf"), observed.pop("perf")
    assert observed == expected
    assert memoized.perf["iterations_fast_forwarded"] > 0.9 * 3 * 300
    print(f"\nscheduler event-by-event {reference_seconds:.3f}s vs fast-forward "
          f"{memoized_seconds:.3f}s -> {reference_seconds / memoized_seconds:.1f}x, "
          f"hit rate {memoized.perf['cache_hit_rate']:.0%}")
    assert memoized_seconds < reference_seconds


def test_table1_sweep_parallel_speedup(benchmark):
    """The 4-cell oversubscription sweep on 2 workers: identical merged
    output, and > 1.5x faster than serial execution wherever the machine
    actually has a second core to run it on (a single-CPU box cannot
    express parallel speedup; the equality contract still holds there)."""
    example = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                           "examples", "sweep_oversubscription.json")
    with open(example, "r", encoding="utf-8") as handle:
        sweep = json.load(handle)
    # The committed example is sized for the docs; scale the per-cell work up
    # so pool start-up cost is amortized and the timing assertion is robust.
    for job in sweep["scenario"]["jobs"]:
        job["iterations"] = 2000

    def run_both():
        start = time.perf_counter()
        serial = run_sweep(sweep, workers=1)
        serial_seconds = time.perf_counter() - start
        start = time.perf_counter()
        parallel = run_sweep(sweep, workers=2)
        parallel_seconds = time.perf_counter() - start
        return serial_seconds, serial, parallel_seconds, parallel

    serial_seconds, serial, parallel_seconds, parallel = benchmark.pedantic(
        run_both, rounds=1, iterations=1)
    assert parallel == serial  # worker count never changes the merged table
    speedup = serial_seconds / parallel_seconds
    available_cpus = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") \
        else (os.cpu_count() or 1)
    print(f"\nsweep serial {serial_seconds:.3f}s vs 2 workers {parallel_seconds:.3f}s "
          f"-> {speedup:.2f}x on {available_cpus} CPU(s)")
    if available_cpus >= 2:
        assert speedup > 1.5, f"parallel sweep speedup {speedup:.2f}x below the 1.5x floor"

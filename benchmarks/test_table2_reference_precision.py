"""Table 2 — impact of the reference model's precision on accuracy and speed.

The paper finds int8 hits the sweet spot: ~3.6x faster CPU inference than
fp32 with a ~0.6% reference accuracy gap and no impact on the final training
accuracy; fp16 sits in between.
"""

from conftest import print_rows

from repro.experiments import run_table2_reference_precision


def test_table2_reference_precision(benchmark, scale):
    rows = benchmark.pedantic(
        lambda: run_table2_reference_precision(scale=scale, precisions=("int8", "float16", "float32")),
        rounds=1, iterations=1,
    )
    print_rows("Table 2: reference model precision", rows,
               keys=["precision", "final_accuracy", "cpu_inference_speedup",
                     "reference_accuracy_gap", "memory_ratio", "vanilla_final"])

    by_precision = {row["precision"]: row for row in rows}
    assert set(by_precision) == {"int8", "float16", "float32"}
    # CPU inference speed ordering: int8 > float16 > float32 (Table 2's 3.59x/1.69x/1x).
    assert by_precision["int8"]["cpu_inference_speedup"] > by_precision["float16"]["cpu_inference_speedup"]
    assert by_precision["float16"]["cpu_inference_speedup"] > by_precision["float32"]["cpu_inference_speedup"]
    # The float32 reference has no quantization-induced accuracy gap.
    assert abs(by_precision["float32"]["reference_accuracy_gap"]) <= 0.05
    # Using an int8 reference must not collapse the final training accuracy
    # relative to the vanilla run (paper: identical within noise).
    vanilla = by_precision["int8"]["vanilla_final"]
    assert by_precision["int8"]["final_accuracy"] >= vanilla - 0.1

"""Contended cache-hostile raw-speed benchmark: the PR-8 acceptance gate.

Eight two-worker jobs all cross one fair-share fabric link, so the link is
never quiet: the fast-forward cache almost never replays and every live
iteration queues its gradient buckets into an ever-growing open busy period.
This is the workload where the *pre-optimization* engine was quadratic —
``_sweep_open()`` re-integrated the whole busy period on every reserve —
and where fast-forwarded iterations still cost one heap event each.

The benchmark runs the same scenario twice:

* **pre-PR mode** — incremental fair-share OFF (full resweep per reserve)
  and batched fast-forward OFF, reproducing the engine before this PR;
* **optimized mode** — the defaults: incremental integration, batched
  fast-forward, O(active) per reserve.

and asserts the optimized run is **>= 5x** faster end to end with a
**bit-identical** :class:`SchedulerResult`.
"""

import time
from contextlib import contextmanager

from repro.core.modules import LayerModule
from repro.sim import ClusterScheduler, CostModel, EventDrivenEngine, SimJob
from repro.sim.cluster import Cluster, ClusterSpec
import repro.sim.resources as resources_mod

#: Jobs sharing the fair fabric (the acceptance criterion asks for >= 8).
_NUM_JOBS = 8
#: Sized so the (quadratic) pre-PR mode runs a few seconds in CI; at this
#: size the optimized engine is ~20x faster, far above the 5x gate.
_ITERATIONS = 60


def _cost_model(job_index):
    """Per-job distinct cost model: no cross-job cache sharing, and enough
    gradient volume that every iteration keeps the fabric busy."""
    modules = [
        LayerModule(name=f"m{i}", paths=[], blocks=[],
                    num_params=200_000 * (i + 1) + 10_000 * job_index, index=i)
        for i in range(6)
    ]
    return CostModel(modules, batch_size=32)


@contextmanager
def _fair_integration(incremental):
    """Flip the module default new FairShareTimelines are built with."""
    saved = resources_mod.FAIR_INCREMENTAL_DEFAULT
    resources_mod.FAIR_INCREMENTAL_DEFAULT = incremental
    try:
        yield
    finally:
        resources_mod.FAIR_INCREMENTAL_DEFAULT = saved


def _run(optimized):
    spec = ClusterSpec(num_machines=_NUM_JOBS, gpus_per_machine=2,
                       fabric_policy="fair")
    with _fair_integration(optimized):
        cluster = Cluster(spec)
        engine = EventDrivenEngine(cluster)
        scheduler = ClusterScheduler(cluster, engine=engine,
                                     placement="round_robin",
                                     batch_fast_forward=optimized)
        for index in range(_NUM_JOBS):
            scheduler.submit(SimJob(f"job{index}", _cost_model(index),
                                    num_workers=2, iterations=_ITERATIONS,
                                    weight=1.0 + 0.25 * index))
        start = time.perf_counter()
        result = scheduler.run()
    return time.perf_counter() - start, result


def test_contended_fair_share_raw_speed(benchmark):
    """>= 5x on the contended fair-share cluster, bit-identical results."""

    def run_both():
        reference_seconds, reference = _run(optimized=False)
        optimized_seconds, optimized = _run(optimized=True)
        return reference_seconds, reference, optimized_seconds, optimized

    reference_seconds, reference, optimized_seconds, optimized = benchmark.pedantic(
        run_both, rounds=1, iterations=1)

    expected, observed = reference.as_dict(), optimized.as_dict()
    expected.pop("perf"), observed.pop("perf")
    assert observed == expected, "optimized contended run diverged from pre-PR engine"

    perf = optimized.perf
    # The fabric is (almost) never quiet: the run must be live-dominated,
    # i.e. genuinely exercising the fair-share integration hot path.
    assert perf["cache_hit_rate"] < 0.5, perf
    assert perf["fair_incremental_reserves"] > 0, perf
    assert reference.perf["fair_incremental_reserves"] == 0, reference.perf

    speedup = reference_seconds / optimized_seconds
    print(f"\ncontended {_NUM_JOBS}-job fair-share cluster: pre-PR "
          f"{reference_seconds:.3f}s vs optimized {optimized_seconds:.3f}s "
          f"-> {speedup:.1f}x (hit rate {perf['cache_hit_rate']:.0%}, "
          f"incremental reserves {perf['fair_incremental_reserves']}, "
          f"rewinds {perf['fair_rewind_reserves']}, "
          f"full resweeps {perf['fair_full_resweeps']})")
    assert speedup >= 5.0, f"contended speedup {speedup:.1f}x below the 5x floor"

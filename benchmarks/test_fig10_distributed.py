"""Figure 10 — distributed data-parallel training throughput.

The paper compares PyTorch all-reduce, ByteScheduler, Egeria and
Egeria+ByteScheduler on 2–5 machines (2 GPUs each).  Egeria's benefit comes
mostly from the skipped computation, plus up to ~5% from the reduced gradient
synchronization volume; ByteScheduler alone helps little for these
computation-bound models and can even dip slightly below the baseline.
"""

from conftest import print_rows

from repro.experiments import run_fig10_distributed
from repro.sim import SchedulePolicy


def test_fig10_distributed_resnet(benchmark, scale):
    result = benchmark.pedantic(
        lambda: run_fig10_distributed(workload_name="resnet50_imagenet", scale=scale,
                                      machine_counts=(2, 3, 4, 5)),
        rounds=1, iterations=1,
    )
    print_rows(f"Figure 10: throughput (samples/s), {result['workload']}", result["rows"])

    assert len(result["rows"]) == 4
    for row in result["rows"]:
        # Egeria beats the vanilla baseline at every cluster size.
        assert row[SchedulePolicy.EGERIA] > row[SchedulePolicy.VANILLA]
        # Egeria + ByteScheduler is at least in Egeria's ballpark (within its
        # small scheduling overhead).
        assert row[SchedulePolicy.EGERIA_BYTESCHEDULER] > row[SchedulePolicy.VANILLA]
        # ByteScheduler alone stays close to the baseline for this
        # computation-bound model (within a few percent either way).
        ratio = row[SchedulePolicy.BYTESCHEDULER] / row[SchedulePolicy.VANILLA]
        assert 0.9 <= ratio <= 1.3
    # Throughput scales up with the number of machines for every policy.
    vanilla_series = [row[SchedulePolicy.VANILLA] for row in result["rows"]]
    assert vanilla_series == sorted(vanilla_series)


def test_fig10_distributed_transformer(benchmark, scale):
    result = benchmark.pedantic(
        lambda: run_fig10_distributed(workload_name="transformer_base_wmt16", scale=scale,
                                      machine_counts=(2, 5)),
        rounds=1, iterations=1,
    )
    print_rows(f"Figure 10: throughput (samples/s), {result['workload']}", result["rows"])
    for row in result["rows"]:
        assert row[SchedulePolicy.EGERIA] > row[SchedulePolicy.VANILLA]

"""Figure 11 — freezing and unfreezing decisions across a ResNet training run.

The paper visualises the fraction of active (unfrozen) parameters per epoch:
Egeria gradually freezes front modules, unfreezes everything when the LR drops
by 10x, then re-freezes quickly thanks to the halved window.
"""

from conftest import print_rows

from repro.experiments import run_fig11_freezing_decisions


def test_fig11_freezing_decisions(benchmark, scale):
    result = benchmark.pedantic(lambda: run_fig11_freezing_decisions(scale=scale), rounds=1, iterations=1)

    print_rows("Figure 11: freeze/unfreeze events", result["timeline"])
    fractions = result["active_fraction_per_epoch"]
    print(f"active parameter fraction per epoch: {[round(f, 2) for f in fractions]}")
    print(f"module sizes: {result['module_sizes']}")

    # Freezing decisions were actually made during the run.
    assert result["timeline"], "Egeria made no freezing decisions"
    freeze_events = [e for e in result["timeline"] if e["action"] in ("freeze", "refreeze")]
    assert freeze_events
    # Modules are frozen front-to-back (non-decreasing module index between unfreezes).
    indices = []
    for event in result["timeline"]:
        if event["action"] == "unfreeze":
            indices.clear()
            continue
        indices.append(event["module_index"])
        assert indices == sorted(indices)
    # The active-parameter fraction drops below 1.0 at some point in training.
    assert min(fractions) < 1.0
    # The deep stage holds most parameters (the Figure 11 size breakdown).
    sizes = list(result["module_sizes"].values())
    assert max(sizes) > sum(sizes) * 0.3

"""Table 1 — time-to-accuracy speedups of Egeria over the vanilla baseline.

The paper reports 19%–43% TTA speedups across seven model/dataset workloads
without accuracy loss.  This bench trains vanilla and Egeria on each scaled
workload, computes the TTA speedup against the vanilla converged accuracy and
prints the paper-vs-measured rows recorded in EXPERIMENTS.md.
"""

from conftest import print_rows

from repro.experiments import available_workloads, build_workload, run_table1_tta, run_trainer

#: CV workloads show the clearest speedups at tiny scale; the NLP workloads
#: are included for structure/accuracy verification and run with the rest.
_WORKLOADS = (
    "resnet56_cifar10",
    "resnet50_imagenet",
    "mobilenet_v2_cifar10",
    "transformer_tiny_wmt16",
    "bert_squad",
)


def test_table1_tta_speedup(benchmark, scale):
    rows = benchmark.pedantic(
        lambda: run_table1_tta(scale=scale, workload_names=_WORKLOADS),
        rounds=1, iterations=1,
    )
    print_rows("Table 1: TTA speedups (paper vs measured)", rows,
               keys=["workload", "paper_model", "metric", "paper_tta_speedup", "measured_tta_speedup",
                     "vanilla_final", "egeria_final", "egeria_reached_target"])

    assert len(rows) == len(_WORKLOADS)
    # Egeria must reach the vanilla-derived accuracy target on every workload
    # (the paper's "without sacrificing accuracy" claim).
    assert all(row["egeria_reached_target"] for row in rows)
    # And at least the CNN workloads (where the deep stages dominate the
    # parameter count and training is long enough for freezing to engage)
    # must show a positive TTA speedup.
    cnn_rows = [row for row in rows if row["workload"].startswith(("resnet", "mobilenet"))]
    assert any(row["measured_tta_speedup"] is not None and row["measured_tta_speedup"] > 0.0
               for row in cnn_rows)


def test_table1_event_backend_matches_closed_form_at_small_scale(benchmark):
    """Drive the Table 1 workloads through ``sim_backend="event"`` at the
    "small" scale and assert event/closed-form agreement within 5%.

    Both runs share the training math (freezing decisions are independent of
    the time-accounting backend), so the comparison isolates the simulated
    clocks: the discrete-event engine replaying every iteration versus the
    validated closed-form fast mode.
    """
    epochs = 4

    def run():
        rows = []
        for name in _WORKLOADS:
            workload = build_workload(name, scale="small", seed=0)
            event = run_trainer("egeria", workload, num_epochs=epochs, sim_backend="event")
            closed = run_trainer("egeria", workload, num_epochs=epochs, sim_backend="closed_form")
            deviation = (abs(event["simulated_time"] - closed["simulated_time"])
                         / closed["simulated_time"]) if closed["simulated_time"] else 0.0
            rows.append({
                "workload": name,
                "event_simulated_time": event["simulated_time"],
                "closed_form_simulated_time": closed["simulated_time"],
                "deviation": deviation,
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_rows("Table 1 workloads, small scale: event vs closed-form simulated time", rows)
    assert len(rows) == len(_WORKLOADS)
    for row in rows:
        assert row["event_simulated_time"] > 0.0
        assert row["deviation"] < 0.05, row


def test_table1_full_workload_coverage(benchmark, scale):
    """The registry covers all seven Table 1 workloads (cheap structural check)."""
    names = benchmark(available_workloads)
    assert set(names) == {
        "resnet56_cifar10", "resnet50_imagenet", "mobilenet_v2_cifar10", "deeplabv3_voc",
        "transformer_base_wmt16", "transformer_tiny_wmt16", "bert_squad",
    }

"""Figure 1 — post hoc PWCCA layer-convergence analysis of ResNet training.

The paper tracks each layer module's PWCCA score against a fully-trained model
and finds that front modules converge (low, stable score) long before deep
modules, yielding freezable regions worth ~45% of the backward compute.
"""

from conftest import print_rows

from repro.experiments import run_fig1_pwcca_convergence


def test_fig1_pwcca_convergence(benchmark, scale):
    result = benchmark.pedantic(lambda: run_fig1_pwcca_convergence(scale=scale), rounds=1, iterations=1)

    rows = []
    for name in result["module_names"]:
        scores = result["history"].get(name, [])
        rows.append({
            "module": name,
            "first_score": scores[0] if scores else float("nan"),
            "final_score": scores[-1] if scores else float("nan"),
            "num_freezable_regions": len(result["freezable_regions"].get(name, [])),
        })
    print_rows("Figure 1: PWCCA distance to the fully-trained model", rows)
    print(f"theoretical backward-compute saving: {result['theoretical_saving']:.1%} (paper: ~45%)")

    # Every monitored module ends close to the fully-trained model (it IS the
    # final snapshot of the same run), and scores live in the PWCCA range.
    for name in result["module_names"]:
        scores = result["history"].get(name, [])
        assert scores, f"no PWCCA scores recorded for {name}"
        assert all(0.0 <= s <= 1.0 for s in scores)
        assert scores[-1] <= 0.5
    # There are freezable regions and a non-trivial theoretical saving.
    assert result["theoretical_saving"] > 0.1

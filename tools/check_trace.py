#!/usr/bin/env python
"""SimScope export gate: validate a trace and/or metrics file from the CLI.

CI's ``trace-smoke`` job runs a fault-injection scenario with
``repro sim run --trace-out/--metrics-out`` and feeds the exports through
this script, which is a thin command-line wrapper around
:func:`repro.sim.observe.check_trace` and
:func:`repro.sim.observe.check_metrics`.  Every problem is printed, and the
exit code is non-zero when any check fails — so a schema regression or a
broken byte-conservation law fails the build instead of shipping a trace
Perfetto cannot render.

Usage::

    PYTHONPATH=src python tools/check_trace.py [--trace trace.json]
        [--metrics metrics.json] [--report report.json]

``--report`` (the ``repro sim run --out`` JSON) enables the byte
conservation cross-check: every resource that carried bytes must have a
``resource.bytes.<name>`` counter whose final total equals the timeline
audit exactly.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional


def _load(path: str) -> Dict[str, object]:
    """Parse ``path`` as a JSON object."""
    with open(path, "r", encoding="utf-8") as handle:
        loaded = json.load(handle)
    if not isinstance(loaded, dict):
        raise ValueError(f"{path}: expected a JSON object")
    return loaded


def main(argv: Optional[List[str]] = None) -> int:
    """Validate the given exports; print problems; return the exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace", default=None, help="SimScope trace JSON to validate")
    parser.add_argument("--metrics", default=None, help="SimScope metrics JSON to validate")
    parser.add_argument("--report", default=None,
                        help="scenario report JSON (--out) enabling the byte "
                             "conservation cross-check against --metrics")
    args = parser.parse_args(argv)
    if args.trace is None and args.metrics is None:
        parser.error("give at least one of --trace / --metrics")

    from repro.sim.observe import check_metrics, check_trace

    problems: List[str] = []
    if args.trace is not None:
        trace = _load(args.trace)
        problems.extend(f"{args.trace}: {problem}" for problem in check_trace(trace))
        num_events = len(trace.get("traceEvents") or [])
        print(f"{args.trace}: {num_events} events checked")
    if args.metrics is not None:
        report = _load(args.report) if args.report is not None else None
        metrics = _load(args.metrics)
        problems.extend(f"{args.metrics}: {problem}"
                        for problem in check_metrics(metrics, report))
        num_series = len(metrics.get("metrics") or {})
        print(f"{args.metrics}: {num_series} metric series checked"
              + (" (byte conservation cross-checked)" if report is not None else ""))

    for problem in problems:
        print(f"PROBLEM: {problem}", file=sys.stderr)
    if problems:
        print(f"{len(problems)} problem(s) found", file=sys.stderr)
        return 1
    print("all SimScope export checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

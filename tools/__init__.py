"""Repository tooling: CI gates runnable from one home.

Two entry points live here, both reachable through the ``repro lint``
dispatcher (see ``repro.cli``):

* :mod:`tools.simlint` — the determinism lint pass over the simulator core
  (``python -m tools.simlint src/`` or ``repro lint``);
* :mod:`tools.check_docs` — the documentation gate (markdown link check +
  README quickstart execution; ``repro lint --docs``).
"""

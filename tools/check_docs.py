#!/usr/bin/env python
"""Documentation gate: markdown link check + README quickstart execution.

CI's docs job (and ``tests/test_docs.py`` in the tier-1 suite) runs this
script from the repository root.  Two checks, stdlib only:

* **Link check** — every relative markdown link in ``README.md`` and
  ``docs/*.md`` must point at an existing file or directory (external
  ``http(s)://`` links and pure ``#fragment`` anchors are skipped; a
  ``path#fragment`` link is checked for the path part).
* **Quickstart execution** — every fenced ``python`` code block in
  ``README.md`` is executed (each in a fresh namespace).  The blocks carry
  their own ``assert`` s, so a stale quickstart fails the build instead of
  silently rotting.

Usage::

    PYTHONPATH=src python tools/check_docs.py [--root REPO_ROOT]
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
from typing import List, Tuple

#: Inline markdown links: ``[text](target)``; images share the syntax.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: Fenced python blocks: ``\`\`\`python ... \`\`\``.
_PYTHON_BLOCK_RE = re.compile(r"```python\n(.*?)```", re.S)


def iter_markdown_files(root: pathlib.Path) -> List[pathlib.Path]:
    """``README.md`` plus every markdown page under ``docs/``."""
    files = [root / "README.md"]
    files.extend(sorted((root / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def check_links(root: pathlib.Path) -> List[str]:
    """Return one error string per broken relative link."""
    errors: List[str] = []
    for path in iter_markdown_files(root):
        text = path.read_text(encoding="utf-8")
        for match in _LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = (path.parent / relative).resolve()
            if not resolved.exists():
                line = text[: match.start()].count("\n") + 1
                errors.append(f"{path.relative_to(root)}:{line}: broken link -> {target}")
    return errors


def run_readme_snippets(root: pathlib.Path) -> List[Tuple[int, str]]:
    """Execute every fenced python block in README.md; return failures."""
    failures: List[Tuple[int, str]] = []
    readme = root / "README.md"
    text = readme.read_text(encoding="utf-8")
    for index, match in enumerate(_PYTHON_BLOCK_RE.finditer(text)):
        block = match.group(1)
        line = text[: match.start()].count("\n") + 2  # first line inside the fence
        try:
            exec(compile(block, f"README.md[block {index} @ line {line}]", "exec"), {})
        except Exception as error:  # noqa: BLE001 - report, do not crash the gate
            failures.append((line, f"block {index} (line {line}): {type(error).__name__}: {error}"))
    return failures


def main(argv=None) -> int:
    """Run both checks; non-zero exit on any failure."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".", help="repository root (default: cwd)")
    args = parser.parse_args(argv)
    root = pathlib.Path(args.root).resolve()

    link_errors = check_links(root)
    for error in link_errors:
        print(f"LINK FAIL  {error}", file=sys.stderr)

    snippet_failures = run_readme_snippets(root)
    for _line, message in snippet_failures:
        print(f"SNIPPET FAIL  {message}", file=sys.stderr)

    pages = len(iter_markdown_files(root))
    if link_errors or snippet_failures:
        print(f"\nFAIL: {len(link_errors)} broken link(s), "
              f"{len(snippet_failures)} failing snippet(s) across {pages} page(s)",
              file=sys.stderr)
        return 1
    print(f"OK: {pages} markdown page(s) link-clean, README quickstart snippets executed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

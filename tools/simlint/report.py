"""Plain-data finding and suppression records shared by the rules and runner."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

#: Valid rule ids a suppression may name; anything else means the marker
#: text is not a real suppression (e.g. prose in a docstring quoting the
#: syntax) and the comment is ignored entirely.
_RULE_ID = re.compile(r"^SIM\d{3}$")


@dataclass(frozen=True)
class Finding:
    """One lint finding with ``file:line:col`` provenance."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    #: Stripped source text of the offending line — the baseline match key
    #: (stable across unrelated line-number drift).
    snippet: str = ""

    def key(self) -> Tuple[str, str, str]:
        """Baseline identity: path + rule + offending source text."""
        return (self.path, self.rule, self.snippet)

    def as_dict(self) -> Dict[str, object]:
        """Plain-data view (the ``--format json`` output rows)."""
        return {"path": self.path, "line": self.line, "col": self.col,
                "rule": self.rule, "message": self.message, "snippet": self.snippet}

    def render(self) -> str:
        """Canonical one-line text rendering."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass(frozen=True)
class Suppression:
    """One inline ``# simlint: disable=...`` comment.

    ``rules`` is the tuple of rule ids the comment disables; ``justified``
    records whether the mandatory ``-- why`` text was present.  A
    suppression applies to findings on its own line and, for a standalone
    comment line, to the line directly below it.
    """

    path: str
    line: int
    rules: Tuple[str, ...]
    justified: bool
    justification: str = ""
    standalone: bool = False

    def covers(self, rule: str, line: int) -> bool:
        """Whether this comment silences ``rule`` at ``line``."""
        if rule not in self.rules:
            return False
        if line == self.line:
            return True
        return self.standalone and line == self.line + 1

    def as_dict(self) -> Dict[str, object]:
        """Plain-data view (the ``--format json`` suppression rows)."""
        return {"path": self.path, "line": self.line, "rules": list(self.rules),
                "justified": self.justified, "justification": self.justification}


def unexplained_finding(suppression: Suppression) -> Finding:
    """The SIM000 finding an unjustified suppression comment turns into."""
    return Finding(
        path=suppression.path, line=suppression.line, col=0, rule="SIM000",
        message=("suppression without justification: append ' -- <why>' to "
                 f"# simlint: disable={','.join(suppression.rules)}"),
        snippet="",
    )


def parse_suppression(path: str, line_number: int, text: str,
                      standalone: bool) -> Optional[Suppression]:
    """Parse one source line's ``# simlint: disable=...`` comment, if any."""
    marker = "# simlint: disable="
    position = text.find(marker)
    if position < 0:
        return None
    rest = text[position + len(marker):]
    if "--" in rest:
        rule_part, _, justification = rest.partition("--")
        justification = justification.strip()
    else:
        rule_part, justification = rest, ""
    rules = tuple(token.strip() for token in rule_part.split(",") if token.strip())
    if not rules or not all(_RULE_ID.match(rule) for rule in rules):
        return None
    return Suppression(path=path, line=line_number, rules=rules,
                       justified=bool(justification), justification=justification,
                       standalone=standalone)

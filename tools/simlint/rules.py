"""SimLint rule plugins: one AST visitor class per rule, each with a stable id.

A rule subclasses :class:`Rule`, declares its ``id``/``title``/``scope`` and
reports findings through :meth:`Rule.report`.  The runner instantiates every
registered rule per file with a shared :class:`ModuleAnalysis` (import alias
table + set-valued symbol table), so individual rules stay small.

Rules scoped ``sim_core_only`` fire only on simulator-core modules — files
under ``repro/sim`` or files carrying an explicit ``# simlint: sim-core``
marker (how the test fixtures opt in).  See ``docs/correctness.md`` for each
rule's rationale and fix pattern.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Set, Tuple, Type

from .report import Finding

__all__ = ["ModuleAnalysis", "Rule", "ALL_RULES", "rule_index"]


#: Wall-clock entry points forbidden inside the simulator core (SIM001).
_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow", "datetime.datetime.today",
    "datetime.date.today",
})

#: Global-state RNG entry points (SIM002).  Seeded generator *constructors*
#: (``random.Random``, ``numpy.random.default_rng``, ``RandomState``) are the
#: sanctioned alternative and are not listed.
_GLOBAL_RANDOM = frozenset({
    "random.random", "random.randint", "random.randrange", "random.uniform",
    "random.choice", "random.choices", "random.shuffle", "random.sample",
    "random.gauss", "random.normalvariate", "random.expovariate",
    "random.betavariate", "random.triangular", "random.seed", "random.getrandbits",
    "numpy.random.rand", "numpy.random.randn", "numpy.random.random",
    "numpy.random.random_sample", "numpy.random.randint", "numpy.random.choice",
    "numpy.random.shuffle", "numpy.random.permutation", "numpy.random.normal",
    "numpy.random.uniform", "numpy.random.seed", "numpy.random.standard_normal",
    "numpy.random.exponential", "numpy.random.poisson",
})

#: Name components that mark an identifier as a simulated timestamp (SIM004).
_TIME_TOKENS = frozenset({
    "time", "now", "clock", "start", "end", "until", "arrival",
    "finish", "deadline", "timestamp", "ts", "makespan",
})

_SNAKE_SPLIT = re.compile(r"[_\W]+")

#: Constructors whose call produces a fresh mutable container (SIM005).
_MUTABLE_FACTORIES = frozenset({
    "list", "dict", "set", "bytearray",
    "collections.defaultdict", "collections.deque", "collections.OrderedDict",
    "collections.Counter",
})

#: Annotations that declare a set-typed field (SIM003's declaration check).
_SET_ANNOTATIONS = frozenset({
    "set", "frozenset", "Set", "FrozenSet", "MutableSet", "AbstractSet",
    "typing.Set", "typing.FrozenSet", "typing.MutableSet", "typing.AbstractSet",
})


class ModuleAnalysis:
    """Shared per-file facts the rules consult: aliases and set symbols.

    ``aliases`` maps local names to fully dotted import paths (``np`` ->
    ``numpy``; ``pc`` -> ``time.perf_counter``), so rules match against
    canonical names no matter how the module spelled its imports.  Set
    symbols — names assigned a ``set``-valued expression — are collected
    *per function scope* (plus module scope), so a local called ``machines``
    holding a list in one method is not confused with a set of the same
    name in another.  ``self.*`` attributes are pooled module-wide.
    """

    def __init__(self, tree: ast.AST):
        """Run the collection passes over ``tree``."""
        self.aliases: Dict[str, str] = {}
        #: scope key (id of enclosing function node, None = module) -> names
        self.scoped_sets: Dict[Optional[int], Set[str]] = {}
        #: ``self.x`` attributes assigned/declared as sets, module-wide.
        self.attr_symbols: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.aliases[alias.asname or alias.name.split(".", 1)[0]] = (
                        alias.name if alias.asname else alias.name.split(".", 1)[0])
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    self.aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
        _SetSymbolCollector(self).visit(tree)

    def is_set_symbol(self, symbol: str, scope: Optional[int]) -> bool:
        """Whether ``symbol`` holds a set in ``scope`` (or at module level)."""
        if symbol.startswith("self."):
            return symbol in self.attr_symbols
        return (symbol in self.scoped_sets.get(scope, ())
                or symbol in self.scoped_sets.get(None, ()))

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name of ``node``, or None when it is not one.

        Only names rooted in an *imported* module or object resolve — a
        local variable that happens to be called ``random`` stays None.
        """
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        root = self.aliases.get(current.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))


def _symbol_of(target: ast.AST) -> Optional[str]:
    """``x`` or ``self.x`` rendering of an assignment target, else None."""
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name) \
            and target.value.id == "self":
        return f"self.{target.attr}"
    return None


def _is_set_expression(node: ast.AST, analysis: "ModuleAnalysis",
                       scope: Optional[int]) -> bool:
    """Whether ``node`` statically evaluates to a ``set``/``frozenset``."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("set", "frozenset"):
        return True
    symbol = _symbol_of(node)
    return symbol is not None and analysis.is_set_symbol(symbol, scope)


class _SetSymbolCollector(ast.NodeVisitor):
    """Single forward pass recording which symbols hold sets, per scope."""

    def __init__(self, analysis: ModuleAnalysis):
        self.analysis = analysis
        self._stack: List[Optional[int]] = [None]

    def _scope(self) -> Optional[int]:
        return self._stack[-1]

    def _enter(self, node) -> None:
        self._stack.append(id(node))
        self.generic_visit(node)
        self._stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._enter(node)

    def _record(self, target: ast.AST) -> None:
        symbol = _symbol_of(target)
        if symbol is None:
            return
        if symbol.startswith("self."):
            self.analysis.attr_symbols.add(symbol)
        else:
            self.analysis.scoped_sets.setdefault(self._scope(), set()).add(symbol)

    def visit_Assign(self, node: ast.Assign) -> None:
        if _is_set_expression(node.value, self.analysis, self._scope()):
            for target in node.targets:
                self._record(target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        is_set = _is_set_annotation(node.annotation, self.analysis) or (
            node.value is not None
            and _is_set_expression(node.value, self.analysis, self._scope()))
        if is_set:
            self._record(node.target)
        self.generic_visit(node)


def _is_set_annotation(node: ast.AST, analysis: "ModuleAnalysis") -> bool:
    """Whether an annotation declares a set type (``set``, ``Set[...]``, ...)."""
    if isinstance(node, ast.Subscript):
        return _is_set_annotation(node.value, analysis)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        head = node.value.split("[", 1)[0].strip()
        return head in _SET_ANNOTATIONS
    if isinstance(node, ast.Name):
        return node.id in _SET_ANNOTATIONS
    if isinstance(node, ast.Attribute):
        dotted = analysis.resolve(node)
        if dotted is not None:
            return dotted in _SET_ANNOTATIONS
        return node.attr in ("Set", "FrozenSet", "MutableSet", "AbstractSet")
    return False


def _is_time_like(node: ast.AST) -> bool:
    """Whether an expression reads like a simulated timestamp (SIM004)."""
    if isinstance(node, ast.Name):
        return _name_is_time_like(node.id)
    if isinstance(node, ast.Attribute):
        return _name_is_time_like(node.attr) or _is_time_like(node.value)
    if isinstance(node, ast.BinOp):
        return _is_time_like(node.left) or _is_time_like(node.right)
    if isinstance(node, ast.Call):
        # ``job.finish_time()`` style accessors: judge the callee's name.
        return _is_time_like(node.func)
    return False


def _name_is_time_like(identifier: str) -> bool:
    return any(token in _TIME_TOKENS for token in _SNAKE_SPLIT.split(identifier.lower()))


class Rule(ast.NodeVisitor):
    """Base class every SimLint rule plugs into.

    Subclasses set the class attributes and implement ``visit_*`` methods;
    :meth:`report` records a finding with ``file:line:col`` provenance.
    """

    #: Stable rule id (``SIMxxx``) — what suppressions and baselines key on.
    id: str = ""
    #: One-line human description shown by ``--list-rules``.
    title: str = ""
    #: When True the rule only fires on simulator-core modules.
    sim_core_only: bool = False

    def __init__(self, path: str, lines: Tuple[str, ...], analysis: ModuleAnalysis,
                 findings: List[Finding]):
        """Bind the rule to one file's source, shared analysis and sink."""
        self.path = path
        self.lines = lines
        self.analysis = analysis
        self.findings = findings

    def check(self, tree: ast.AST) -> None:
        """Run the rule over the parsed module."""
        self.visit(tree)

    def report(self, node: ast.AST, message: str) -> None:
        """Record one finding anchored at ``node``."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        snippet = self.lines[line - 1].strip() if 0 < line <= len(self.lines) else ""
        self.findings.append(Finding(path=self.path, line=line, col=col,
                                     rule=self.id, message=message, snippet=snippet))


class WallClockRule(Rule):
    """SIM001: no wall-clock reads inside the simulator core.

    Simulated time must flow from the event loop (``start_time`` + event
    times); a ``time.time()``/``perf_counter()``/``datetime.now()`` read
    makes results depend on host speed and run-to-run wall-clock jitter.
    """

    id = "SIM001"
    title = "no wall-clock reads in repro.sim (sim time flows from the event loop)"
    sim_core_only = True

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self.analysis.resolve(node.func)
        if dotted in _WALL_CLOCK:
            self.report(node, f"wall-clock read {dotted}() in simulator core; "
                              "derive time from the event loop instead")
        self.generic_visit(node)


class UnseededRandomRule(Rule):
    """SIM002: no unseeded global ``random`` / ``numpy.random`` state.

    Global-RNG calls draw from interpreter-wide hidden state that any other
    component can perturb; reproducible components own a seeded generator
    (``random.Random(seed)`` / ``numpy.random.default_rng(seed)``) instead.
    """

    id = "SIM002"
    title = "no unseeded global random / numpy.random state"
    sim_core_only = False

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self.analysis.resolve(node.func)
        if dotted in _GLOBAL_RANDOM:
            self.report(node, f"global-RNG call {dotted}(); use a seeded generator "
                              "(random.Random(seed) / numpy.random.default_rng(seed))")
        self.generic_visit(node)


class UnorderedIterationRule(Rule):
    """SIM003: unordered-iteration hazard in the simulator core.

    Iterating a ``set`` yields a hash-order-dependent sequence; when the
    elements feed event scheduling, heap pushes or output ordering, the run
    becomes ``PYTHONHASHSEED``-dependent.  The rule flags (a) iteration over
    statically known set expressions and (b) ``set``-annotated field
    declarations — a set field on a sim-core class is one refactor away from
    being iterated, so it must be an insertion-ordered structure (e.g. a
    ``Dict[str, None]`` used as an ordered set) or justify membership-only
    use inline.
    """

    id = "SIM003"
    title = "unordered set iteration / set-typed field in the simulator core"
    sim_core_only = True

    def check(self, tree: ast.AST) -> None:
        self._stack: List[Optional[int]] = [None]
        self.visit(tree)

    def _enter(self, node) -> None:
        self._stack.append(id(node))
        self.generic_visit(node)
        self._stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._enter(node)

    def _check_iterated(self, node: ast.AST) -> None:
        if _is_set_expression(node, self.analysis, self._stack[-1]):
            self.report(node, "iterating a set: order is hash-dependent; wrap in "
                              "sorted(...) or use an insertion-ordered structure")

    def visit_For(self, node: ast.For) -> None:
        self._check_iterated(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iterated(node.iter)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        # list(s) / tuple(s) materialize the hash order just like a loop.
        if isinstance(node.func, ast.Name) and node.func.id in ("list", "tuple") \
                and len(node.args) == 1:
            self._check_iterated(node.args[0])
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if _is_set_annotation(node.annotation, self.analysis):
            self.report(node, "set-typed field in the simulator core: use an "
                              "insertion-ordered structure (Dict[key, None]) or "
                              "justify membership-only use")
        self.generic_visit(node)


class FloatTimeEqualityRule(Rule):
    """SIM004: float ``==`` / ``!=`` on simulated timestamps.

    Timestamps are accumulated floats; exact comparison silently flips on
    the last ulp.  Use :func:`repro.sim.simtime.times_close` (tolerance) —
    or, where bit-exactness *is* the contract (fast-forward replay), keep
    ``==`` and justify it with an inline suppression.
    """

    id = "SIM004"
    title = "float == / != on simulated timestamps (use simtime.times_close)"
    sim_core_only = True

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if any(isinstance(side, ast.Constant)
                   and not isinstance(side.value, (int, float))
                   for side in (left, right)):
                continue  # comparisons against None/str are identity-ish, not timing
            if _is_time_like(left) or _is_time_like(right):
                self.report(node, "exact float comparison on simulated timestamps; "
                                  "use repro.sim.simtime.times_close(a, b) or justify "
                                  "bit-exactness inline")
                break
        self.generic_visit(node)


class MutableDefaultRule(Rule):
    """SIM005: mutable default arguments.

    A mutable default is created once at definition time and shared across
    calls — state leaks between invocations (and between simulated runs).
    Default to ``None`` and construct inside the function.
    """

    id = "SIM005"
    title = "mutable default argument"
    sim_core_only = False

    def _check_defaults(self, node) -> None:
        defaults = list(node.args.defaults) + [d for d in node.args.kw_defaults
                                               if d is not None]
        for default in defaults:
            if isinstance(default, (ast.List, ast.Dict, ast.Set,
                                    ast.ListComp, ast.DictComp, ast.SetComp)):
                self.report(default, "mutable default argument; use None and "
                                     "construct inside the function")
            elif isinstance(default, ast.Call):
                name = None
                if isinstance(default.func, ast.Name):
                    name = default.func.id
                dotted = self.analysis.resolve(default.func)
                if name in _MUTABLE_FACTORIES or dotted in _MUTABLE_FACTORIES:
                    self.report(default, "mutable default argument; use None and "
                                         "construct inside the function")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)


class PublicApiRule(Rule):
    """SIM006: the simulator core's public API is annotated and documented.

    The sim package is the repo's load-bearing subsystem; its public surface
    (module docstrings, public classes, public functions/methods and
    ``__init__``) must carry docstrings and complete type annotations so the
    invariants other layers rely on are written down where they are defined.
    """

    id = "SIM006"
    title = "missing annotations/docstrings on repro.sim public API"
    sim_core_only = True

    def check(self, tree: ast.AST) -> None:
        if not isinstance(tree, ast.Module):
            return
        if ast.get_docstring(tree) is None:
            anchor = tree.body[0] if tree.body else ast.Module(body=[], type_ignores=[])
            self.report(anchor, "module is missing a docstring")
        for node in tree.body:
            if isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
                self._check_class(node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and not node.name.startswith("_"):
                self._check_function(node, is_method=False)

    def _check_class(self, node: ast.ClassDef) -> None:
        if ast.get_docstring(node) is None:
            self.report(node, f"public class {node.name!r} is missing a docstring")
        for item in node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            public = not item.name.startswith("_") or item.name == "__init__"
            if public:
                self._check_function(item, is_method=True, owner=node.name)

    def _check_function(self, node, is_method: bool, owner: str = "") -> None:
        label = f"{owner}.{node.name}" if owner else node.name
        if ast.get_docstring(node) is None:
            self.report(node, f"public function {label!r} is missing a docstring")
        args = list(node.args.posonlyargs) + list(node.args.args)
        if is_method and args and args[0].arg in ("self", "cls"):
            args = args[1:]
        missing = [arg.arg for arg in args + list(node.args.kwonlyargs)
                   if arg.annotation is None]
        for extra in (node.args.vararg, node.args.kwarg):
            if extra is not None and extra.annotation is None:
                missing.append(extra.arg)
        if missing:
            self.report(node, f"public function {label!r} is missing parameter "
                              f"annotations: {', '.join(missing)}")
        if node.returns is None and node.name != "__init__":
            self.report(node, f"public function {label!r} is missing a return annotation")


#: Every registered rule, in id order — the runner instantiates each per file.
ALL_RULES: Tuple[Type[Rule], ...] = (
    WallClockRule,
    UnseededRandomRule,
    UnorderedIterationRule,
    FloatTimeEqualityRule,
    MutableDefaultRule,
    PublicApiRule,
)


def rule_index() -> Dict[str, Type[Rule]]:
    """``rule id -> rule class`` for every registered rule."""
    return {rule.id: rule for rule in ALL_RULES}
